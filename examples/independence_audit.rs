//! Independence audit: reproduce the paper's central argument on simulated data.
//!
//! The example generates the relative period jitter of two oscillators twice — once with
//! thermal noise only, once with the paper's full thermal + flicker model — and shows
//! that:
//!
//! * the thermal-only source satisfies Bienaymé's identity (`σ²_N` linear in `N`), while
//! * the full model departs from linearity beyond the paper's threshold `N ≈ 281`,
//! * the Ljung–Box portmanteau test corroborates both verdicts on the raw jitter series.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example independence_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng::core::independence::{jitter_series_looks_independent, IndependenceAnalysis};
use ptrng::measure::dataset::{DatasetPoint, Sigma2NDataset};
use ptrng::osc::jitter::JitterGenerator;
use ptrng::osc::phase::PhaseNoiseModel;
use ptrng::stats::sn::{log_spaced_depths, sigma2_n_sweep, SnSampling};

fn audit(
    name: &str,
    model: PhaseNoiseModel,
    rng: &mut StdRng,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {name} ---");
    let generator = JitterGenerator::new(model);
    let jitter = generator.generate_period_jitter(rng, 1 << 18)?;

    let depths = log_spaced_depths(4, 16_384, 14)?;
    let points = sigma2_n_sweep(&jitter, &depths, SnSampling::Overlapping)?
        .into_iter()
        .map(|p| DatasetPoint {
            n: p.n,
            sigma2_n: p.sigma2_n,
            samples: p.samples,
        })
        .collect();
    let dataset = Sigma2NDataset::new(model.frequency(), "period-domain", points)?;

    println!("    N        sigma^2_N * f0^2     2*N*sigma^2 (independent prediction)");
    let sigma2_1 = dataset.variances()[0] / (2.0 * dataset.depths()[0]);
    for (n, normalized) in dataset.normalized_points() {
        let independent = 2.0 * n * sigma2_1 * model.frequency() * model.frequency();
        println!("{n:9.0}   {normalized:18.6e}   {independent:18.6e}");
    }

    let analysis = IndependenceAnalysis::from_dataset(&dataset)?;
    println!("verdict                 : {:?}", analysis.verdict());
    println!(
        "fitted b_th / b_fl      : {:.2} Hz / {:.3e} Hz^2",
        analysis.fitted_model().b_thermal(),
        analysis.fitted_model().b_flicker()
    );
    match analysis.independence_threshold_95() {
        Some(t) => println!("independence (r_N > 95%): N < {t}"),
        None => println!("independence (r_N > 95%): every depth (no flicker detected)"),
    }
    let ljung_box_ok = jitter_series_looks_independent(&jitter[..20_000], 20, 0.01)?;
    println!(
        "Ljung-Box on raw jitter : {}",
        if ljung_box_ok {
            "no serial correlation"
        } else {
            "serial correlation detected"
        }
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let paper = PhaseNoiseModel::date14_experiment();
    let thermal_only = PhaseNoiseModel::thermal_only(paper.b_thermal(), paper.frequency())?;
    audit(
        "thermal noise only (independent jitter)",
        thermal_only,
        &mut rng,
    )?;
    audit(
        "thermal + flicker (the paper's experiment)",
        paper,
        &mut rng,
    )?;
    Ok(())
}
