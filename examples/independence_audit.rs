//! Independence audit: reproduce the paper's central argument on simulated data.
//!
//! The example runs in two acts.  **Act 1** looks at the jitter itself: the
//! relative period jitter of two oscillators is generated twice — once with thermal
//! noise only, once with the paper's full thermal + flicker model — and shows that
//!
//! * the thermal-only source satisfies Bienaymé's identity (`σ²_N` linear in `N`), while
//! * the full model departs from linearity beyond the paper's threshold `N ≈ 281`,
//! * the Ljung–Box portmanteau test corroborates both verdicts on the raw jitter series.
//!
//! **Act 2** closes the loop on *entropy*: the SP 800-90B §6.3 non-IID estimator
//! battery audits generated **bits** against the two competing model claims.  A
//! same-size ideal stream calibrates the battery's conservatism into an audit
//! margin; then
//!
//! * a strong thermal-only generator passes the audit against its (≈ 1 bit/bit)
//!   claim — independence genuinely holds, the model is honest,
//! * a flicker-heavy generator in the transition regime is audited twice: the
//!   **independence-assuming** bound (which credits the flicker variance as if its
//!   realizations were mutually independent) is **refuted** by the battery, while
//!   the **dependent-jitter** (thermal-only) bound survives — the paper's
//!   conclusion, reproduced numerically on live output.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example independence_audit
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[allow(unused_imports)] // referenced by the `verdict` docs: the runtime audit type.
use ptrng::engine::audit::EntropyAudit;

use ptrng::ais::estimators::EstimatorBattery;
use ptrng::core::independence::{jitter_series_looks_independent, IndependenceAnalysis};
use ptrng::measure::dataset::{DatasetPoint, Sigma2NDataset};
use ptrng::osc::jitter::JitterGenerator;
use ptrng::osc::phase::PhaseNoiseModel;
use ptrng::stats::sn::{log_spaced_depths, sigma2_n_sweep, SnSampling};
use ptrng::trng::ero::{EroTrng, EroTrngConfig};
use ptrng::trng::stochastic::EntropyModel;

fn audit(
    name: &str,
    model: PhaseNoiseModel,
    rng: &mut StdRng,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {name} ---");
    let generator = JitterGenerator::new(model);
    let jitter = generator.generate_period_jitter(rng, 1 << 18)?;

    let depths = log_spaced_depths(4, 16_384, 14)?;
    let points = sigma2_n_sweep(&jitter, &depths, SnSampling::Overlapping)?
        .into_iter()
        .map(|p| DatasetPoint {
            n: p.n,
            sigma2_n: p.sigma2_n,
            samples: p.samples,
        })
        .collect();
    let dataset = Sigma2NDataset::new(model.frequency(), "period-domain", points)?;

    println!("    N        sigma^2_N * f0^2     2*N*sigma^2 (independent prediction)");
    let sigma2_1 = dataset.variances()[0] / (2.0 * dataset.depths()[0]);
    for (n, normalized) in dataset.normalized_points() {
        let independent = 2.0 * n * sigma2_1 * model.frequency() * model.frequency();
        println!("{n:9.0}   {normalized:18.6e}   {independent:18.6e}");
    }

    let analysis = IndependenceAnalysis::from_dataset(&dataset)?;
    println!("verdict                 : {:?}", analysis.verdict());
    println!(
        "fitted b_th / b_fl      : {:.2} Hz / {:.3e} Hz^2",
        analysis.fitted_model().b_thermal(),
        analysis.fitted_model().b_flicker()
    );
    match analysis.independence_threshold_95() {
        Some(t) => println!("independence (r_N > 95%): N < {t}"),
        None => println!("independence (r_N > 95%): every depth (no flicker detected)"),
    }
    let ljung_box_ok = jitter_series_looks_independent(&jitter[..20_000], 20, 0.01)?;
    println!(
        "Ljung-Box on raw jitter : {}",
        if ljung_box_ok {
            "no serial correlation"
        } else {
            "serial correlation detected"
        }
    );
    println!();
    Ok(())
}

/// Bits audited per stream in Act 2 (2¹⁹ keeps every battery's conservatism tight
/// enough to separate the two bounds while the whole act stays under ~20 s).
const AUDIT_BITS: usize = 1 << 19;

/// Generates `AUDIT_BITS` bits from an eRO pair with the given per-oscillator
/// noise coefficients and division, and runs the estimator battery over them.
fn battery_over_ero(
    b_thermal: f64,
    b_flicker: f64,
    division: u32,
    rng: &mut StdRng,
) -> Result<(EntropyModel, EstimatorBattery), Box<dyn std::error::Error>> {
    let sampled = PhaseNoiseModel::new(b_thermal, b_flicker, 103.0e6)?;
    let sampling = PhaseNoiseModel::new(b_thermal, b_flicker, 102.3e6)?;
    let relative = sampled.relative_to(&sampling)?;
    let trng = EroTrng::new(EroTrngConfig {
        sampled,
        sampling,
        division,
        duty_cycle: 0.5,
    })?;
    let mut bits = vec![0u8; AUDIT_BITS];
    trng.fill_bits(rng, &mut bits)?;
    Ok((EntropyModel::new(relative), EstimatorBattery::run(&bits)?))
}

/// The audit policy (`estimate ≥ claim − margin`), applied to a battery that has
/// already run — the same comparison [`EntropyAudit`] makes per window inside the
/// engine, without re-running the battery once per claim.
fn verdict(claim: f64, margin: f64, battery: &EstimatorBattery) -> bool {
    battery.min_entropy_estimate() >= claim - margin
}

fn entropy_audit() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Act 2: auditing entropy claims with the SP 800-90B battery ===");
    println!();
    let mut rng = StdRng::seed_from_u64(99);

    // Calibration: the battery is conservative by construction; its shortfall on
    // an ideal same-size stream is the margin any honest audit must grant.
    let ideal: Vec<u8> = (0..AUDIT_BITS).map(|_| rng.gen_range(0..=1u8)).collect();
    let control = EstimatorBattery::run(&ideal)?;
    let floor = control.min_entropy_estimate();
    let margin = (1.0 - floor) + 0.05;
    println!(
        "ideal control ({AUDIT_BITS} bits): battery {floor:.4}/bit (weakest: {}) → audit \
         margin {margin:.3}",
        control.weakest().name
    );
    println!();

    // A strong thermal-only generator: independence genuinely holds and both
    // bounds coincide; the audit must pass.
    let mut rng = StdRng::seed_from_u64(7);
    let (model, battery) = battery_over_ero(1.2e6, 0.0, 16, &mut rng)?;
    let claim = model.entropy_bound_thermal(16).min(1.0);
    println!(
        "thermal-only eRO (division 16): claim {claim:.4} (naive = dependent), battery \
         {:.4} → {}",
        battery.min_entropy_estimate(),
        if verdict(claim, margin, &battery) {
            "audit PASSES (the honest model survives)"
        } else {
            "audit FAILS (unexpected)"
        }
    );
    println!();

    // The paper's regime: a flicker-heavy pair where the measured σ²_N is
    // dominated by mutually *dependent* flicker realizations.  The naive model
    // plugs the total variance into the entropy bound; the corrected model
    // credits only the thermal part.
    let (model, battery) = battery_over_ero(1.3e5, 3.0e11, 8, &mut rng)?;
    let naive = model.entropy_bound_naive(8).min(1.0);
    let dependent = model.entropy_bound_thermal(8).min(1.0);
    let estimate = battery.min_entropy_estimate();
    println!("flicker-heavy eRO (division 8, flicker ≫ thermal in σ²_N):");
    println!("    independence-assuming claim : {naive:.4} bits/bit");
    println!("    dependent-jitter claim      : {dependent:.4} bits/bit");
    println!(
        "    battery estimate            : {estimate:.4} bits/bit (weakest: {})",
        battery.weakest().name
    );
    let naive_survives = verdict(naive, margin, &battery);
    let dependent_survives = verdict(dependent, margin, &battery);
    println!(
        "    naive claim     → {}",
        if naive_survives {
            "survives (unexpected)"
        } else {
            "REFUTED: the battery cannot find the entropy the independence assumption promised"
        }
    );
    println!(
        "    dependent claim → {}",
        if dependent_survives {
            "survives the audit"
        } else {
            "refuted (unexpected)"
        }
    );
    println!();
    if !naive_survives && dependent_survives {
        println!(
            "paper reproduced: crediting mutually dependent jitter realizations as \
             independent overclaims min-entropy; only the thermal-only bound is safe."
        );
    } else {
        println!(
            "NOTE: verdicts differ from the expected reproduction — re-check seeds and \
             margins (see docs/validation.md)."
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Act 1: σ²_N linearity and serial correlation of the jitter ===");
    println!();
    let mut rng = StdRng::seed_from_u64(7);
    let paper = PhaseNoiseModel::date14_experiment();
    let thermal_only = PhaseNoiseModel::thermal_only(paper.b_thermal(), paper.frequency())?;
    audit(
        "thermal noise only (independent jitter)",
        thermal_only,
        &mut rng,
    )?;
    audit(
        "thermal + flicker (the paper's experiment)",
        paper,
        &mut rng,
    )?;
    entropy_audit()
}
