//! Run the FIPS 140-2 battery over a file of packed random bytes (e.g. `ptrngd`
//! output): every full 20 000-bit block is tested.
//!
//! ```text
//! cargo run --release --example fips_check -- random.bin
//! ```

use std::process::ExitCode;

use ptrng::ais::fips;
use ptrng::engine::stream::unpack_bits;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: fips_check <file>");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("fips_check: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bits = unpack_bits(&bytes);
    let blocks: Vec<&[u8]> = bits.chunks_exact(fips::FIPS_BLOCK_BITS).collect();
    if blocks.is_empty() {
        eprintln!(
            "fips_check: need at least {} bits ({} bytes), got {}",
            fips::FIPS_BLOCK_BITS,
            fips::FIPS_BLOCK_BITS / 8,
            bits.len()
        );
        return ExitCode::FAILURE;
    }
    let mut failed_blocks = 0usize;
    for (index, block) in blocks.iter().enumerate() {
        let results = fips::run_all(block).expect("block has the required length");
        let failures: Vec<String> = results
            .iter()
            .filter(|r| !r.passed)
            .map(|r| format!("{} ({})", r.name, r.statistic))
            .collect();
        if !failures.is_empty() {
            failed_blocks += 1;
            println!("block {index}: FAIL — {}", failures.join(", "));
        }
    }
    println!(
        "{}/{} blocks passed the FIPS 140-2 battery",
        blocks.len() - failed_blocks,
        blocks.len()
    );
    if failed_blocks == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
