//! Technology-scaling study: the paper's closing remark made quantitative.
//!
//! Flicker drain-current noise scales as `1/(W·L²)`, so shrinking the transistor
//! geometry raises the flicker share of the oscillator phase noise.  Starting from the
//! multilevel model (device → ISF → phase noise → accumulated jitter), this example
//! prints, for a range of geometry scalings, the constant `K` of `r_N = K/(K+N)`, the
//! 95 % independence threshold, and the accumulation depth an eRO-TRNG needs to reach
//! 0.997 bit of (flicker-aware) entropy per raw bit.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example technology_scaling
//! ```

use ptrng::core::multilevel::MultilevelModel;
use ptrng::noise::transistor::MosTransistor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = MosTransistor::typical_130nm();
    println!("# starting point: a 130 nm-class inverter transistor, 3-stage ring at 103 MHz");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>10}  {:>12}  {:>14}",
        "geometry", "b_th [Hz]", "b_fl [Hz^2]", "K", "N (r_N>95%)", "N for H>=0.997"
    );
    for scale in [1.0f64, 0.8, 0.6, 0.5, 0.35, 0.25] {
        let device = reference.scaled_geometry(scale)?;
        let model = MultilevelModel::from_device(device, 3, 103.0e6)?;
        let relative = model.relative();
        let (_, _, k, threshold) = model.headline_numbers()?;
        let entropy_depth = model.entropy().minimum_depth_for_entropy(0.997)?;
        println!(
            "{:>9.0}%  {:>12.2}  {:>12.3e}  {:>10.0}  {:>12}  {:>14}",
            scale * 100.0,
            relative.b_thermal(),
            relative.b_flicker(),
            k.unwrap_or(f64::INFINITY),
            threshold
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            entropy_depth
        );
    }
    println!();
    println!(
        "Shrinking the geometry leaves b_th untouched but inflates b_fl as 1/(W·L^2): the\n\
         independence window (N with r_N > 95%) closes, exactly the trend the paper\n\
         predicts for future technology nodes.  The required accumulation depth for a\n\
         given entropy target is driven by the thermal part only and therefore stays put —\n\
         but measuring that thermal part gets harder, which is the paper's 'paradox'."
    );
    Ok(())
}
