//! Embedded online test: monitor the thermal-noise contribution on line and detect an
//! attack that suppresses the relative jitter (the paper's proposed AIS 31 online test).
//!
//! The example commissions the test from a healthy acquisition, then replays three
//! scenarios: a healthy device, a device whose thermal noise has collapsed (e.g. a
//! frequency-injection lock), and a stuck digitizer caught by the total-failure check.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example embedded_online_test
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng::measure::circuit::DifferentialCircuit;
use ptrng::osc::phase::PhaseNoiseModel;
use ptrng::stats::sn::log_spaced_depths;
use ptrng::trng::online::{total_failure_check, OnlineTestConfig, OnlineThermalTest};

fn acquire_points(
    circuit: &DifferentialCircuit,
    seed: u64,
) -> Result<(Vec<f64>, Vec<f64>), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let depths = log_spaced_depths(16, 4_096, 10)?;
    let dataset = circuit.measure_period_domain(&mut rng, &depths, 1 << 17)?;
    Ok((dataset.depths(), dataset.variances()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Commissioning: the healthy device defines the reference thermal jitter.
    let healthy = DifferentialCircuit::date14_experiment();
    let reference_sigma = healthy.relative_model()?.thermal_period_jitter();
    let config = OnlineTestConfig::new(103.0e6, reference_sigma, 0.5)?;
    let test = OnlineThermalTest::new(config);
    println!(
        "commissioned reference thermal jitter: {:.2} ps",
        reference_sigma * 1.0e12
    );

    // Scenario 1: healthy device.
    let (depths, variances) = acquire_points(&healthy, 1)?;
    let outcome = test.evaluate_points(&depths, &variances)?;
    println!(
        "healthy device   : sigma = {:.2} ps, ratio = {:.2}, alarm = {}",
        outcome.estimated_thermal_sigma * 1.0e12,
        outcome.ratio_to_reference,
        outcome.alarm
    );

    // Scenario 2: an attack locks the rings together and squeezes the relative thermal
    // jitter by a factor 30 (the flicker component barely matters here).
    let paper = PhaseNoiseModel::date14_experiment();
    let attacked_model = PhaseNoiseModel::new(
        paper.b_thermal() / 900.0,
        paper.b_flicker() / 900.0,
        paper.frequency(),
    )?;
    let per_osc = PhaseNoiseModel::new(
        attacked_model.b_thermal() / 2.0,
        attacked_model.b_flicker() / 2.0,
        attacked_model.frequency(),
    )?;
    let attacked = DifferentialCircuit::new(per_osc, per_osc);
    let (depths, variances) = acquire_points(&attacked, 2)?;
    let outcome = test.evaluate_points(&depths, &variances)?;
    println!(
        "attacked device  : sigma = {:.2} ps, ratio = {:.2}, alarm = {}",
        outcome.estimated_thermal_sigma * 1.0e12,
        outcome.ratio_to_reference,
        outcome.alarm
    );

    // Scenario 3: a stuck digitizer output, caught by the total-failure check within a
    // few dozen samples.
    let mut stuck_bits = vec![0u8, 1, 0, 1, 1, 0];
    stuck_bits.extend(std::iter::repeat_n(1, 64));
    let verdict = total_failure_check(&stuck_bits, 0.9)?;
    println!(
        "stuck digitizer  : repetition-count statistic = {}, passed = {}",
        verdict.statistic, verdict.passed
    );
    Ok(())
}
