//! Stream entropy from a sharded engine and check it against the FIPS battery.
//!
//! ```text
//! cargo run --release --example engine_quickstart
//! ```

use std::time::Instant;

use ptrng::ais::fips;
use ptrng::engine::pool::{ConditionerSpec, Engine, EngineConfig};
use ptrng::engine::source::SourceSpec;
use ptrng::engine::stream::unpack_bits;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two engines, same budget: the physically-simulated eRO-TRNG (with XOR
    // conditioning, as a marginal raw source would be deployed) and the calibrated
    // stochastic-model fast path.
    // XOR factor 4: the eRO raw stream carries ~1% lag-1 correlation at division 8,
    // which adjacent-bit XOR would fold into output bias; two folds suppress it.
    for (spec, conditioner) in [
        ("ero:8", ConditionerSpec::xor(4)),
        ("model", ConditionerSpec::none()),
    ] {
        let budget = 256 * 1024u64;
        let config = EngineConfig::new(SourceSpec::parse(spec)?)
            .shards(4)
            .seed(42)
            .conditioner(conditioner)
            .budget_bytes(Some(budget));
        let started = Instant::now();
        let mut engine = Engine::spawn(config)?;
        let bytes = engine.read_to_end()?;
        let elapsed = started.elapsed().as_secs_f64();
        let snapshot = engine.metrics().snapshot();
        engine.join()?;

        let bits = unpack_bits(&bytes[..fips::FIPS_BLOCK_BITS / 8]);
        let verdicts = fips::run_all(&bits)?;
        let all_passed = verdicts.iter().all(|r| r.passed);

        println!(
            "{spec:>8}: {} KiB in {elapsed:.2}s ({:.2} MiB/s), {} raw bits over {} batches, FIPS battery: {}",
            bytes.len() / 1024,
            bytes.len() as f64 / elapsed / (1024.0 * 1024.0),
            snapshot.total_raw_bits,
            snapshot.total_batches,
            if all_passed { "pass" } else { "FAIL" },
        );
        for shard in &snapshot.per_shard {
            println!(
                "          shard {}: {} bytes in {} batches ({:.6} accounted h/bit)",
                shard.shard, shard.output_bytes, shard.batches, shard.entropy_per_output_bit
            );
        }
    }
    Ok(())
}
