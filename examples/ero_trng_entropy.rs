//! eRO-TRNG entropy study: raw bits, statistical tests and the entropy over-estimation
//! caused by ignoring the flicker-induced dependence of jitter realizations.
//!
//! The example
//!
//! 1. builds an elementary RO-TRNG from the paper's oscillator pair,
//! 2. generates raw bits, runs the AIS 31 / FIPS battery on them,
//! 3. applies XOR post-processing and measures empirical entropy before/after,
//! 4. tabulates, as a function of the accumulation depth, the entropy per bit claimed by
//!    the naive (independence-assuming) model against the flicker-aware bound — the
//!    security gap the paper warns about.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ero_trng_entropy
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng::ais::battery::{run_battery, BatteryConfig};
use ptrng::trng::entropy::{block_entropy, markov_entropy_rate, shannon_entropy_from_bias};
use ptrng::trng::ero::{EroTrng, EroTrngConfig};
use ptrng::trng::postprocess::xor_decimate;
use ptrng::trng::stochastic::EntropyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The generator: the paper's oscillators, one bit every 64 sampling periods.
    let config = EroTrngConfig::date14_experiment(64);
    let trng = EroTrng::new(config)?;
    println!("eRO-TRNG bit rate: {:.2} Mbit/s", trng.bit_rate() / 1.0e6);

    // 2. Raw bits and the statistical battery.
    let mut rng = StdRng::seed_from_u64(99);
    let mut raw = vec![0u8; 60_000];
    trng.fill_bits(&mut rng, &mut raw)?;
    println!(
        "raw bias                : {:.4}",
        raw.iter().map(|&b| b as f64).sum::<f64>() / raw.len() as f64
    );
    println!(
        "raw Shannon (bias)      : {:.4} bit/bit",
        shannon_entropy_from_bias(&raw)?
    );
    println!(
        "raw Markov rate         : {:.4} bit/bit",
        markov_entropy_rate(&raw)?
    );
    println!(
        "raw 8-bit block entropy : {:.4} bit/bit",
        block_entropy(&raw, 8)?
    );
    let battery = run_battery(&raw, &BatteryConfig::default())?;
    println!(
        "statistical battery     : {}/{} tests passed {}",
        battery.results.iter().filter(|r| r.passed).count(),
        battery.len(),
        if battery.all_passed() {
            "(all good)"
        } else {
            ""
        }
    );
    for failure in battery.failures() {
        println!("    failed: {failure}");
    }

    // 3. Algebraic post-processing.
    let processed = xor_decimate(&raw, 4)?;
    println!(
        "after XOR-4             : {} bits, Markov rate {:.4} bit/bit",
        processed.len(),
        markov_entropy_rate(&processed)?
    );

    // 4. Model entropy bounds: naive vs flicker-aware.
    let entropy_model = EntropyModel::date14_experiment();
    println!("\naccumulation depth N | naive bound | thermal-only bound | over-estimation");
    for n in [500usize, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000] {
        println!(
            "{n:20} | {:11.4} | {:18.4} | {:15.4}",
            entropy_model.entropy_bound_naive(n),
            entropy_model.entropy_bound_thermal(n),
            entropy_model.entropy_overestimation(n)
        );
    }
    let depth = entropy_model.minimum_depth_for_entropy(0.997)?;
    println!("\ndepth needed for 0.997 bit/bit under the flicker-aware model: N >= {depth}");
    Ok(())
}
