//! Quickstart: simulate the paper's measurement circuit, fit `σ²_N = a·N + b·N²`, and
//! print the headline numbers (thermal jitter, r_N constant, independence threshold).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng::prelude::*;
use ptrng::stats::sn::log_spaced_depths;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The two simulated 103 MHz ring oscillators of the paper's experiment.
    let circuit = DifferentialCircuit::date14_experiment();
    let mut rng = StdRng::seed_from_u64(2024);

    // Acquire sigma^2_N over three decades of accumulation depths.
    let depths = log_spaced_depths(8, 8_192, 16)?;
    println!(
        "acquiring sigma^2_N at {} depths (period-domain estimator)…",
        depths.len()
    );
    let dataset = circuit.measure_period_domain(&mut rng, &depths, 1 << 18)?;

    // Analyse: fit, independence verdict, thermal extraction, entropy implications.
    let report = AnalysisReport::from_dataset(&dataset, &[1_000, 10_000, 60_000])?;
    println!("{report}");

    // Compare the recovered numbers against the values quoted in the paper.
    println!(
        "paper reference            : b_th = {} Hz, sigma = {} ps, K = {}",
        ptrng::core::paper::B_THERMAL_HZ,
        ptrng::core::paper::THERMAL_JITTER_SECONDS * 1.0e12,
        ptrng::core::paper::RN_CONSTANT,
    );
    Ok(())
}
