//! Statistical tolerances shared by the seed-pinned integration tests.
//!
//! Every cross-check in `statistics_consistency.rs` and `trng_pipeline.rs`
//! compares two *estimators* of the same physical quantity on one seeded sample,
//! so the acceptable disagreement is set by estimator variance, not by numerical
//! precision.  The tolerances live here — once, with their confidence rationale —
//! instead of being re-pinned ad hoc in every test: when a seed or a sample size
//! changes, this is the only place to revisit.
//!
//! The quoted "≈ 5σ" figures are loose upper bounds from the asymptotic variance
//! of the respective estimators at the sample sizes the tests use (2¹⁶–2¹⁷
//! samples); the tests are deterministic per seed, so the margin only needs to
//! cover re-pinning a seed, not continuous sampling noise.

/// Relative disagreement allowed between the direct `σ²_N` estimator and the
/// Allan-variance route over one 2¹⁶-sample record.  Both are quadratic-form
/// estimators of the same variance with ≈ 1 % relative standard error at the
/// deepest depth tested (N = 1024 leaves ~64 disjoint windows); 5 % ≈ 5σ.
pub const SIGMA2_ROUTE_AGREEMENT_REL: f64 = 0.05;

/// Relative disagreement allowed between overlapping and disjoint `s_N` sampling
/// of the same record.  Disjoint sampling at N = 64 over 2¹⁷ samples keeps only
/// ~2000 windows (≈ 3 % relative standard error); 15 % ≈ 5σ.
pub const SAMPLING_SCHEME_AGREEMENT_REL: f64 = 0.15;

/// Absolute tolerance on a fitted log-log PSD slope versus its theoretical value.
/// A Welch fit over ~2 decades with 4096-sample Hann segments scatters by ≈ 0.05
/// in slope; 0.3 also absorbs the leakage bias at the band edges.
pub const PSD_SLOPE_ABS: f64 = 0.3;

/// Minimum Shannon entropy per bit expected from a von-Neumann-corrected
/// sequence.  Exact debiasing leaves only estimator bias: for ≥ 1000 output bits
/// the plug-in entropy estimator sits within 1e-3 of 1, so 0.99 is ≈ 5σ deep.
pub const VN_OUTPUT_MIN_SHANNON: f64 = 0.99;

/// Slack allowed when asserting that XOR decimation does not *reduce* the
/// per-bit Markov entropy rate estimate (the estimator re-runs on 4× fewer
/// samples, so its bias term moves by ~1e-4 at the 120 000-bit sample size).
pub const XOR_RATE_EPS: f64 = 1e-3;

/// Asserts `a` and `b` agree to the given relative tolerance.
pub fn assert_rel(a: f64, b: f64, rel: f64) {
    let scale = a.abs().max(b.abs()).max(1e-300);
    assert!(
        (a - b).abs() / scale <= rel,
        "{a} vs {b} disagree beyond rel {rel}"
    );
}
