//! Helpers shared by the workspace-level integration tests.
//!
//! Each integration test is its own crate and uses a subset of these items, so
//! dead-code analysis is silenced for the module as a whole.
#![allow(dead_code)]

pub mod tolerances;
