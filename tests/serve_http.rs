//! Loopback integration tests of the `ptrng-serve` HTTP entropy service: a real
//! server on an ephemeral port, a minimal test client (with a chunked-transfer
//! decoder), and the acceptance behaviours of ISSUE 4 — exact-byte draws, distinct
//! bytes across concurrent clients, the HTTP 503 entropy-deficit refusal carrying
//! the ledger JSON, the 429 token-bucket refusal, the per-request byte cap, and the
//! healthz/metrics shapes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ptrng_engine::expanded::DrbgPolicy;
use ptrng_engine::fault::FaultPlan;
use ptrng_engine::health::HealthConfig;
use ptrng_engine::pool::{ConditionerSpec, EngineConfig};
use ptrng_engine::pooled::PoolOptions;
use ptrng_engine::source::SourceSpec;
use ptrng_serve::server::{RateLimit, ServeConfig, Server, ShutdownHandle};
use ptrng_trng::conditioning::EntropyLedger;

/// A running test server, shut down and joined on drop.
struct TestServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<ptrng_serve::Result<()>>>,
}

impl TestServer {
    fn start(mut config: ServeConfig) -> Self {
        config.listen = "127.0.0.1:0".to_string();
        let server = Server::bind(config).expect("server binds");
        let addr = server.local_addr().expect("bound address");
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        Self {
            addr,
            handle,
            thread: Some(thread),
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .expect("server thread joins")
                .expect("server drains cleanly");
        }
    }
}

fn model_config() -> ServeConfig {
    let engine = EngineConfig::new(SourceSpec::model(0.5).expect("valid spec"))
        .shards(2)
        .seed(42)
        .health(HealthConfig::default().without_startup_battery());
    ServeConfig::new(engine)
}

/// A parsed response from the test client.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request (with `Connection: close`) and reads the full response.
fn get(addr: SocketAddr, target: &str) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("request written");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("response read");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Response {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header block");
    let head = std::str::from_utf8(&raw[..head_end]).expect("ASCII head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|line| {
            let (name, value) = line.split_once(':').expect("header line");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    let payload = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(payload)
    } else {
        payload.to_vec()
    };
    Response {
        status,
        headers,
        body,
    }
}

/// Minimal `Transfer-Encoding: chunked` decoder for the test client.
fn decode_chunked(mut payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::new();
    loop {
        let line_end = payload
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size_text = std::str::from_utf8(&payload[..line_end]).expect("ASCII size");
        let size = usize::from_str_radix(size_text.trim(), 16).expect("hex chunk size");
        payload = &payload[line_end + 2..];
        if size == 0 {
            return body;
        }
        body.extend_from_slice(&payload[..size]);
        assert_eq!(&payload[size..size + 2], b"\r\n", "chunk terminator");
        payload = &payload[size + 2..];
    }
}

#[test]
fn entropy_requests_return_exact_bytes_with_ledger_headers() {
    let server = TestServer::start(model_config());

    let response = get(server.addr, "/entropy?bytes=4096");
    assert_eq!(response.status, 200);
    assert_eq!(response.body.len(), 4096, "exact-byte contract");
    assert!(
        response.body.iter().any(|&b| b != 0),
        "entropy is not all-zero"
    );

    // The accounted ledger is the response contract: a parsable min-entropy header
    // and the canonical ledger JSON that round-trips through the typed form.
    let h: f64 = response
        .header("x-ptrng-minentropy")
        .expect("min-entropy header")
        .parse()
        .expect("numeric min-entropy");
    assert!(h > 0.999, "model source accounts full entropy, got {h}");
    let ledger = EntropyLedger::from_json(response.header("x-ptrng-ledger").expect("ledger"))
        .expect("canonical ledger JSON");
    assert!((ledger.min_entropy_per_bit() - h).abs() < 1e-6);

    // A zero-byte request is legal and returns an empty body.
    let empty = get(server.addr, "/entropy?bytes=0");
    assert_eq!(empty.status, 200);
    assert!(empty.body.is_empty());
}

#[test]
fn concurrent_clients_receive_distinct_entropy() {
    let server = TestServer::start(model_config());
    let addr = server.addr;
    let clients: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || get(addr, "/entropy?bytes=2048").body))
        .collect();
    let bodies: Vec<Vec<u8>> = clients
        .into_iter()
        .map(|c| c.join().expect("client joins"))
        .collect();
    for body in &bodies {
        assert_eq!(body.len(), 2048);
    }
    for a in 0..bodies.len() {
        for b in (a + 1)..bodies.len() {
            assert_ne!(
                bodies[a], bodies[b],
                "clients {a} and {b} received identical bytes"
            );
        }
    }
}

#[test]
fn entropy_deficit_answers_503_with_the_ledger_body() {
    // model:0.95 accounts ~0.074 bits/bit; even sha256:2 cannot reach 0.997, so the
    // engine refuses at spawn and the server starts in refusing mode.
    let engine = EngineConfig::new(SourceSpec::model(0.95).expect("valid spec"))
        .seed(7)
        .conditioner(ConditionerSpec::sha256(2))
        .min_output_entropy(Some(0.997))
        .health(HealthConfig::default().without_startup_battery());
    let server = TestServer::start(ServeConfig::new(engine));

    let response = get(server.addr, "/entropy?bytes=64");
    assert_eq!(response.status, 503);
    // The refusal carries a retry hint: deficits are config/health conditions
    // that may clear (an operator fix, a pool child reinstated), so clients are
    // told when to probe again instead of hammering.
    let retry: u64 = response
        .header("retry-after")
        .expect("Retry-After header on the deficit refusal")
        .parse()
        .expect("integer seconds");
    assert!(retry >= 1, "a meaningful retry hint, got {retry}");
    let body = response.body_text();
    assert!(body.contains("entropy deficit"), "{body}");
    assert!(body.contains("\"required\":0.997"), "{body}");
    // The embedded ledger is the canonical JSON form, extractable and parsable.
    // `ledger` is the last field of the refusal object: strip exactly the outer `}`.
    let ledger_at = body.find("\"ledger\":").expect("ledger field") + "\"ledger\":".len();
    let ledger = EntropyLedger::from_json(&body[ledger_at..body.len() - 1])
        .expect("embedded canonical ledger");
    assert!(ledger.min_entropy_per_bit() < 0.997);
    assert!(
        ledger.to_json().contains("sha256:2"),
        "trail names the conditioner"
    );
    // The header carries it too.
    assert!(response.header("x-ptrng-ledger").is_some());

    // healthz reflects the refusal with a 503 of its own.
    let health = get(server.addr, "/healthz");
    assert_eq!(health.status, 503);
    let text = health.body_text();
    assert!(text.contains("\"status\":\"refusing\""), "{text}");
    assert!(text.contains("\"required_min_entropy\":0.997"), "{text}");

    // metrics report the refusal state instead of lying about throughput.
    let metrics = get(server.addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body_text().contains("ptrng_serving 0"));
}

#[test]
fn rate_limiter_refuses_with_429_and_retry_after() {
    let mut config = model_config();
    // Tiny sustained rate, burst of exactly one 2 KiB request.
    config.rate_limit = Some(RateLimit {
        bytes_per_sec: 64,
        burst_bytes: 2048,
    });
    let server = TestServer::start(config);

    // A HEAD probe serves the contract headers without spending the client's
    // entropy budget…
    let mut conn = TcpStream::connect(server.addr).expect("connects");
    write!(
        conn,
        "HEAD /entropy?bytes=2048 HTTP/1.1\r\nConnection: close\r\n\r\n"
    )
    .expect("written");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read");
    let probe = parse_response(&raw);
    assert_eq!(probe.status, 200);
    assert!(probe.header("x-ptrng-minentropy").is_some());
    assert!(probe.body.is_empty());

    // …so the full burst is still available to the real request.
    let first = get(server.addr, "/entropy?bytes=2048");
    assert_eq!(first.status, 200);
    assert_eq!(first.body.len(), 2048);

    let second = get(server.addr, "/entropy?bytes=2048");
    assert_eq!(second.status, 429);
    let retry: u64 = second
        .header("retry-after")
        .expect("Retry-After header")
        .parse()
        .expect("integer seconds");
    assert!(retry >= 1, "a meaningful retry hint, got {retry}");
    assert!(second.body_text().contains("rate limited"));

    // Non-entropy endpoints are not charged.
    assert_eq!(get(server.addr, "/healthz").status, 200);
}

#[test]
fn oversized_requests_hit_the_per_request_cap() {
    let mut config = model_config();
    config.max_request_bytes = 1024;
    let server = TestServer::start(config);
    let response = get(server.addr, "/entropy?bytes=4096");
    assert_eq!(response.status, 413);
    assert!(response.body_text().contains("capped at 1024"));
    // At the cap is fine.
    assert_eq!(get(server.addr, "/entropy?bytes=1024").body.len(), 1024);
}

#[test]
fn healthz_and_metrics_have_the_documented_shape() {
    let server = TestServer::start(model_config());
    let _ = get(server.addr, "/entropy?bytes=1024");

    let health = get(server.addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(
        health.header("content-type"),
        Some("application/json"),
        "healthz is JSON"
    );
    let text = health.body_text();
    for field in [
        "\"status\":\"ok\"",
        "\"shards\":2",
        "\"live_shards\":2",
        "\"alarms\":0",
        "\"alarm_reasons\":[]",
        "\"min_entropy_per_bit\":",
    ] {
        assert!(text.contains(field), "missing `{field}` in {text}");
    }

    let metrics = get(server.addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .expect("content type")
        .starts_with("text/plain"));
    let text = metrics.body_text();
    for family in [
        "# TYPE ptrng_raw_bits_total counter",
        "ptrng_output_bytes_total",
        "ptrng_min_entropy_per_output_bit",
        "ptrng_http_requests_total",
        "ptrng_http_entropy_bytes_served_total",
        "ptrng_http_responses_total{status=\"200\"}",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }
    // The entropy bytes we drew are accounted.
    let served: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("ptrng_http_entropy_bytes_served_total "))
        .expect("bytes-served sample")
        .parse()
        .expect("integer sample");
    assert!(served >= 1024, "{served}");
}

#[test]
fn malformed_and_unknown_requests_get_clean_errors() {
    let server = TestServer::start(model_config());
    assert_eq!(get(server.addr, "/entropy").status, 400);
    assert_eq!(get(server.addr, "/entropy?bytes=banana").status, 400);
    assert_eq!(get(server.addr, "/teapot").status, 404);

    // A non-GET method is answered with 405 rather than a dropped connection.
    let mut conn = TcpStream::connect(server.addr).expect("connects");
    write!(conn, "POST /entropy HTTP/1.1\r\nConnection: close\r\n\r\n").expect("written");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read");
    assert_eq!(parse_response(&raw).status, 405);
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let server = TestServer::start(model_config());
    let mut conn = TcpStream::connect(server.addr).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    // Two sequential requests on one socket; the second closes.
    write!(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("first written");
    let mut reader = std::io::BufReader::new(conn.try_clone().expect("clone"));
    let first = read_one_keepalive_response(&mut reader);
    assert_eq!(first.status, 200);
    write!(
        conn,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("second written");
    let second = read_one_keepalive_response(&mut reader);
    assert_eq!(second.status, 200);
}

/// Reads one `Content-Length`-framed response from a keep-alive stream.
fn read_one_keepalive_response(reader: &mut impl std::io::BufRead) -> Response {
    let mut head = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        head.extend_from_slice(line.as_bytes());
        if line == "\r\n" {
            break;
        }
    }
    let mut parsed = parse_response(&head);
    let length: usize = parsed
        .header("content-length")
        .expect("keep-alive responses are length-framed")
        .parse()
        .expect("integer length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    parsed.body = body;
    parsed
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let server = TestServer::start(model_config());
    let addr = server.addr;
    // Issue a request, then shut down (the Drop impl asserts the drain is clean).
    assert_eq!(get(addr, "/entropy?bytes=1024").status, 200);
    drop(server);
    // The port no longer accepts connections once serve() returned.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener closed after shutdown"
    );
}

#[test]
fn selftest_audits_the_served_stream() {
    let server = TestServer::start(model_config());
    // A full-entropy model source with the default margin: the battery must not
    // refute the honest ledger claim.  (Small window keeps the test fast; the
    // margin is widened to match, see docs/validation.md.)
    let response = get(server.addr, "/selftest?bits=32768&margin=0.45");
    assert_eq!(response.status, 200, "{}", response.body_text());
    let text = response.body_text();
    assert!(text.contains("\"overclaim\":false"), "{text}");
    assert!(text.contains("\"audit\":"), "{text}");
    assert!(text.contains("\"estimators\":"), "{text}");
    assert!(text.contains("\"ledger\":"), "{text}");
    // The embedded ledger is the canonical JSON form (parsable on its own).
    let ledger_at = text.find("\"ledger\":").expect("ledger embedded") + "\"ledger\":".len();
    let ledger = EntropyLedger::from_json(&text[ledger_at..text.len() - 1]).expect("parsable");
    assert!(ledger.min_entropy_per_bit() > 0.99);

    // An asserted (inflated) claim is refuted: 503 with the same report shape.
    let refuted = get(server.addr, "/selftest?bits=32768&claim=0.999&margin=0.05");
    assert_eq!(refuted.status, 503, "{}", refuted.body_text());
    assert!(refuted.body_text().contains("\"overclaim\":true"));

    // Out-of-domain parameters are 400s, not panics.
    assert_eq!(get(server.addr, "/selftest?bits=12").status, 400);
    assert_eq!(get(server.addr, "/selftest?bits=999999999").status, 400);
    assert_eq!(get(server.addr, "/selftest?claim=abc").status, 400);
    assert_eq!(get(server.addr, "/selftest?margin=2.0").status, 400);

    // The self-test batteries surface on /metrics.
    let metrics = get(server.addr, "/metrics").body_text();
    assert!(
        metrics.contains("ptrng_http_selftests_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ptrng_http_selftest_overclaims_total 1"),
        "{metrics}"
    );
}

/// Extracts the JSON object starting at the first `{` at-or-after `at` by brace
/// matching (the embedded ledgers/postmortems contain no braces inside strings).
fn extract_json_object(text: &str, at: usize) -> &str {
    let start = at + text[at..].find('{').expect("object start");
    let mut depth = 0usize;
    for (offset, byte) in text[start..].bytes().enumerate() {
        match byte {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return &text[start..=start + offset];
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced braces from {start} in {text}");
}

#[test]
fn alarms_surface_postmortems_on_healthz_trace_and_journal() {
    use ptrng_engine::audit::AuditConfig;
    use ptrng_obs::{Journal, ObsClock};

    let journal_path =
        std::env::temp_dir().join(format!("ptrng-serve-journal-{}.jsonl", std::process::id()));
    let journal =
        std::sync::Arc::new(Journal::create(&journal_path, ObsClock::new()).expect("journal"));

    // model:0.95 accounts ~0.074 bits/bit; auditing it against an asserted 0.9
    // claim refutes the claim on the first completed window, alarming shard 0.
    // Shard 1 keeps serving, so the server stays up in degraded state.
    let engine = EngineConfig::new(SourceSpec::model(0.95).expect("valid spec"))
        .shards(2)
        .seed(11)
        .audit(Some(
            AuditConfig::default().window_bits(1 << 14).claim(Some(0.9)),
        ))
        .health(HealthConfig::default().without_startup_battery());
    let mut config = ServeConfig::new(engine);
    config.journal = Some(journal);
    let server = TestServer::start(config);

    // Draw enough to push shard 0 through one full audit window (2 KiB of
    // conditioned output), then wait for the alarm to land in the postmortem store.
    let _ = get(server.addr, "/entropy?bytes=16384");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let health = loop {
        let health = get(server.addr, "/healthz");
        if health.body_text().contains("\"kind\":\"audit-overclaim\"") {
            break health;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no postmortem after 30s: {}",
            health.body_text()
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // /healthz carries the postmortem: typed kind, rendered reason, pre-alarm
    // flight-recorder events, and a ledger that round-trips through the typed form.
    let text = health.body_text();
    assert!(text.contains("\"status\":\"degraded\""), "{text}");
    assert!(text.contains("\"postmortems\":["), "{text}");
    assert!(text.contains("\"kind\":\"batch-generated\""), "{text}");
    let postmortem_at = text.find("\"postmortems\":[").expect("postmortems field");
    let ledger_at = text[postmortem_at..]
        .find("\"ledger\":")
        .expect("embedded ledger")
        + postmortem_at;
    let ledger = EntropyLedger::from_json(extract_json_object(&text, ledger_at))
        .expect("postmortem ledger is canonical JSON");
    assert!(ledger.min_entropy_per_bit() > 0.0);

    // /debug/trace is valid JSONL: every line is one self-contained object tagged
    // with a record type, and the timeline contains pre-alarm events plus the
    // postmortem itself.
    let trace = get(server.addr, "/debug/trace");
    assert_eq!(trace.status, 200);
    assert_eq!(trace.header("content-type"), Some("application/x-ndjson"));
    let trace_text = trace.body_text();
    let mut saw_event = false;
    let mut saw_postmortem = false;
    for line in trace_text.lines() {
        let value: serde::Value = serde_json::from_str(line).expect("JSONL line parses");
        let record = value
            .as_object()
            .and_then(|obj| obj.iter().find(|(k, _)| k == "record"))
            .map(|(_, v)| v.clone());
        match record {
            Some(serde::Value::Str(kind)) if kind == "event" => saw_event = true,
            Some(serde::Value::Str(kind)) if kind == "postmortem" => saw_postmortem = true,
            other => panic!("unexpected record tag {other:?} in {line}"),
        }
    }
    assert!(saw_event, "{trace_text}");
    assert!(saw_postmortem, "{trace_text}");
    assert!(trace_text.contains("\"kind\":\"alarm\""), "{trace_text}");
    assert!(
        trace_text.contains("\"kind\":\"http-request\""),
        "request lifecycle events interleave: {trace_text}"
    );

    // The --journal sink received the same postmortem as a JSONL line.
    let journal_text = std::fs::read_to_string(&journal_path).expect("journal readable");
    assert!(
        journal_text
            .lines()
            .any(|line| line.contains("\"event\":\"alarm-postmortem\"")
                && serde_json::from_str::<serde::Value>(line).is_ok()),
        "{journal_text}"
    );

    // The alarm surfaces in the counter metrics and the request histogram filled.
    let metrics = get(server.addr, "/metrics").body_text();
    assert!(metrics.contains("ptrng_alarms_total 1"), "{metrics}");
    assert!(
        metrics.contains("ptrng_http_request_seconds_count"),
        "{metrics}"
    );

    drop(server);
    let _ = std::fs::remove_file(&journal_path);
}

/// The full degraded-mode drill over HTTP: a three-child pool with a scripted
/// stuck window on child 1 keeps serving 200s throughout, the dynamic
/// `X-PTRNG-MinEntropy` header drops to the two-child combination while the
/// child is out of the mix, `/healthz` reports `degraded` with the per-child
/// state, the pool Prometheus families expose the transition counters, and
/// after the probation warm-up everything returns to `ok`.
#[test]
fn pool_quarantine_drill_degrades_and_recovers_over_http() {
    let spec = match SourceSpec::parse("pool:model:0.6+model:0.6+model:0.6").expect("valid spec") {
        SourceSpec::Pool { children, .. } => SourceSpec::Pool {
            children,
            options: PoolOptions {
                quarantine_draws: 2,
                probation_windows: 2,
                probation_window_draws: 2,
                stall_ms: None,
                ..PoolOptions::default()
            },
        },
        other => panic!("expected a pool spec, parsed {other:?}"),
    };
    let mut engine = EngineConfig::new(spec)
        .seed(97)
        .batch_bits(8192)
        .health(HealthConfig::default().without_startup_battery())
        .fault(Some(
            FaultPlan::parse("child=1,kind=stuck,at=2KiB,for=1KiB").expect("valid plan"),
        ));
    // Tight queue so the worker cannot run far ahead of the HTTP draws and the
    // multi-batch quarantine window is observable from the client side.
    engine.queue_batches = 1;
    let server = TestServer::start(ServeConfig::new(engine));

    // The static ledger header never moves: it is the design-time accounting
    // (the three-way mix), not the live state.
    let first = get(server.addr, "/entropy?bytes=1024");
    assert_eq!(first.status, 200);
    let static_claim: f64 = {
        let ledger = EntropyLedger::from_json(first.header("x-ptrng-ledger").expect("ledger"))
            .expect("canonical ledger JSON");
        ledger.min_entropy_per_bit()
    };
    assert!(static_claim > 0.98, "three-way mix claim: {static_claim}");

    let mut lowest_header = f64::INFINITY;
    let mut saw_degraded = false;
    let mut recovered = false;
    // Each 1 KiB draw advances the single shard by about one batch; the stuck
    // window opens at 2 KiB and the full quarantine → probation → reinstatement
    // cycle completes within roughly ten batches.
    for _ in 0..40 {
        let draw = get(server.addr, "/entropy?bytes=1024");
        assert_eq!(
            draw.status,
            200,
            "the pool must keep serving: {}",
            draw.body_text()
        );
        assert_eq!(draw.body.len(), 1024);
        let h: f64 = draw
            .header("x-ptrng-minentropy")
            .expect("dynamic min-entropy header")
            .parse()
            .expect("numeric min-entropy");
        lowest_header = lowest_header.min(h);
        // The static ledger header is unchanged even while the claim dips.
        let ledger = EntropyLedger::from_json(draw.header("x-ptrng-ledger").expect("ledger"))
            .expect("canonical ledger JSON");
        assert!((ledger.min_entropy_per_bit() - static_claim).abs() < 1e-9);

        let health = get(server.addr, "/healthz");
        let text = health.body_text();
        if text.contains("\"status\":\"degraded\"") {
            saw_degraded = true;
            assert!(
                text.contains("\"state\":\"quarantined\"")
                    || text.contains("\"state\":\"probation\""),
                "degraded healthz names the child state: {text}"
            );
            // The pool families expose the same state on /metrics.
            let metrics = get(server.addr, "/metrics").body_text();
            assert!(
                metrics.contains("ptrng_pool_child_quarantines_total{shard=\"0\",child=\"1\"} 1"),
                "{metrics}"
            );
        } else if saw_degraded && text.contains("\"status\":\"ok\"") {
            assert!(
                text.contains("\"reinstatements\":1"),
                "recovery carries the reinstatement count: {text}"
            );
            recovered = true;
            break;
        }
    }
    assert!(saw_degraded, "the quarantine never surfaced on /healthz");
    assert!(recovered, "the child was never reinstated");
    assert!(
        lowest_header < 0.96,
        "X-PTRNG-MinEntropy never dropped to the two-child mix: {lowest_header}"
    );

    // After recovery the reinstatement counter persists on /metrics.
    let metrics = get(server.addr, "/metrics").body_text();
    assert!(
        metrics.contains("ptrng_pool_child_reinstatements_total{shard=\"0\",child=\"1\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ptrng_pool_child_state{shard=\"0\",child=\"1\"} 0"),
        "{metrics}"
    );
}

#[test]
fn metrics_expose_latency_histogram_families() {
    let server = TestServer::start(model_config());
    let _ = get(server.addr, "/entropy?bytes=8192");
    let text = get(server.addr, "/metrics").body_text();
    for family in [
        "# TYPE ptrng_batch_generation_seconds histogram",
        "# TYPE ptrng_audit_battery_seconds histogram",
        "# TYPE ptrng_tap_wait_seconds histogram",
        "# TYPE ptrng_http_request_seconds histogram",
        "ptrng_batch_generation_seconds_bucket",
        "ptrng_http_request_seconds_sum",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }
    // Entropy was served, so batches were generated and requests were timed.
    let batches: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("ptrng_batch_generation_seconds_count "))
        .expect("batch histogram count")
        .parse()
        .expect("integer count");
    assert!(batches > 0, "{text}");
    let requests: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("ptrng_http_request_seconds_count "))
        .expect("request histogram count")
        .parse()
        .expect("integer count");
    assert!(requests >= 1, "{text}");
}

#[test]
fn debug_trace_is_rate_limited_like_a_draw() {
    let mut config = model_config();
    config.rate_limit = Some(RateLimit {
        bytes_per_sec: 64,
        burst_bytes: 4096,
    });
    let server = TestServer::start(config);
    // The nominal 4096-byte cost drains the whole burst; the second dump is refused.
    assert_eq!(get(server.addr, "/debug/trace").status, 200);
    let limited = get(server.addr, "/debug/trace");
    assert_eq!(limited.status, 429, "{}", limited.body_text());
    assert!(limited.header("retry-after").is_some());
}

#[test]
fn selftest_is_charged_against_the_rate_limit() {
    let mut config = model_config();
    config.rate_limit = Some(RateLimit {
        bytes_per_sec: 1024,
        burst_bytes: 8192,
    });
    let server = TestServer::start(config);
    // One window of 32768 bits = 4096 bytes drains half the burst; the second
    // request exceeds the remaining budget and must be refused before drawing.
    assert_eq!(
        get(server.addr, "/selftest?bits=32768&margin=0.45").status,
        200
    );
    let limited = get(server.addr, "/selftest?bits=65536&margin=0.45");
    assert_eq!(limited.status, 429, "{}", limited.body_text());
    assert!(limited.header("retry-after").is_some());
}

/// `model_config` plus an enabled DRBG expansion tier with the given per-seed
/// output allowance.
fn drbg_config(reseed_after_bytes: u64) -> ServeConfig {
    let mut config = model_config();
    config.drbg = Some(DrbgPolicy {
        reseed_after_bytes,
        ..DrbgPolicy::default()
    });
    config
}

#[test]
fn random_tier_draws_exact_bytes_with_tier_headers() {
    let server = TestServer::start(drbg_config(128 << 20));

    let response = get(server.addr, "/random?bytes=100000");
    assert_eq!(response.status, 200, "{}", response.body_text());
    assert_eq!(response.body.len(), 100_000, "exact-byte contract");
    assert!(
        response.body.iter().any(|&b| b != 0),
        "expanded output is not all-zero"
    );
    assert_eq!(response.header("x-ptrng-tier"), Some("drbg-sha256"));
    EntropyLedger::from_json(response.header("x-ptrng-ledger").expect("ledger header"))
        .expect("canonical ledger JSON rides the expansion tier too");

    // The full-entropy tier names itself on the same header.
    let full = get(server.addr, "/entropy?bytes=64");
    assert_eq!(full.header("x-ptrng-tier"), Some("full-entropy"));

    // A zero-byte request is legal and draws nothing (not even a seed).
    let empty = get(server.addr, "/random?bytes=0");
    assert_eq!(empty.status, 200);
    assert!(empty.body.is_empty());

    // The tier's counters surface as the ptrng_drbg_* metric families: one
    // funded seed (the instantiation) covered the whole 100 kB draw.
    let metrics = get(server.addr, "/metrics").body_text();
    assert!(metrics.contains("ptrng_drbg_reseeds_total 1"), "{metrics}");
    assert!(
        metrics.contains("ptrng_drbg_bytes_total 100000"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ptrng_drbg_seed_bits_debited_total 384"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ptrng_drbg_reseed_seconds_count"),
        "reseed latency histogram family: {metrics}"
    );
}

#[test]
fn random_without_the_drbg_flag_answers_404() {
    let server = TestServer::start(model_config());
    let response = get(server.addr, "/random?bytes=64");
    assert_eq!(response.status, 404, "{}", response.body_text());
    assert!(
        response.body_text().contains("--drbg"),
        "the refusal names the enabling flag: {}",
        response.body_text()
    );
    // No tier, no drbg metric families.
    let metrics = get(server.addr, "/metrics").body_text();
    assert!(!metrics.contains("ptrng_drbg_generates"), "{metrics}");
}

#[test]
fn tiers_have_separate_rate_limit_buckets() {
    let mut config = drbg_config(128 << 20);
    config.rate_limit = Some(RateLimit {
        bytes_per_sec: 1024,
        burst_bytes: 4096,
    });
    let server = TestServer::start(config);

    // Exhaust the full-entropy bucket…
    assert_eq!(get(server.addr, "/entropy?bytes=4096").status, 200);
    let refused = get(server.addr, "/entropy?bytes=4096");
    assert_eq!(refused.status, 429, "{}", refused.body_text());

    // …the /random bucket of the same client is untouched…
    let random = get(server.addr, "/random?bytes=4096");
    assert_eq!(
        random.status,
        200,
        "the tiers must not share a bucket: {}",
        random.body_text()
    );

    // …until it is exhausted on its own terms.
    let refused_random = get(server.addr, "/random?bytes=4096");
    assert_eq!(refused_random.status, 429, "{}", refused_random.body_text());
    assert!(refused_random.header("retry-after").is_some());
}

/// The expansion tier's design point: between funded reseeds it keeps serving
/// while the full-entropy credit dips (a quarantined pool child), because the
/// bits it emits were funded by a seed that *was* accounted when drawn.
#[test]
fn random_tier_keeps_serving_through_a_quarantine_drill() {
    let spec = match SourceSpec::parse("pool:model:0.6+model:0.6+model:0.6").expect("valid spec") {
        SourceSpec::Pool { children, .. } => SourceSpec::Pool {
            children,
            options: PoolOptions {
                quarantine_draws: 2,
                probation_windows: 2,
                probation_window_draws: 2,
                stall_ms: None,
                ..PoolOptions::default()
            },
        },
        other => panic!("expected a pool spec, parsed {other:?}"),
    };
    let mut engine = EngineConfig::new(spec)
        .seed(97)
        .batch_bits(8192)
        .health(HealthConfig::default().without_startup_battery())
        .fault(Some(
            FaultPlan::parse("child=1,kind=stuck,at=2KiB,for=1KiB").expect("valid plan"),
        ));
    engine.queue_batches = 1;
    let mut config = ServeConfig::new(engine);
    // A huge allowance: one healthy seed funds the whole drill, so no reseed
    // comes due while the claim is dipped.
    config.drbg = Some(DrbgPolicy::default());
    let server = TestServer::start(config);

    // Prime the DRBG with a funded seed while every child is healthy.
    assert_eq!(get(server.addr, "/random?bytes=1024").status, 200);

    let mut saw_dip = false;
    for _ in 0..40 {
        // Advance the conditioned stream into (and through) the fault window.
        let draw = get(server.addr, "/entropy?bytes=1024");
        assert_eq!(draw.status, 200, "{}", draw.body_text());
        let h: f64 = draw
            .header("x-ptrng-minentropy")
            .expect("dynamic min-entropy header")
            .parse()
            .expect("numeric min-entropy");
        let random = get(server.addr, "/random?bytes=1024");
        assert_eq!(
            random.status,
            200,
            "the expansion tier must keep serving through the dip: {}",
            random.body_text()
        );
        assert_eq!(random.body.len(), 1024);
        if h < 0.97 {
            saw_dip = true;
            break;
        }
    }
    assert!(saw_dip, "the drill never dipped the full-entropy credit");
}

/// The flip side: when a due reseed cannot be funded by the currently accounted
/// claim, the tier refuses with the same canonical 503-with-ledger body as
/// `/entropy` — never silently under-seeded output.
#[test]
fn random_reseed_starvation_returns_the_canonical_ledger_refusal() {
    let spec = match SourceSpec::parse("pool:model:0.6+model:0.6+model:0.6").expect("valid spec") {
        SourceSpec::Pool { children, .. } => SourceSpec::Pool {
            children,
            options: PoolOptions {
                quarantine_draws: 2,
                probation_windows: 2,
                probation_window_draws: 2,
                stall_ms: None,
                ..PoolOptions::default()
            },
        },
        other => panic!("expected a pool spec, parsed {other:?}"),
    };
    let mut engine = EngineConfig::new(spec)
        .seed(97)
        .batch_bits(8192)
        .health(HealthConfig::default().without_startup_battery())
        // No `for=`: the child sticks permanently, so the pool quarantines it
        // and the two-survivor claim stays below the seed-funding floor.
        .fault(Some(
            FaultPlan::parse("child=1,kind=stuck,at=2KiB").expect("valid plan"),
        ));
    engine.queue_batches = 1;
    let mut config = ServeConfig::new(engine);
    // Every 2 KiB request exhausts the allowance, so the next one must reseed.
    config.drbg = Some(DrbgPolicy {
        reseed_after_bytes: 2048,
        ..DrbgPolicy::default()
    });
    let server = TestServer::start(config);

    // While every child is healthy the tier serves.
    assert_eq!(get(server.addr, "/random?bytes=2048").status, 200);

    let mut refusal = None;
    for _ in 0..60 {
        // Advance the conditioned stream into the permanent fault.
        let advance = get(server.addr, "/entropy?bytes=1024");
        assert_eq!(advance.status, 200, "{}", advance.body_text());
        let random = get(server.addr, "/random?bytes=2048");
        if random.status == 503 {
            refusal = Some(random);
            break;
        }
        assert_eq!(random.status, 200, "{}", random.body_text());
    }
    let refusal = refusal.expect("the unfundable reseed never surfaced as a 503");
    let text = refusal.body_text();
    assert!(text.contains("\"error\":\"entropy deficit\""), "{text}");
    assert!(text.contains("\"accounted\":"), "{text}");
    assert!(text.contains("\"required\":"), "{text}");
    // The embedded ledger is the canonical JSON form (parsable on its own).
    let ledger_at = text.find("\"ledger\":").expect("ledger embedded");
    let ledger = EntropyLedger::from_json(extract_json_object(&text, ledger_at))
        .expect("canonical ledger JSON");
    assert!(
        ledger.min_entropy_per_bit() > 0.9,
        "static trail rides along"
    );
    assert!(refusal.header("retry-after").is_some());
    assert!(refusal.header("x-ptrng-ledger").is_some());
}

/// Sends a raw request verbatim (it must carry `Connection: close`) and reads
/// the full response.
fn raw(addr: SocketAddr, request: &str) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    conn.write_all(request.as_bytes()).expect("request written");
    let mut bytes = Vec::new();
    conn.read_to_end(&mut bytes).expect("response read");
    parse_response(&bytes)
}

/// Every rate-limited endpoint must say `Connection: keep-alive` on its 429
/// *and* actually keep the connection: a refused client that retries after
/// `Retry-After` should not pay a reconnect it was never told about.
#[test]
fn rate_limit_refusals_keep_the_connection_alive_on_every_endpoint() {
    let mut config = drbg_config(128 << 20);
    // A burst smaller than any request's cost: every draw endpoint refuses at once.
    config.rate_limit = Some(RateLimit {
        bytes_per_sec: 1,
        burst_bytes: 512,
    });
    let server = TestServer::start(config);

    let mut conn = TcpStream::connect(server.addr).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    let mut reader = std::io::BufReader::new(conn.try_clone().expect("clone"));
    for target in [
        "/entropy?bytes=2048",
        "/random?bytes=2048",
        "/debug/trace",
        "/selftest?bits=32768",
    ] {
        write!(conn, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").expect("written");
        let refusal = read_one_keepalive_response(&mut reader);
        assert_eq!(refusal.status, 429, "{target}: {}", refusal.body_text());
        assert_eq!(
            refusal.header("connection"),
            Some("keep-alive"),
            "{target}: the advertised lifetime must match the enacted one"
        );
        assert!(refusal.header("retry-after").is_some(), "{target}");
    }
    // All four refusals rode one socket, and it still serves.
    write!(
        conn,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("written");
    let health = read_one_keepalive_response(&mut reader);
    assert_eq!(health.status, 200);
    assert_eq!(health.header("connection"), Some("close"));
}

/// `HEAD` is the advertised zero-cost probe: it must not draw entropy, run the
/// battery, seed the DRBG, or charge the client's rate-limit bucket — on any
/// endpoint.
#[test]
fn head_requests_never_draw_entropy_or_charge_the_limiter() {
    let mut config = drbg_config(128 << 20);
    config.rate_limit = Some(RateLimit {
        bytes_per_sec: 1024,
        burst_bytes: 4096,
    });
    let server = TestServer::start(config);

    for target in [
        "/entropy?bytes=4096",
        "/random?bytes=4096",
        "/selftest?bits=32768",
        "/debug/trace",
    ] {
        let probe = raw(
            server.addr,
            &format!("HEAD {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        );
        assert_eq!(probe.status, 200, "{target}");
        assert!(probe.body.is_empty(), "{target}: HEAD has no body");
    }
    // The /selftest probe carries the battery contract headers without running it.
    let probe = raw(
        server.addr,
        "HEAD /selftest?bits=32768 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(probe.header("x-ptrng-minentropy").is_some());
    assert!(probe.header("x-ptrng-ledger").is_some());

    // Nothing was drawn, run, or seeded…
    let metrics = get(server.addr, "/metrics").body_text();
    assert!(
        metrics.contains("ptrng_http_selftests_total 0"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ptrng_http_entropy_bytes_served_total 0"),
        "{metrics}"
    );
    assert!(metrics.contains("ptrng_drbg_reseeds_total 0"), "{metrics}");

    // …and nothing was charged: the burst covers exactly one 4096-byte window,
    // so this draw could not succeed if any HEAD had debited the bucket.
    assert_eq!(
        get(server.addr, "/selftest?bits=32768&margin=0.45").status,
        200
    );
}

/// A zero-byte draw is a legal no-op on both tiers: in particular it must not
/// lazily instantiate the DRBG, which would debit a 384-bit seed for zero
/// output.  Run against a fresh server so the very first request is the probe.
#[test]
fn zero_byte_draws_touch_neither_tier() {
    let server = TestServer::start(drbg_config(128 << 20));
    let empty = get(server.addr, "/random?bytes=0");
    assert_eq!(empty.status, 200);
    assert!(empty.body.is_empty());
    assert!(get(server.addr, "/entropy?bytes=0").body.is_empty());

    let metrics = get(server.addr, "/metrics").body_text();
    assert!(
        metrics.contains("ptrng_drbg_reseeds_total 0"),
        "no seed instantiation for zero bytes: {metrics}"
    );
    assert!(
        metrics.contains("ptrng_drbg_seed_bits_debited_total 0"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ptrng_http_entropy_bytes_served_total 0"),
        "{metrics}"
    );
}

/// Slow-loris: a client dripping its request head one byte at a time is closed
/// at the *absolute* header deadline (each byte arriving must not refresh it),
/// silently, and without degrading concurrent well-behaved clients.
#[test]
fn slow_loris_heads_are_reaped_at_the_header_deadline() {
    let mut config = model_config();
    config.header_timeout = Some(Duration::from_millis(300));
    let server = TestServer::start(config);
    let addr = server.addr;

    let attacker = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).expect("connects");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout set");
        let started = Instant::now();
        for byte in b"GET /entropy?bytes=64 HTTP/1.1\r\n" {
            if conn.write_all(&[*byte]).is_err() {
                break; // reaped mid-drip: also a pass
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink); // EOF (or reset) once reaped
        (started.elapsed(), sink)
    });

    // A well-behaved client is served exact bytes while the attack is running.
    let good = get(addr, "/entropy?bytes=4096");
    assert_eq!(good.status, 200);
    assert_eq!(good.body.len(), 4096);

    let (elapsed, sink) = attacker.join().expect("attacker joins");
    assert!(
        elapsed < Duration::from_secs(3),
        "reaped at the 300ms deadline, not at the client's 10s patience: {elapsed:?}"
    );
    assert!(
        sink.is_empty(),
        "the reap is silent — no response to a head that never arrived: {:?}",
        String::from_utf8_lossy(&sink)
    );
}

/// An idle keep-alive connection is reaped at the idle deadline — silently,
/// and without disturbing the rest of the server.
#[test]
fn idle_keepalive_connections_are_reaped() {
    let mut config = model_config();
    config.idle_timeout = Some(Duration::from_millis(200));
    let server = TestServer::start(config);

    let mut conn = TcpStream::connect(server.addr).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    write!(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("written");
    let mut reader = std::io::BufReader::new(conn.try_clone().expect("clone"));
    assert_eq!(read_one_keepalive_response(&mut reader).status, 200);

    // The connection is idle now; the reaper closes it at the deadline.
    let started = Instant::now();
    let mut rest = Vec::new();
    let _ = reader.read_to_end(&mut rest);
    assert!(rest.is_empty(), "idle reap is a silent close");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "reaped at the 200ms idle deadline: {:?}",
        started.elapsed()
    );
    assert_eq!(get(server.addr, "/healthz").status, 200);
}

/// A client that requests a large stream and then never reads stalls the
/// response; the write deadline reaps it and the truncation stays *visible*
/// (no chunked terminator) — the exact-byte contract is never faked.
#[test]
fn stalled_readers_hit_the_write_deadline_with_visible_truncation() {
    let mut config = drbg_config(128 << 20);
    config.max_request_bytes = 64 << 20;
    config.write_timeout = Duration::from_millis(300);
    let server = TestServer::start(config);

    let mut conn = TcpStream::connect(server.addr).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    // Far more than the kernel's socket buffers can absorb, then stall.
    write!(
        conn,
        "GET /random?bytes=33554432 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("written");
    std::thread::sleep(Duration::from_secs(2));
    let mut bytes = Vec::new();
    conn.read_to_end(&mut bytes).expect("drain after the reap");
    assert!(!bytes.is_empty(), "the head and early chunks were written");
    assert!(bytes.len() < 32 << 20, "nowhere near the full body");
    assert!(
        !bytes.ends_with(b"0\r\n\r\n"),
        "truncation is visible: the chunked terminator must be absent"
    );
    // The stalled connection's reap freed its worker: a fresh client is fine.
    assert_eq!(get(server.addr, "/random?bytes=4096").body.len(), 4096);
}

/// Above `max_connections` the server answers 503 at accept instead of letting
/// the backlog time out, and recovers as soon as a slot frees.
#[test]
fn the_connection_ceiling_refuses_with_503() {
    let mut config = model_config();
    config.max_connections = 2;
    let server = TestServer::start(config);

    let hold_a = TcpStream::connect(server.addr).expect("first connects");
    let hold_b = TcpStream::connect(server.addr).expect("second connects");
    // Let the event loop accept both before the third arrives.
    std::thread::sleep(Duration::from_millis(100));
    let mut refused = TcpStream::connect(server.addr).expect("third reaches the backlog");
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    let mut bytes = Vec::new();
    refused.read_to_end(&mut bytes).expect("refusal read");
    let refusal = parse_response(&bytes);
    assert_eq!(refusal.status, 503);
    assert!(
        refusal.body_text().contains("server busy"),
        "{}",
        refusal.body_text()
    );
    assert!(refusal.header("retry-after").is_some());

    drop(hold_a);
    drop(hold_b);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(get(server.addr, "/healthz").status, 200);
}

/// The per-IP gate caps one client's concurrent connections with a 429 while
/// the global ceiling still has room.
#[test]
fn the_per_ip_gate_refuses_with_429() {
    let mut config = model_config();
    config.per_ip_connections = 2;
    let server = TestServer::start(config);

    let _hold_a = TcpStream::connect(server.addr).expect("first connects");
    let _hold_b = TcpStream::connect(server.addr).expect("second connects");
    std::thread::sleep(Duration::from_millis(100));
    let mut refused = TcpStream::connect(server.addr).expect("third reaches the backlog");
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    let mut bytes = Vec::new();
    refused.read_to_end(&mut bytes).expect("refusal read");
    let refusal = parse_response(&bytes);
    assert_eq!(refusal.status, 429);
    assert!(
        refusal.body_text().contains("too many connections"),
        "{}",
        refusal.body_text()
    );
    assert!(refusal.header("retry-after").is_some());
}

/// The loadgen library drives the server it ships with: a closed-loop run with
/// provably simultaneous keep-alive clients, every byte accounted.
#[test]
fn loadgen_closed_loop_sustains_concurrent_keepalive_clients() {
    let server = TestServer::start(drbg_config(128 << 20));
    let config = ptrng_serve::loadgen::LoadgenConfig::closed(
        server.addr.to_string(),
        "/random?bytes=4096",
        64,
    );
    let report = ptrng_serve::loadgen::run(&config);
    assert!(report.ok(), "{}", report.to_json());
    assert_eq!(
        report.connected, 64,
        "every client held a socket at the rendezvous"
    );
    assert_eq!(report.requests, 128, "2 keep-alive requests per connection");
    assert_eq!(
        report.bytes_read,
        128 * 4096,
        "exact bytes under concurrency"
    );
    assert!(report.p50_ms.is_some() && report.p99_ms.is_some());
}

#[test]
fn selftest_reports_per_estimator_timings() {
    let server = TestServer::start(model_config());
    let response = get(server.addr, "/selftest?bits=32768&margin=0.45");
    assert_eq!(response.status, 200, "{}", response.body_text());
    let text = response.body_text();
    let timings_at = text
        .find("\"estimator_timings\":")
        .expect("timings surfaced");
    let audit_at = text.find("\"audit\":").expect("audit report follows");
    let timings = &text[timings_at..audit_at];
    // Every battery unit reports its wall-clock cost (BATTERY_UNIT_NAMES).
    for name in [
        "mcv",
        "collision",
        "markov",
        "compression",
        "t-tuple+lrs",
        "multi-mcw",
        "lag",
    ] {
        assert!(
            timings.contains(&format!("\"name\":\"{name}\"")),
            "unit {name} missing from {timings}"
        );
    }
    assert!(timings.contains("\"ns\":"), "{timings}");
}
