//! Integration tests of the generation runtime: sharded streaming, budget accounting,
//! shard independence, statistical quality of the emitted bytes, and the health layer's
//! reaction to a frequency-injection-style jitter collapse.

use ptrng::ais::fips;
use ptrng::engine::audit::AuditConfig;
use ptrng::engine::fault::FaultPlan;
use ptrng::engine::health::{AlarmReason, HealthConfig, HealthMonitor, HealthState};
use ptrng::engine::metrics::AlarmKind;
use ptrng::engine::pool::{ConditionerSpec, Engine, EngineConfig};
use ptrng::engine::pooled::PoolOptions;
use ptrng::engine::source::{JitterProfile, SourceSpec};
use ptrng::engine::stream::unpack_bits;
use ptrng::engine::EngineError;
use ptrng::obs::EventKind;
use ptrng::osc::model::AccumulationModel;
use ptrng::osc::phase::PhaseNoiseModel;
use ptrng::trng::online::OnlineTestConfig;

const MEBIBYTE: u64 = 1 << 20;

/// The acceptance scenario: a 4-shard engine streams a full mebibyte; distinct shards
/// emit distinct streams (independent seeding) and the aggregate passes the FIPS
/// 140-2 battery.
#[test]
fn four_shards_stream_a_mebibyte_that_passes_fips() {
    let config = EngineConfig::new(SourceSpec::model(0.5).unwrap())
        .shards(4)
        .seed(2014)
        .budget_bytes(Some(MEBIBYTE));
    let mut engine = Engine::spawn(config).unwrap();

    let mut total = Vec::with_capacity(MEBIBYTE as usize);
    let mut per_shard: Vec<Vec<u8>> = vec![Vec::new(); 4];
    for batch in engine.stream_mut() {
        let batch = batch.expect("no alarm expected from an unbiased source");
        per_shard[batch.shard].extend_from_slice(&batch.bytes);
        total.extend_from_slice(&batch.bytes);
    }
    engine.join().unwrap();

    // Budget exact to the byte, across all shards.
    assert_eq!(total.len() as u64, MEBIBYTE);

    // Every shard contributed, and no two shards emitted the same prefix.
    for (i, shard) in per_shard.iter().enumerate() {
        assert!(
            shard.len() > 1024,
            "shard {i} starved ({} bytes)",
            shard.len()
        );
    }
    for a in 0..per_shard.len() {
        for b in (a + 1)..per_shard.len() {
            let len = per_shard[a].len().min(per_shard[b].len());
            assert_ne!(
                per_shard[a][..len],
                per_shard[b][..len],
                "shards {a}/{b} identical"
            );
        }
    }

    // FIPS 140-2 battery over consecutive 20 000-bit blocks of the aggregate stream.
    let bits = unpack_bits(&total[..(5 * fips::FIPS_BLOCK_BITS) / 8]);
    for (block_idx, block) in bits.chunks_exact(fips::FIPS_BLOCK_BITS).enumerate() {
        for result in fips::run_all(block).unwrap() {
            assert!(
                result.passed,
                "block {block_idx}: {} failed with statistic {}",
                result.name, result.statistic
            );
        }
    }
}

/// The physically-simulated source also streams through the full pipeline: XOR
/// post-processing cleans the residual bias of a small-division eRO-TRNG far enough to
/// pass the startup battery and the continuous tests.
#[test]
fn simulated_ero_shards_survive_health_monitoring() {
    let spec = SourceSpec::ero(8, JitterProfile::Strong).unwrap();
    let config = EngineConfig::new(spec)
        .shards(2)
        .seed(7)
        .batch_bits(8192)
        // Factor 4: adjacent-bit XOR (factor 2) would convert the raw stream's ~1%
        // lag-1 correlation into output bias near the FIPS monobit boundary.
        .conditioner(ConditionerSpec::xor(4))
        // Startup battery on: the first 20 000 output bits are vetted before publishing.
        .budget_bytes(Some(8 * 1024));
    let mut engine = Engine::spawn(config).unwrap();
    let bytes = engine.read_to_end().expect("healthy source must not alarm");
    let snapshot = engine.metrics().snapshot();
    engine.join().unwrap();

    assert_eq!(bytes.len(), 8 * 1024);
    assert!(
        snapshot.total_raw_bits >= 2 * 20_000,
        "startup battery was skipped"
    );
    let bits = unpack_bits(&bytes);
    let ones: usize = bits.iter().map(|&b| b as usize).sum();
    let p = ones as f64 / bits.len() as f64;
    assert!(
        (p - 0.5).abs() < 0.02,
        "post-processed bias too large: p(1) = {p}"
    );
}

/// The divided-sampler sweep exercises several accumulation depths in one stream and
/// still produces plausible bytes.
#[test]
fn divided_sampler_sweep_streams() {
    let spec = SourceSpec::divided_sampler(vec![4, 8, 16], JitterProfile::Strong).unwrap();
    let config = EngineConfig::new(spec)
        .seed(3)
        .batch_bits(4096)
        .budget_bytes(Some(2048))
        .health(HealthConfig::default().without_startup_battery());
    let mut engine = Engine::spawn(config).unwrap();
    let bytes = engine.read_to_end().unwrap();
    engine.join().unwrap();
    assert_eq!(bytes.len(), 2048);
    let bits = unpack_bits(&bytes);
    let ones: usize = bits.iter().map(|&b| b as usize).sum();
    let p = ones as f64 / bits.len() as f64;
    assert!((p - 0.5).abs() < 0.06, "p(1) = {p}");
}

/// The acceptance scenario for the conditioning pipeline: the physically-simulated
/// eRO-TRNG streamed through the SHA-256 vetted conditioner under a strict emission
/// policy (`--min-h 0.997`) produces zero alarms, full-entropy accounting and
/// FIPS-clean output.
#[test]
fn sha256_conditioned_ero_streams_under_a_strict_emission_policy() {
    let spec = SourceSpec::ero(16, JitterProfile::Strong).unwrap();
    let config = EngineConfig::new(spec)
        .shards(2)
        .seed(9)
        .batch_bits(8192)
        .conditioner(ConditionerSpec::parse("sha256").unwrap())
        .min_output_entropy(Some(0.997))
        .budget_bytes(Some(8 * 1024));
    let mut engine = Engine::spawn(config).expect("the accounted entropy meets the policy");
    let bytes = engine.read_to_end().expect("no alarm expected");
    let snapshot = engine.metrics().snapshot();
    engine.join().unwrap();

    assert_eq!(bytes.len(), 8 * 1024);
    assert_eq!(snapshot.alarms, 0);
    for shard in &snapshot.per_shard {
        assert!(
            shard.entropy_per_output_bit >= 0.997,
            "shard {} accounted only {} bits/bit",
            shard.shard,
            shard.entropy_per_output_bit
        );
    }
    assert!(snapshot.total_accounted_entropy_bits >= 0.997 * 8.0 * 8.0 * 1024.0);

    // The conditioned stream is FIPS-clean.
    let bits = unpack_bits(&bytes[..fips::FIPS_BLOCK_BITS / 8]);
    for result in fips::run_all(&bits).unwrap() {
        assert!(result.passed, "{} failed", result.name);
    }
}

/// The emission-refusal path: a thermally-collapsed (degraded stochastic-model)
/// source cannot account 0.997 bits per conditioned bit even through the vetted
/// conditioner, so the engine refuses to emit instead of overclaiming.
#[test]
fn degraded_model_source_is_refused_under_the_emission_policy() {
    let config = EngineConfig::new(SourceSpec::model(0.95).unwrap())
        .seed(4)
        .conditioner(ConditionerSpec::parse("sha256").unwrap())
        .min_output_entropy(Some(0.997))
        .budget_bytes(Some(4096));
    match Engine::spawn(config) {
        Err(EngineError::EntropyDeficit {
            accounted,
            required,
            ledger,
            ..
        }) => {
            assert!(accounted < required);
            // The typed ledger renders the refusal for humans (Display) and
            // machines (canonical JSON) alike.
            assert!(
                ledger.to_string().contains("model(p_one=0.95)"),
                "ledger must name the source: {ledger}"
            );
            assert!(ledger.to_json().contains("model(p_one=0.95)"));
        }
        Err(other) => panic!("expected an entropy deficit, got {other}"),
        Ok(_) => panic!("expected an entropy deficit, engine spawned"),
    }
}

/// A heavily biased source is rejected by the engine's continuous tests and surfaces
/// as a stream error, not silent bad output.
#[test]
fn biased_source_alarms_instead_of_streaming() {
    let config = EngineConfig::new(SourceSpec::model(0.95).unwrap())
        .seed(1)
        .budget_bytes(Some(MEBIBYTE))
        .health(
            HealthConfig::default()
                .without_startup_battery()
                .with_min_entropy(0.999),
        );
    let mut engine = Engine::spawn(config).unwrap();
    let result = engine.read_to_end();
    engine.join().unwrap();
    assert!(
        matches!(result, Err(EngineError::HealthAlarm { shard: 0, .. })),
        "expected a health alarm, got {result:?}"
    );
}

/// The thermal online test is wired through the engine itself: shard workers
/// periodically acquire `σ²_N` counter sweeps from the source's physical model.  With
/// a commissioning reference matching the design, the stream flows; with a reference
/// ten times the actual jitter (i.e. the deployed rings accumulate 100× less jitter
/// variance than commissioned — a locked/injected device), the shard alarms.
#[test]
fn engine_runs_the_thermal_online_test_against_its_sources() {
    let sampled = PhaseNoiseModel::new(1.2e6, 0.0, 103.0e6).unwrap();
    let sampling = PhaseNoiseModel::new(1.2e6, 0.0, 102.3e6).unwrap();
    let relative = sampled.relative_to(&sampling).unwrap();
    let spec = SourceSpec::ero(2, JitterProfile::Strong).unwrap();

    let run = |reference: f64| {
        let thermal = OnlineTestConfig::new(relative.frequency(), reference, 0.5).unwrap();
        let mut config = EngineConfig::new(spec.clone())
            .seed(11)
            .batch_bits(4096)
            .budget_bytes(Some(2048))
            .health(
                HealthConfig::default()
                    .without_startup_battery()
                    .with_thermal(thermal),
            );
        config.thermal_check_batches = 1;
        let mut engine = Engine::spawn(config).unwrap();
        let result = engine.read_to_end();
        let obs = std::sync::Arc::clone(engine.observatory());
        engine.join().unwrap();
        (result, obs)
    };

    let (healthy, obs) = run(relative.thermal_period_jitter());
    assert_eq!(healthy.unwrap().len(), 2048);
    assert!(obs.postmortems().is_empty(), "no alarm, no postmortem");

    let (attacked, obs) = run(relative.thermal_period_jitter() * 10.0);
    match attacked {
        Err(EngineError::HealthAlarm { kind, reason, .. }) => {
            assert_eq!(kind, AlarmKind::Thermal, "unexpected alarm: {reason}");
            assert!(reason.contains("thermal"), "unexpected alarm: {reason}");
        }
        other => panic!("expected a thermal alarm, got {other:?}"),
    }
    // The alarm left a postmortem carrying the shard's pre-alarm flight-recorder
    // timeline (the debounced thermal test needs two strikes, so at least one
    // batch was generated and recorded before the alarm latched).
    let postmortems = obs.postmortems().snapshot();
    let postmortem = postmortems
        .iter()
        .find(|p| p.kind == "thermal")
        .unwrap_or_else(|| panic!("no thermal postmortem in {postmortems:?}"));
    assert!(postmortem.reason.contains("thermal"), "{postmortem:?}");
    assert!(
        postmortem
            .events
            .iter()
            .any(|e| e.kind == EventKind::BatchGenerated && e.t_ns <= postmortem.t_ns),
        "no pre-alarm batch event: {:?}",
        postmortem.events
    );
    assert!(
        postmortem
            .events
            .iter()
            .any(|e| e.kind == EventKind::Alarm && e.value == AlarmKind::Thermal as u64),
        "{:?}",
        postmortem.events
    );
}

/// Rebuilds a parsed pool spec with drill-friendly quarantine tuning (short
/// cooldown and probation so a full quarantine → probation → reinstatement
/// cycle fits in a few dozen batches).
fn fast_pool_spec(text: &str) -> SourceSpec {
    match SourceSpec::parse(text).unwrap() {
        SourceSpec::Pool { children, .. } => SourceSpec::Pool {
            children,
            options: PoolOptions {
                quarantine_draws: 2,
                probation_windows: 2,
                probation_window_draws: 2,
                stall_ms: None,
                ..PoolOptions::default()
            },
        },
        other => panic!("expected a pool spec, parsed {other:?}"),
    }
}

/// The full fault drill through the engine: a three-child pool with a scripted
/// stuck window on child 1 keeps streaming (fault absorbed, no stream error),
/// the quarantine and the reinstatement surface as non-terminal postmortems,
/// the accounted per-output-bit entropy dips while the child is out of the mix
/// and recovers once it is reinstated.
#[test]
fn pool_stuck_fault_drill_quarantines_reaccounts_and_reinstates() {
    // Three equally-biased children: each claims −log₂(0.6) ≈ 0.737 bits/bit,
    // the three-way XOR mix ≈ 0.9885, the two-way mix (one child out) ≈ 0.9434.
    let spec = fast_pool_spec("pool:model:0.6+model:0.6+model:0.6");
    let mut config = EngineConfig::new(spec)
        .seed(41)
        .batch_bits(8192)
        .budget_bytes(Some(48 * 1024))
        .health(HealthConfig::default().without_startup_battery())
        .fault(Some(
            FaultPlan::parse("child=1,kind=stuck,at=2KiB,for=1KiB").unwrap(),
        ));
    // Tight queue: the worker runs at most two batches ahead of the consumer,
    // so sampling the shard metrics between batches reliably observes the
    // several-batch claim dip.
    config.queue_batches = 1;
    let mut engine = Engine::spawn(config).unwrap();

    let mut total = 0u64;
    let mut lowest_claim = f64::INFINITY;
    while let Some(batch) = engine.stream_mut().next() {
        let batch = batch.expect("the drill must not kill the stream");
        total += batch.bytes.len() as u64;
        let claim = engine.metrics().snapshot().per_shard[0].entropy_per_output_bit;
        lowest_claim = lowest_claim.min(claim);
    }
    let snapshot = engine.metrics().snapshot();
    let obs = std::sync::Arc::clone(engine.observatory());
    engine.join().unwrap();

    // The stream delivered the full budget despite the fault.
    assert_eq!(total, 48 * 1024);

    // Quarantine and reinstatement both left typed postmortems, in order.
    let postmortems = obs.postmortems().snapshot();
    let quarantined = postmortems
        .iter()
        .position(|p| p.kind == "source-quarantined")
        .expect("the stuck child must be quarantined");
    let reinstated = postmortems
        .iter()
        .position(|p| p.kind == "source-reinstated")
        .expect("the recovered child must be reinstated");
    assert!(
        quarantined < reinstated,
        "quarantine precedes reinstatement"
    );
    assert!(
        postmortems[quarantined].reason.contains("child 1"),
        "postmortem names the child: {}",
        postmortems[quarantined].reason
    );

    // The ledger followed the pool honestly: while child 1 was out of the mix
    // the claim dropped to the two-child combination, and it recovered after
    // the reinstatement.
    assert!(
        lowest_claim < 0.96,
        "claim never dipped during quarantine: {lowest_claim}"
    );
    let final_claim = snapshot.per_shard[0].entropy_per_output_bit;
    assert!(
        final_claim > 0.98,
        "claim did not recover after reinstatement: {final_claim}"
    );

    // The metrics carry the per-child trajectory: one quarantine, one
    // reinstatement, back to serving.
    let child = snapshot
        .pool_children
        .iter()
        .find(|c| c.status.child == 1)
        .expect("child 1 is published in the snapshot");
    assert_eq!(child.status.state, "serving");
    assert_eq!(child.status.quarantines, 1);
    assert_eq!(child.status.reinstatements, 1);
}

/// Fail-closed: when every child is out of the mix (a scripted permanent fault
/// on one child, a natural health alarm on the other) the pool refuses to
/// fabricate output and the shard surfaces a terminal source failure instead of
/// silently streaming from nothing.
#[test]
fn pool_with_all_children_faulted_fails_closed_through_the_engine() {
    let spec = match SourceSpec::parse("pool:model:0.5+model:0.9999").unwrap() {
        SourceSpec::Pool { children, .. } => SourceSpec::Pool {
            children,
            options: PoolOptions {
                // Long cooldown: neither child comes back within the drill.
                quarantine_draws: 10_000,
                stall_ms: None,
                ..PoolOptions::default()
            },
        },
        other => panic!("expected a pool spec, parsed {other:?}"),
    };
    let config = EngineConfig::new(spec)
        .seed(5)
        .batch_bits(8192)
        .budget_bytes(Some(MEBIBYTE))
        .health(HealthConfig::default().without_startup_battery())
        .fault(Some(FaultPlan::parse("child=0,kind=stuck").unwrap()));
    let mut engine = Engine::spawn(config).unwrap();
    let result = engine.read_to_end();
    engine.join().unwrap();
    match result {
        Err(EngineError::HealthAlarm { kind, reason, .. }) => {
            assert_eq!(kind, AlarmKind::SourceFailure, "unexpected alarm: {reason}");
            // Both fail-closed paths name the quarantine: "no serving children
            // left" (drained over several batches) or "every serving child …
            // was quarantined within one batch".
            assert!(
                reason.contains("quarantined"),
                "unexpected reason: {reason}"
            );
        }
        other => panic!("expected a terminal source failure, got {other:?}"),
    }
}

/// `--audit-every-lane`: with the flag set, every shard runs its own pair of audit
/// lanes (`shardN/raw` / `shardN/conditioned`) and publishes both in the metrics
/// snapshot, instead of the default shard-0-only coverage.
#[test]
fn audit_every_lane_publishes_both_lanes_for_every_shard() {
    const SHARDS: usize = 4;
    let audit = AuditConfig::default().window_bits(1 << 15).margin(0.4);
    let config = EngineConfig::new(SourceSpec::model(0.5).unwrap())
        .shards(SHARDS)
        .seed(2014)
        // Non-identity chain so the conditioned lanes exist alongside the raw ones.
        .conditioner(ConditionerSpec::xor(2))
        .audit(Some(audit))
        .audit_every_lane(true)
        .budget_bytes(Some(64 * 1024))
        // The lane coverage is the point here, not the startup battery.
        .health(HealthConfig::default().without_startup_battery());
    let mut engine = Engine::spawn(config).unwrap();
    let bytes = engine
        .read_to_end()
        .expect("an honest claim must not alarm");
    let snap = engine.metrics().snapshot();
    let obs = std::sync::Arc::clone(engine.observatory());
    engine.join().unwrap();

    assert_eq!(bytes.len(), 64 * 1024);
    assert_eq!(snap.alarms, 0);
    // Every shard reports both of its lanes, each with at least one completed window.
    for shard in 0..SHARDS {
        for lane in [
            format!("shard{shard}/raw"),
            format!("shard{shard}/conditioned"),
        ] {
            let audit = snap
                .audits
                .iter()
                .find(|a| a.lane == lane)
                .unwrap_or_else(|| panic!("lane {lane} missing: {:?}", snap.audits));
            assert!(audit.windows >= 1, "lane {lane} completed no window");
            assert_eq!(audit.overclaims, 0, "lane {lane} overclaimed: {audit:?}");
            assert!(audit.last_estimate > 0.0, "lane {lane}: {audit:?}");
        }
    }
    // The per-estimator decomposition saw the windows too.
    assert!(
        obs.estimator_histograms()
            .iter()
            .any(|(name, histogram)| name == "compression" && histogram.count() > 0),
        "no per-estimator timings recorded"
    );
}

/// `--audit-every-lane` closes the blind spot the default coverage leaves: an
/// overclaim occurring on a non-zero shard now trips that shard's own audit lane.
/// Without the flag only shard 0 is audited and shards 1..N stream unchecked.
#[test]
fn audit_every_lane_catches_an_overclaim_on_a_non_zero_shard() {
    let audit = AuditConfig::default().window_bits(1 << 14).claim(Some(0.9));
    let config = EngineConfig::new(SourceSpec::model(0.95).unwrap())
        .shards(4)
        .seed(17)
        .audit(Some(audit))
        .audit_every_lane(true)
        .budget_bytes(Some(MEBIBYTE))
        .health(HealthConfig::default().without_startup_battery());
    let mut engine = Engine::spawn(config).unwrap();
    let result = engine.read_to_end();
    assert!(
        matches!(result,
            Err(EngineError::HealthAlarm { kind: AlarmKind::AuditOverclaim, ref reason, .. })
                if reason.contains("entropy audit")),
        "expected an audit-overclaim alarm, got {result:?}"
    );

    // Every shard audits its own lane, so every shard alarms independently —
    // including the non-zero shards the default shard-0-only audit cannot see.
    // Alarms are recorded by the workers at alarm time; wait for the laggards.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let reasons = engine.metrics().alarm_reasons();
        if reasons
            .iter()
            .any(|a| a.shard != 0 && a.kind == AlarmKind::AuditOverclaim)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no non-zero shard raised an audit-overclaim alarm: {reasons:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let snap = engine.metrics().snapshot();
    engine.join().unwrap();
    let overclaimed_shards: Vec<&str> = snap
        .audits
        .iter()
        .filter(|a| a.overclaims >= 1)
        .map(|a| a.lane.as_str())
        .collect();
    assert!(
        overclaimed_shards
            .iter()
            .any(|lane| !lane.starts_with("shard0/")),
        "only shard 0 flagged the overclaim: {overclaimed_shards:?}"
    );
}

/// A thermal test on a source without a physical model is rejected up front instead of
/// being silently ignored.
#[test]
fn thermal_test_on_model_source_fails_fast() {
    let model = PhaseNoiseModel::date14_experiment();
    let thermal =
        OnlineTestConfig::new(model.frequency(), model.thermal_period_jitter(), 0.5).unwrap();
    let config = EngineConfig::new(SourceSpec::model(0.5).unwrap())
        .health(HealthConfig::default().with_thermal(thermal));
    match Engine::spawn(config) {
        Err(EngineError::InvalidParameter { name, .. }) => assert_eq!(name, "health.thermal"),
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("thermal test on a model source must be rejected"),
    }
}

/// The paper's attack scenario: frequency injection locks the rings, collapsing the
/// thermal component of the relative jitter.  Feeding the monitor `σ²_N` sweeps scaled
/// down 100× must trip the (debounced) thermal alarm.
#[test]
fn frequency_injection_style_jitter_collapse_trips_the_alarm() {
    let model = PhaseNoiseModel::date14_experiment();
    let reference = model.thermal_period_jitter();
    let thermal = OnlineTestConfig::new(model.frequency(), reference, 0.5).unwrap();
    let config = HealthConfig::default()
        .without_startup_battery()
        .with_thermal(thermal);
    let ledger = ptrng::trng::conditioning::EntropyLedger::source("monitor test", 1.0).unwrap();
    let mut monitor = HealthMonitor::new(&config, &ledger).unwrap();

    let acc = AccumulationModel::new(model);
    let depths: Vec<f64> = vec![1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0];
    let healthy: Vec<f64> = depths.iter().map(|&n| acc.sigma2_n(n as usize)).collect();
    let attacked: Vec<f64> = healthy.iter().map(|v| v * 0.01).collect();

    monitor.observe_sigma2_points(&depths, &healthy).unwrap();
    assert_eq!(monitor.state(), &HealthState::Healthy);

    // The attack persists across evaluations → suspect, then latched alarm.
    monitor.observe_sigma2_points(&depths, &attacked).unwrap();
    assert_eq!(monitor.state(), &HealthState::Suspect { strikes: 1 });
    monitor.observe_sigma2_points(&depths, &attacked).unwrap();
    match monitor.state() {
        HealthState::Alarmed(AlarmReason::ThermalCollapse { ratio }) => {
            assert!(
                *ratio < 0.2,
                "collapsed ratio should be far below threshold: {ratio}"
            );
        }
        other => panic!("expected a latched thermal alarm, got {other:?}"),
    }
    assert!(!monitor.may_publish());
}
