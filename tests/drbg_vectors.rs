//! CAVP-style known-answer tests for the SP 800-90A Hash_DRBG (SHA-256).
//!
//! The DRBGVS-format vector files under `tests/data/drbg/` are driven through
//! `ptrng::trng::drbg::HashDrbg` and the `ReturnedBits` asserted **byte-exact**
//! — one digit off anywhere in Hash_df, Hashgen or the `V`/`C` arithmetic flips
//! the whole output.  See `tests/data/drbg/README.md` for the provenance of the
//! files (an independent Python implementation over hashlib's SHA-256).

use std::path::{Path, PathBuf};

use ptrng::trng::drbg::HashDrbg;

/// One `COUNT = n` record: ordered `(field, bytes)` pairs — order matters
/// because `AdditionalInput` and `EntropyInputPR` legitimately repeat.
struct Record {
    count: u64,
    fields: Vec<(String, Vec<u8>)>,
}

impl Record {
    /// The single value of a field that must appear exactly once.
    fn one(&self, name: &str) -> &[u8] {
        let mut hits = self.fields.iter().filter(|(field, _)| field == name);
        let (_, value) = hits
            .next()
            .unwrap_or_else(|| panic!("COUNT {}: missing field {name}", self.count));
        assert!(
            hits.next().is_none(),
            "COUNT {}: field {name} repeats",
            self.count
        );
        value
    }

    /// All values of a repeating field, in file order.
    fn all(&self, name: &str) -> Vec<&[u8]> {
        self.fields
            .iter()
            .filter(|(field, _)| field == name)
            .map(|(_, value)| value.as_slice())
            .collect()
    }
}

fn data_file(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/drbg")
        .join(name)
}

fn parse_hex(text: &str, context: &str) -> Vec<u8> {
    assert!(text.len().is_multiple_of(2), "{context}: odd hex length");
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .unwrap_or_else(|e| panic!("{context}: bad hex: {e}"))
        })
        .collect()
}

/// Parses one `.rsp` file into its records, checking the section headers claim
/// the SHA-256 / 256-bit-entropy / 128-bit-nonce shape the driver assumes.
fn parse_rsp(name: &str) -> Vec<Record> {
    let text = std::fs::read_to_string(data_file(name))
        .unwrap_or_else(|e| panic!("{name}: vector file must be readable: {e}"));
    let mut records: Vec<Record> = Vec::new();
    let mut saw_sha256 = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            saw_sha256 |= line == "[SHA-256]";
            if let Some(rest) = line.strip_prefix("[EntropyInputLen = ") {
                assert_eq!(rest, "256]", "{name}: unexpected entropy length");
            }
            if let Some(rest) = line.strip_prefix("[NonceLen = ") {
                assert_eq!(rest, "128]", "{name}: unexpected nonce length");
            }
            continue;
        }
        let (field, value) = line
            .split_once(" = ")
            .or_else(|| line.split_once(" ="))
            .unwrap_or_else(|| panic!("{name}: unparseable line: {line}"));
        let (field, value) = (field.trim(), value.trim());
        if field == "COUNT" {
            records.push(Record {
                count: value.parse().expect("integer COUNT"),
                fields: Vec::new(),
            });
            continue;
        }
        let record = records
            .last_mut()
            .unwrap_or_else(|| panic!("{name}: field {field} before any COUNT"));
        record
            .fields
            .push((field.to_string(), parse_hex(value, field)));
    }
    assert!(saw_sha256, "{name}: no [SHA-256] section header");
    assert!(!records.is_empty(), "{name}: no records");
    records
}

fn returned_bits(record: &Record) -> &[u8] {
    let bits = record.one("ReturnedBits");
    assert_eq!(bits.len(), 128, "ReturnedBits is 1024 bits in this corpus");
    bits
}

/// DRBGVS `no_reseed`: Instantiate → Generate (discard) → Generate.
#[test]
fn no_reseed_vectors_byte_exact() {
    let records = parse_rsp("hash_drbg_no_reseed.rsp");
    assert_eq!(records.len(), 16, "4 sections x 4 counts");
    for record in &records {
        let mut drbg = HashDrbg::instantiate(
            record.one("EntropyInput"),
            record.one("Nonce"),
            record.one("PersonalizationString"),
        )
        .expect("vector inputs instantiate");
        let additional = record.all("AdditionalInput");
        assert_eq!(additional.len(), 2, "one AdditionalInput per generate");
        let mut out = [0u8; 128];
        drbg.generate(&mut out, additional[0]).expect("first call");
        drbg.generate(&mut out, additional[1]).expect("second call");
        assert_eq!(
            out.as_slice(),
            returned_bits(record),
            "COUNT {} diverges",
            record.count
        );
    }
}

/// DRBGVS `pr_false`: Instantiate → Reseed → Generate (discard) → Generate.
#[test]
fn reseed_vectors_byte_exact() {
    let records = parse_rsp("hash_drbg_pr_false.rsp");
    assert_eq!(records.len(), 16, "4 sections x 4 counts");
    for record in &records {
        let mut drbg = HashDrbg::instantiate(
            record.one("EntropyInput"),
            record.one("Nonce"),
            record.one("PersonalizationString"),
        )
        .expect("vector inputs instantiate");
        drbg.reseed(
            record.one("EntropyInputReseed"),
            record.one("AdditionalInputReseed"),
        )
        .expect("vector inputs reseed");
        let additional = record.all("AdditionalInput");
        assert_eq!(additional.len(), 2, "one AdditionalInput per generate");
        let mut out = [0u8; 128];
        drbg.generate(&mut out, additional[0]).expect("first call");
        drbg.generate(&mut out, additional[1]).expect("second call");
        assert_eq!(
            out.as_slice(),
            returned_bits(record),
            "COUNT {} diverges",
            record.count
        );
    }
}

/// DRBGVS `pr_true`: fresh entropy immediately before every generate — the
/// caller-driven reseed discipline the engine's prediction-resistance policy
/// uses (additional input rides the reseed, per the CAVP sequence).
#[test]
fn prediction_resistance_vectors_byte_exact() {
    let records = parse_rsp("hash_drbg_pr_true.rsp");
    assert_eq!(records.len(), 16, "4 sections x 4 counts");
    for record in &records {
        let mut drbg = HashDrbg::instantiate(
            record.one("EntropyInput"),
            record.one("Nonce"),
            record.one("PersonalizationString"),
        )
        .expect("vector inputs instantiate");
        let pr_entropy = record.all("EntropyInputPR");
        let additional = record.all("AdditionalInput");
        assert_eq!(pr_entropy.len(), 2, "one EntropyInputPR per generate");
        assert_eq!(additional.len(), 2, "one AdditionalInput per generate");
        let mut out = [0u8; 128];
        for (entropy, addin) in pr_entropy.iter().zip(&additional) {
            drbg.reseed(entropy, addin).expect("vector inputs reseed");
            drbg.generate(&mut out, &[]).expect("generate");
        }
        assert_eq!(
            out.as_slice(),
            returned_bits(record),
            "COUNT {} diverges",
            record.count
        );
    }
}

/// The corpus itself stays well-formed: every section shape the drivers assume
/// (field multiplicity, input lengths) holds for every record of every file.
#[test]
fn corpus_shape_is_stable() {
    for name in [
        "hash_drbg_no_reseed.rsp",
        "hash_drbg_pr_false.rsp",
        "hash_drbg_pr_true.rsp",
    ] {
        for record in parse_rsp(name) {
            assert_eq!(record.one("EntropyInput").len(), 32, "{name}");
            assert_eq!(record.one("Nonce").len(), 16, "{name}");
            let pers = record.one("PersonalizationString");
            assert!(pers.is_empty() || pers.len() == 32, "{name}");
            returned_bits(&record);
        }
    }
}
