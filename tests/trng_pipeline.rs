//! Integration tests of the generator-level pipeline: eRO-TRNG bits → statistical test
//! battery → post-processing → entropy accounting, plus the embedded online test.
//!
//! Tolerances are shared with `statistics_consistency.rs` through
//! [`common::tolerances`], which documents the confidence level behind each one.

mod common;

use common::tolerances::{VN_OUTPUT_MIN_SHANNON, XOR_RATE_EPS};

use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng::ais::battery::{run_battery, BatteryConfig};
use ptrng::ais::procedure_a;
use ptrng::measure::circuit::DifferentialCircuit;
use ptrng::osc::phase::PhaseNoiseModel;
use ptrng::stats::sn::log_spaced_depths;
use ptrng::trng::entropy::{markov_entropy_rate, shannon_entropy_from_bias};
use ptrng::trng::ero::{EroTrng, EroTrngConfig};
use ptrng::trng::online::{OnlineTestConfig, OnlineThermalTest};
use ptrng::trng::postprocess::{von_neumann, xor_decimate};
use ptrng::trng::stochastic::EntropyModel;

/// A strongly jittery oscillator pair so that the simulated generator produces
/// high-quality bits with a modest division factor (keeps the integration test fast).
fn strong_jitter_config() -> EroTrngConfig {
    // Accumulated relative jitter per bit: Q ≈ 16 · 2·b_th/f0³ · f0² ≈ 0.37, enough for
    // the raw bits to carry nearly one bit of entropy each.
    EroTrngConfig {
        sampled: PhaseNoiseModel::new(1.2e6, 0.0, 103.0e6).unwrap(),
        sampling: PhaseNoiseModel::new(1.2e6, 0.0, 102.3e6).unwrap(),
        division: 16,
        duty_cycle: 0.5,
    }
}

#[test]
fn generated_bits_pass_the_statistical_battery() {
    let trng = EroTrng::new(strong_jitter_config()).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    let mut bits = vec![0u8; 40_000];
    trng.fill_bits(&mut rng, &mut bits).unwrap();
    // Procedure B's T8 (Coron) needs ≈2.07 Mbit for its specification-size run; at the
    // 40 kbit scale of this integration test its reduced variant is dominated by
    // estimator bias, so Procedure B is exercised through its dedicated unit tests and
    // the T6/T7 calls below instead.
    let config = BatteryConfig {
        procedure_b: false,
        ..BatteryConfig::default()
    };
    let report = run_battery(&bits, &config).unwrap();
    assert!(
        report.all_passed(),
        "failures on simulated eRO-TRNG output: {:?}",
        report.failures()
    );
    assert!(
        ptrng::ais::procedure_b::t6_uniform_bias(&bits, bits.len())
            .unwrap()
            .passed
    );
    assert!(
        ptrng::ais::procedure_b::t6_conditional_bias(&bits, bits.len())
            .unwrap()
            .passed
    );
    assert!(
        ptrng::ais::procedure_b::t7_transition_homogeneity(&bits, bits.len())
            .unwrap()
            .passed
    );
}

#[test]
fn weak_accumulation_is_caught_by_the_battery() {
    // Almost no jitter accumulated per bit: the raw sequence is strongly correlated and
    // the battery must notice.
    let config = EroTrngConfig {
        sampled: PhaseNoiseModel::new(50.0, 0.0, 103.0e6).unwrap(),
        sampling: PhaseNoiseModel::new(50.0, 0.0, 102.99e6).unwrap(),
        division: 1,
        duty_cycle: 0.5,
    };
    let trng = EroTrng::new(config).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let mut bits = vec![0u8; 40_000];
    trng.fill_bits(&mut rng, &mut bits).unwrap();
    let report = run_battery(&bits, &BatteryConfig::default()).unwrap();
    assert!(
        !report.all_passed(),
        "a low-entropy source must not pass the battery"
    );
}

#[test]
fn post_processing_improves_a_marginal_source() {
    let config = EroTrngConfig {
        sampled: PhaseNoiseModel::new(2.0e4, 0.0, 103.0e6).unwrap(),
        sampling: PhaseNoiseModel::new(2.0e4, 0.0, 102.6e6).unwrap(),
        division: 4,
        duty_cycle: 0.5,
    };
    let trng = EroTrng::new(config).unwrap();
    let mut rng = StdRng::seed_from_u64(18);
    let mut raw = vec![0u8; 120_000];
    trng.fill_bits(&mut rng, &mut raw).unwrap();
    let raw_rate = markov_entropy_rate(&raw).unwrap();

    let xored = xor_decimate(&raw, 4).unwrap();
    let xored_rate = markov_entropy_rate(&xored).unwrap();
    assert!(
        xored_rate >= raw_rate - XOR_RATE_EPS,
        "XOR decimation must not lose per-bit entropy ({raw_rate} -> {xored_rate})"
    );

    let vn = von_neumann(&raw).unwrap();
    if vn.len() >= 1_000 {
        let bias = shannon_entropy_from_bias(&vn).unwrap();
        assert!(
            bias > VN_OUTPUT_MIN_SHANNON,
            "von Neumann output should be unbiased ({bias})"
        );
    }
}

#[test]
fn entropy_bounds_track_the_monobit_quality_of_the_simulated_generator() {
    // The naive and thermal-aware bounds both predict nearly full entropy for very deep
    // accumulation; the simulated generator with strong jitter agrees (its bits pass T1).
    let entropy_model = EntropyModel::date14_experiment();
    assert!(entropy_model.entropy_bound_thermal(2_000_000) > 0.99);
    let trng = EroTrng::new(strong_jitter_config()).unwrap();
    let mut rng = StdRng::seed_from_u64(19);
    let mut bits = vec![0u8; procedure_a::BLOCK_BITS];
    trng.fill_bits(&mut rng, &mut bits).unwrap();
    assert!(procedure_a::t1_monobit(&bits).unwrap().passed);
}

#[test]
fn online_test_commissioned_from_one_circuit_flags_a_degraded_one() {
    let healthy = DifferentialCircuit::date14_experiment();
    let reference = healthy.relative_model().unwrap().thermal_period_jitter();
    let test = OnlineThermalTest::new(OnlineTestConfig::new(103.0e6, reference, 0.5).unwrap());

    let depths = log_spaced_depths(16, 2_048, 8).unwrap();

    let mut rng = StdRng::seed_from_u64(20);
    let dataset = healthy
        .measure_period_domain(&mut rng, &depths, 1 << 16)
        .unwrap();
    let outcome = test
        .evaluate_points(&dataset.depths(), &dataset.variances())
        .unwrap();
    assert!(
        !outcome.alarm,
        "healthy ratio {}",
        outcome.ratio_to_reference
    );

    // Degraded: thermal noise collapsed by a factor 100 in variance.
    let paper = PhaseNoiseModel::date14_experiment();
    let per_osc = PhaseNoiseModel::new(
        paper.b_thermal() / 200.0,
        paper.b_flicker() / 2.0,
        paper.frequency(),
    )
    .unwrap();
    let degraded = DifferentialCircuit::new(per_osc, per_osc);
    let dataset = degraded
        .measure_period_domain(&mut rng, &depths, 1 << 16)
        .unwrap();
    let outcome = test
        .evaluate_points(&dataset.depths(), &dataset.variances())
        .unwrap();
    assert!(
        outcome.alarm,
        "degraded ratio {}",
        outcome.ratio_to_reference
    );
}
