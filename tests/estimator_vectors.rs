//! Golden-vector and invariant tests for the SP 800-90B §6.3 estimator battery.
//!
//! The datasets under `tests/data/` pin every estimator's assessment to 1e-6 (see
//! `tests/data/README.md` for provenance and the independent cross-checks); the
//! property tests establish the invariants the audit relies on: assessments are
//! probabilities-per-bit, the MCV estimate ignores ordering, and injected bias can
//! only lower it.

use std::path::Path;

use ptrng::ais::estimators::{
    lag_estimate, markov_estimate, mcv_estimate, t_tuple_estimate, EstimatorBattery,
};

/// Loads one `tests/data/*.txt` dataset (64 `0`/`1` characters per line).
fn load_bits(name: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("{name}.txt"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("dataset {path:?} unreadable: {e}"));
    let bits: Vec<u8> = text
        .chars()
        .filter_map(|c| match c {
            '0' => Some(0u8),
            '1' => Some(1u8),
            _ => None,
        })
        .collect();
    assert_eq!(bits.len(), 32_768, "dataset {name} has the documented size");
    bits
}

fn expected() -> serde::Value {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/expected.json");
    let text = std::fs::read_to_string(path).expect("expected.json readable");
    serde_json::from_str(&text).expect("expected.json parses")
}

#[test]
fn every_estimator_matches_its_reference_vector_to_1e6() {
    let expected = expected();
    for dataset in ["ideal", "biased_p075", "sticky_p08", "periodic_96"] {
        let bits = load_bits(dataset);
        let battery = EstimatorBattery::run(&bits).unwrap();
        let table = expected
            .get(dataset)
            .unwrap_or_else(|| panic!("{dataset} missing from expected.json"));
        for result in battery.results() {
            let Some(serde::Value::Float(want)) = table.get(&result.name) else {
                panic!("{dataset}/{} missing from expected.json", result.name);
            };
            assert!(
                (result.h_per_bit - want).abs() < 1e-6,
                "{dataset}/{}: {} vs reference {want}",
                result.name,
                result.h_per_bit
            );
        }
        let Some(serde::Value::Float(want_min)) = table.get("min") else {
            panic!("{dataset}/min missing");
        };
        assert!(
            (battery.min_entropy_estimate() - want_min).abs() < 1e-6,
            "{dataset} battery minimum {} vs reference {want_min}",
            battery.min_entropy_estimate()
        );
    }
}

/// The MCV and Markov estimates admit closed forms from the observed counts;
/// recomputing them from scratch anchors the golden vectors independently of the
/// implementation under test.
#[test]
fn mcv_and_markov_vectors_match_their_closed_forms() {
    for dataset in ["ideal", "biased_p075", "sticky_p08", "periodic_96"] {
        let bits = load_bits(dataset);
        let n = bits.len() as f64;
        let ones: f64 = bits.iter().map(|&b| b as f64).sum();
        let p_hat = ones.max(n - ones) / n;
        let p_u = (p_hat + 2.576 * (p_hat * (1.0 - p_hat) / (n - 1.0)).sqrt()).min(1.0);
        let mcv_expected = (-p_u.log2()).clamp(0.0, 1.0);
        let mcv = mcv_estimate(&bits).unwrap().h_per_bit;
        assert!(
            (mcv - mcv_expected).abs() < 1e-12,
            "{dataset}: mcv {mcv} vs closed form {mcv_expected}"
        );

        // Markov: probability of the best 128-sample path from the pair counts.
        let mut pairs = [[0f64; 2]; 2];
        for w in bits.windows(2) {
            pairs[w[0] as usize][w[1] as usize] += 1.0;
        }
        let p0 = (n - ones) / n;
        let p1 = ones / n;
        let row0 = pairs[0][0] + pairs[0][1];
        let row1 = pairs[1][0] + pairs[1][1];
        let lg = |x: f64| if x > 0.0 { x.log2() } else { f64::NEG_INFINITY };
        let (p00, p01) = (pairs[0][0] / row0.max(1.0), pairs[0][1] / row0.max(1.0));
        let (p10, p11) = (pairs[1][0] / row1.max(1.0), pairs[1][1] / row1.max(1.0));
        let best = [
            lg(p0) + 127.0 * lg(p00),
            lg(p0) + 64.0 * lg(p01) + 63.0 * lg(p10),
            lg(p0) + lg(p01) + 126.0 * lg(p11),
            lg(p1) + lg(p10) + 126.0 * lg(p00),
            lg(p1) + 64.0 * lg(p10) + 63.0 * lg(p01),
            lg(p1) + 127.0 * lg(p11),
        ]
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
        let markov_expected = (-best / 128.0).clamp(0.0, 1.0);
        let markov = markov_estimate(&bits).unwrap().h_per_bit;
        assert!(
            (markov - markov_expected).abs() < 1e-12,
            "{dataset}: markov {markov} vs closed form {markov_expected}"
        );
    }
}

/// Independent anchor for the tuple estimators: recompute the t-tuple statistic
/// from scratch with naive substring counting (no rolling windows, no hash maps)
/// and check it reproduces the pinned vector.  This keeps the `tests/data/`
/// values for t-tuple honest against implementation bugs in the shared scan.
#[test]
fn t_tuple_vector_matches_naive_substring_counting() {
    use ptrng::ais::estimators::t_tuple_estimate;
    for dataset in ["ideal", "periodic_96"] {
        let bits = load_bits(dataset);
        let n = bits.len();
        // Naive O(n·w) counting per width, growing w until the cutoff fails.
        let mut p_hat = 0.0f64;
        let mut width = 1usize;
        loop {
            let mut counts: std::collections::HashMap<&[u8], u64> =
                std::collections::HashMap::new();
            for window in bits.windows(width) {
                *counts.entry(window).or_insert(0) += 1;
            }
            let max = *counts.values().max().unwrap();
            if max < 35 {
                break;
            }
            let p = (max as f64 / (n - width + 1) as f64).powf(1.0 / width as f64);
            p_hat = p_hat.max(p);
            width += 1;
            if width > 128 {
                // Mirror the implementation's documented MAX_TUPLE_BITS cap (the
                // periodic dataset's frequent range genuinely extends past it).
                break;
            }
        }
        let p_u = (p_hat + 2.576 * (p_hat * (1.0 - p_hat) / (n as f64 - 1.0)).sqrt()).min(1.0);
        let expected = (-p_u.log2()).clamp(0.0, 1.0);
        let actual = t_tuple_estimate(&bits).unwrap().h_per_bit;
        assert!(
            (actual - expected).abs() < 1e-12,
            "{dataset}: t-tuple {actual} vs naive recomputation {expected}"
        );
    }
}

/// The structured datasets are dominated by the estimator built for their failure
/// mode — the reason the battery reduces by the minimum.
#[test]
fn each_failure_mode_is_caught_by_its_estimator() {
    let sticky = EstimatorBattery::run(&load_bits("sticky_p08")).unwrap();
    assert_eq!(sticky.weakest().name, "collision", "{:?}", sticky.weakest());

    let periodic = load_bits("periodic_96");
    let lag = lag_estimate(&periodic).unwrap();
    let tuple = t_tuple_estimate(&periodic).unwrap();
    assert!(
        lag.h_per_bit < 0.01,
        "lag misses the period: {}",
        lag.detail
    );
    assert!(
        tuple.h_per_bit < 0.05,
        "t-tuple misses the period: {}",
        tuple.detail
    );
    // MCV alone would wave the periodic stream through — the battery must not.
    let mcv = mcv_estimate(&periodic).unwrap();
    assert!(mcv.h_per_bit > 0.85, "{}", mcv.detail);
    let battery = EstimatorBattery::run(&periodic).unwrap();
    assert!(battery.min_entropy_estimate() < 0.01);
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Assessments are min-entropies per binary sample: always in [0, 1], and
        /// strictly positive whenever neither symbol dominates outright.
        #[test]
        fn estimates_are_probabilities_per_bit(
            seed in 0u64..1 << 20,
            p_one in 0.2f64..0.8,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let bits: Vec<u8> = (0..8192).map(|_| u8::from(rng.gen_bool(p_one))).collect();
            let battery = EstimatorBattery::run(&bits).unwrap();
            for result in battery.results() {
                prop_assert!(
                    (0.0..=1.0).contains(&result.h_per_bit),
                    "{} escaped [0, 1]: {}", result.name, result.h_per_bit
                );
            }
            // A mixed source keeps the battery strictly positive: ĥ ∈ (0, 1].
            prop_assert!(battery.min_entropy_estimate() > 0.0);
        }

        /// The MCV estimate depends only on the multiset of samples, never on the
        /// ordering.
        #[test]
        fn mcv_is_permutation_invariant(
            bits in proptest::collection::vec(0u8..=1, 64..512),
            rotation in 0usize..512,
        ) {
            let original = mcv_estimate(&bits).unwrap().h_per_bit;
            let mut reversed = bits.clone();
            reversed.reverse();
            prop_assert_eq!(mcv_estimate(&reversed).unwrap().h_per_bit, original);
            let split = rotation % bits.len();
            let rotated: Vec<u8> = bits[split..]
                .iter()
                .chain(&bits[..split])
                .copied()
                .collect();
            prop_assert_eq!(mcv_estimate(&rotated).unwrap().h_per_bit, original);
        }

        /// Injecting bias (forcing zeros to the majority value) can only lower the
        /// MCV assessment.
        #[test]
        fn mcv_is_monotone_under_bias_injection(
            seed in 0u64..1 << 20,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let bits: Vec<u8> = (0..2048).map(|_| rng.gen_range(0..=1)).collect();
            let ones: usize = bits.iter().map(|&b| b as usize).sum();
            let majority = u8::from(ones * 2 >= bits.len());
            let mut previous = f64::INFINITY;
            for forced in [0usize, 256, 512, 1024, 2048] {
                let mut injected = bits.clone();
                for bit in injected.iter_mut().take(forced) {
                    *bit = majority;
                }
                let h = mcv_estimate(&injected).unwrap().h_per_bit;
                prop_assert!(
                    h <= previous + 1e-12,
                    "bias injection raised the estimate: {h} after {previous}"
                );
                previous = h;
            }
        }
    }
}
