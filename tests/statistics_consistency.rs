//! Cross-crate statistical consistency checks: the same physical quantity computed
//! through independent code paths must agree.
//!
//! Tolerances are shared with `trng_pipeline.rs` through
//! [`common::tolerances`], which documents the confidence level behind each one.

mod common;

use common::tolerances::{
    assert_rel, PSD_SLOPE_ABS, SAMPLING_SCHEME_AGREEMENT_REL, SIGMA2_ROUTE_AGREEMENT_REL,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng::ais::battery::{run_battery, BatteryConfig};
use ptrng::measure::circuit::DifferentialCircuit;
use ptrng::osc::jitter::JitterGenerator;
use ptrng::osc::phase::PhaseNoiseModel;
use ptrng::stats::allan::overlapping_allan_variance;
use ptrng::stats::sn::{sigma2_n, SnSampling};
use ptrng::stats::spectral::welch_psd;
use ptrng::stats::window::Window;
use ptrng::trng::postprocess::von_neumann;

/// `s_N` is exactly the second difference of the accumulated time error, so its variance
/// must equal `2·(N·T0)²·σ²_y(N·T0)` where `σ²_y` is the overlapping Allan variance.
#[test]
fn sigma2_n_matches_the_allan_variance_route() {
    let model = PhaseNoiseModel::date14_experiment();
    let generator = JitterGenerator::new(model);
    let mut rng = StdRng::seed_from_u64(314);
    let jitter = generator.generate_period_jitter(&mut rng, 1 << 16).unwrap();

    // Accumulated time error x_k = sum of the first k jitter realizations.
    let mut phase = Vec::with_capacity(jitter.len() + 1);
    phase.push(0.0);
    let mut acc = 0.0;
    for j in &jitter {
        acc += j;
        phase.push(acc);
    }
    let tau0 = model.period();
    for n in [4usize, 32, 256, 1024] {
        let via_sn = sigma2_n(&jitter, n).unwrap();
        let avar = overlapping_allan_variance(&phase, tau0, n).unwrap();
        let via_allan = 2.0 * (n as f64 * tau0).powi(2) * avar;
        assert_rel(via_sn, via_allan, SIGMA2_ROUTE_AGREEMENT_REL);
    }
}

/// The one-sided PSD of the generated fractional-frequency process must show the
/// configured `1/f` (flicker-FM) slope in the band where flicker dominates.
#[test]
fn generated_jitter_has_the_configured_spectral_shape() {
    // Flicker-dominated model so the slope is unambiguous.
    let f0 = 1.0e8;
    let model = PhaseNoiseModel::new(1.0, 5.0e6, f0).unwrap();
    let generator = JitterGenerator::new(model);
    let mut rng = StdRng::seed_from_u64(2718);
    let jitter = generator.generate_period_jitter(&mut rng, 1 << 16).unwrap();
    // Fractional frequency per period: y_k ≈ -J_k·f0... (sign does not matter for the PSD).
    let y: Vec<f64> = jitter.iter().map(|j| j * f0).collect();
    let est = welch_psd(&y, f0, 4096, Window::Hann).unwrap();
    let (slope, _) = est.log_log_slope(f0 / 1000.0, f0 / 20.0).unwrap();
    assert!(
        (slope + 1.0).abs() < PSD_SLOPE_ABS,
        "flicker-FM fractional frequency must have a 1/f PSD, slope {slope}"
    );
}

/// The von Neumann corrector turns a biased-but-independent raw sequence into one that
/// passes the full statistical battery.
#[test]
fn von_neumann_output_of_a_biased_source_passes_the_battery() {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(1618);
    let biased: Vec<u8> = (0..600_000).map(|_| u8::from(rng.gen_bool(0.65))).collect();
    let raw_report = run_battery(&biased, &BatteryConfig::default()).unwrap();
    assert!(
        !raw_report.all_passed(),
        "the biased raw sequence must fail"
    );

    let corrected = von_neumann(&biased).unwrap();
    assert!(
        corrected.len() >= 20_000,
        "need one full test block after correction"
    );
    let report = run_battery(&corrected, &BatteryConfig::default()).unwrap();
    assert!(
        report.all_passed(),
        "von Neumann output should pass, failures: {:?}",
        report.failures()
    );
}

/// The counter circuit's quantization floor is of the predicted order (≈ 0.5/f0²): a
/// nearly noiseless oscillator pair still shows that residual variance, and it is what
/// hides the thermal term at small depths (the paper's measurement difficulty).
#[test]
fn counter_quantization_floor_has_the_predicted_order() {
    let per_osc = PhaseNoiseModel::new(1.0e-3, 0.0, 1.0e8).unwrap();
    let circuit = DifferentialCircuit::new(per_osc, per_osc);
    let mut rng = StdRng::seed_from_u64(42);
    let run = circuit.measure_counters(&mut rng, 64, 400).unwrap();
    let floor = circuit.quantization_floor();
    assert!(
        run.sigma2_n > floor / 50.0 && run.sigma2_n < floor * 4.0,
        "measured {} vs predicted floor {}",
        run.sigma2_n,
        floor
    );
}

/// Overlapping and disjoint `s_N` sampling estimate the same variance (the former with
/// more, correlated, samples).
#[test]
fn overlapping_and_disjoint_sampling_agree() {
    let model = PhaseNoiseModel::thermal_only(276.04, 103.0e6).unwrap();
    let generator = JitterGenerator::new(model);
    let mut rng = StdRng::seed_from_u64(99);
    let jitter = generator.generate_period_jitter(&mut rng, 1 << 17).unwrap();
    for n in [8usize, 64] {
        let overlapping =
            ptrng::stats::sn::sigma2_n_with(&jitter, n, SnSampling::Overlapping).unwrap();
        let disjoint = ptrng::stats::sn::sigma2_n_with(&jitter, n, SnSampling::Disjoint).unwrap();
        assert_rel(overlapping, disjoint, SAMPLING_SCHEME_AGREEMENT_REL);
    }
}
