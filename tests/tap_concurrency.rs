//! Concurrency properties of the multi-consumer [`ptrng_engine::tap::EntropyTap`]:
//! bytes drawn by any number of racing threads are exactly the engine's stream —
//! nothing duplicated, nothing lost — including across a shard-alarm event.
//!
//! Identity is checked at 64-bit-word granularity: every draw holds the tap lock
//! for its whole fill, so each draw removes one *contiguous* multiple-of-8 segment
//! of the global stream, and batches are multiples of 8 bytes — so 8-byte words
//! never straddle a consumer boundary and the multiset of drawn words must embed
//! into the multiset of words of the per-shard reference streams.  Words are 64
//! bits of model-source output, so cross-shard word collisions are (deterministic
//! seed aside) a 2⁻⁶⁴-scale event — any duplication or loss by the tap moves whole
//! kilobyte batches and is caught immediately.

use std::collections::HashMap;

use ptrng_engine::fault::FaultPlan;
use ptrng_engine::health::HealthConfig;
use ptrng_engine::metrics::AlarmKind;
use ptrng_engine::pool::{Engine, EngineConfig};
use ptrng_engine::pooled::PoolOptions;
use ptrng_engine::source::{derive_seed, SourceSpec};
use ptrng_engine::stream::BitPacker;
use ptrng_engine::tap::EntropyTap;

const SEED: u64 = 29;

/// Rebuilds shard `shard`'s published byte stream from first principles: the same
/// derived-seed source, the same bit-packing, no engine in between.
fn reference_shard_stream(spec: &SourceSpec, seed: u64, shard: usize, bytes: usize) -> Vec<u8> {
    let mut source = spec
        .build(derive_seed(seed, shard as u64))
        .expect("source builds");
    let mut packer = BitPacker::new();
    let mut bits = vec![0u8; 8192];
    let mut out = Vec::new();
    while out.len() < bytes {
        source.fill_bits(&mut bits).expect("bits flow");
        packer.push_bits(&bits);
        out.extend_from_slice(&packer.drain_bytes());
    }
    out.truncate(bytes);
    out
}

fn words(bytes: &[u8]) -> impl Iterator<Item = u64> + '_ {
    bytes.chunks_exact(8).map(|w| {
        let mut array = [0u8; 8];
        array.copy_from_slice(w);
        u64::from_be_bytes(array)
    })
}

/// Drains the tap from `threads` racing consumers with varied multiple-of-8 draw
/// sizes; returns every thread's concatenated draws.
fn drain_concurrently(tap: &EntropyTap, threads: usize) -> Vec<Vec<u8>> {
    let draw_sizes = [4096usize, 1024, 256, 2048];
    let handles: Vec<_> = (0..threads)
        .map(|thread| {
            let tap = tap.clone();
            let size = draw_sizes[thread % draw_sizes.len()];
            std::thread::spawn(move || {
                let mut collected = Vec::new();
                loop {
                    let mut out = vec![0u8; size];
                    let drawn = tap.draw(&mut out);
                    collected.extend_from_slice(&out[..drawn]);
                    if drawn == 0 {
                        return collected;
                    }
                }
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|handle| handle.join().expect("consumer thread joins"))
        .collect()
}

/// Multiset-subtracts `drawn` from `expected`; panics on any word the reference
/// streams cannot supply (duplication or corruption).
fn check_embedding(expected: &mut HashMap<u64, i64>, drawn: &[Vec<u8>]) {
    for (thread, bytes) in drawn.iter().enumerate() {
        assert_eq!(bytes.len() % 8, 0, "thread {thread} drew a ragged length");
        for word in words(bytes) {
            let count = expected
                .entry(word)
                .or_insert_with(|| panic!("thread {thread} drew {word:#018x}, never generated"));
            *count -= 1;
            assert!(
                *count >= 0,
                "word {word:#018x} drawn more often than generated (duplication)"
            );
        }
    }
}

#[test]
fn concurrent_draws_partition_the_stream_exactly() {
    let spec = SourceSpec::model(0.5).unwrap();
    const BUDGET: usize = 24 * 1024; // 24 whole 1024-byte batches.
    let config = EngineConfig::new(spec.clone())
        .shards(3)
        .seed(SEED)
        .budget_bytes(Some(BUDGET as u64))
        .health(HealthConfig::default().without_startup_battery());
    let tap = Engine::spawn(config).unwrap().into_tap();

    let drawn = drain_concurrently(&tap, 4);
    tap.shutdown().unwrap();

    // No loss: the union of all draws is exactly the budget.
    let total: usize = drawn.iter().map(Vec::len).sum();
    assert_eq!(total, BUDGET);

    // No duplication / corruption: every drawn word embeds into the per-shard
    // reference streams (each shard can have produced at most the whole budget).
    let mut expected: HashMap<u64, i64> = HashMap::new();
    for shard in 0..3 {
        for word in words(&reference_shard_stream(&spec, SEED, shard, BUDGET)) {
            *expected.entry(word).or_insert(0) += 1;
        }
    }
    check_embedding(&mut expected, &drawn);
}

/// Racing consumers across a full pool quarantine/reinstatement cycle: the
/// non-terminal lifecycle events must not perturb the tap's exactly-once
/// delivery.  The reference run (single-threaded) and the concurrent run share
/// one deterministic config, so the drawn multiset must equal the reference
/// stream to the word — no loss while the child is quarantined, no replay
/// around the reinstatement.
#[test]
fn concurrent_draws_survive_a_quarantine_and_reinstatement_without_loss_or_replay() {
    const BUDGET: usize = 32 * 1024;
    let spec = match SourceSpec::parse("pool:model:0.6+model:0.6+model:0.6").unwrap() {
        SourceSpec::Pool { children, .. } => SourceSpec::Pool {
            children,
            options: PoolOptions {
                quarantine_draws: 2,
                probation_windows: 2,
                probation_window_draws: 2,
                // Deterministic drills only: no wall-clock watchdog.
                stall_ms: None,
                ..PoolOptions::default()
            },
        },
        other => panic!("expected a pool spec, parsed {other:?}"),
    };
    let config = || {
        EngineConfig::new(spec.clone())
            .seed(61)
            .budget_bytes(Some(BUDGET as u64))
            .health(HealthConfig::default().without_startup_battery())
            .fault(Some(
                FaultPlan::parse("child=1,kind=stuck,at=2KiB,for=1KiB").unwrap(),
            ))
    };

    // Reference run: the deterministic published stream across the whole cycle.
    let mut reference = Engine::spawn(config()).unwrap();
    let mut published = Vec::new();
    for batch in reference.stream_mut() {
        published.extend_from_slice(&batch.expect("the drill is non-terminal").bytes);
    }
    reference.join().unwrap();
    assert_eq!(published.len(), BUDGET);

    // Concurrent run: racing consumers across the quarantine and reinstatement.
    let tap = Engine::spawn(config()).unwrap().into_tap();
    let drawn = drain_concurrently(&tap, 4);

    // The lifecycle is on the alarm trail, but the shard never terminally
    // alarmed and kept serving throughout.
    let kinds: Vec<AlarmKind> = tap.alarms().iter().map(|a| a.kind).collect();
    assert!(
        kinds.contains(&AlarmKind::SourceQuarantined),
        "no quarantine on the trail: {kinds:?}"
    );
    assert!(
        kinds.contains(&AlarmKind::SourceReinstated),
        "no reinstatement on the trail: {kinds:?}"
    );
    assert!(
        kinds.iter().all(|kind| !kind.is_terminal()),
        "the drill must stay non-terminal: {kinds:?}"
    );
    assert_eq!(tap.alarm_count(), kinds.len(), "trail and counter agree");
    tap.shutdown().unwrap();

    // Exactly-once delivery: the union of the racing draws is the reference
    // stream, word for word.
    let total: usize = drawn.iter().map(Vec::len).sum();
    assert_eq!(total, BUDGET);
    let mut expected: HashMap<u64, i64> = HashMap::new();
    for word in words(&published) {
        *expected.entry(word).or_insert(0) += 1;
    }
    check_embedding(&mut expected, &drawn);
    assert!(
        expected.values().all(|&count| count == 0),
        "bytes published across the cycle never reached any consumer (loss)"
    );
}

#[test]
fn concurrent_draws_survive_a_shard_alarm_without_loss_or_replay() {
    // A stuck source: every shard trips the repetition-count test after a
    // deterministic number of batches.  What was published *before* each alarm
    // must still reach consumers exactly once; afterwards draws return short.
    let spec = SourceSpec::model(0.9999).unwrap();
    let config = || {
        EngineConfig::new(spec.clone())
            .shards(2)
            .seed(3)
            .health(HealthConfig::default().without_startup_battery())
    };

    // Reference run, drained single-threaded with shard attribution: per-shard
    // pre-alarm output is deterministic even though interleaving is not.
    let mut reference = Engine::spawn(config()).unwrap();
    let mut per_shard: Vec<Vec<u8>> = vec![Vec::new(); 2];
    let mut alarms = 0usize;
    for batch in reference.stream_mut() {
        match batch {
            Ok(batch) => per_shard[batch.shard].extend_from_slice(&batch.bytes),
            Err(_) => alarms += 1,
        }
    }
    reference.join().unwrap();
    assert_eq!(alarms, 2, "both shards alarm in the reference run");
    let reference_total: usize = per_shard.iter().map(Vec::len).sum();

    // Concurrent run: racing consumers across the alarm events.
    let tap = Engine::spawn(config()).unwrap().into_tap();
    let drawn = drain_concurrently(&tap, 4);
    assert_eq!(tap.live_shards(), 0, "every shard has alarmed");
    assert_eq!(tap.alarm_count(), 2);
    let mut final_draw = [0u8; 64];
    assert_eq!(tap.draw(&mut final_draw), 0, "a dead stream yields nothing");
    tap.shutdown().unwrap();

    // Exactly the reference bytes: pre-alarm output is neither lost nor replayed.
    let total: usize = drawn.iter().map(Vec::len).sum();
    assert_eq!(total, reference_total);
    let mut expected: HashMap<u64, i64> = HashMap::new();
    for shard in &per_shard {
        for word in words(shard) {
            *expected.entry(word).or_insert(0) += 1;
        }
    }
    check_embedding(&mut expected, &drawn);
    assert!(
        expected.values().all(|&count| count == 0),
        "bytes published before the alarms never reached any consumer (loss)"
    );
}
