#!/usr/bin/env python3
"""Generates the DRBGVS-format Hash_DRBG (SHA-256) known-answer files in this
directory, using an implementation written independently from the Rust one and
backed by hashlib's SHA-256 (itself FIPS-validated in CPython builds).

The vector *format* and the operation sequences mirror the NIST CAVP DRBGVS
suite (drbgtestvectors: no_reseed / pr_false / pr_true, Hash_DRBG.rsp):

* no_reseed:  Instantiate -> Generate (discard) -> Generate -> ReturnedBits
* pr_false:   Instantiate -> Reseed -> Generate (discard) -> Generate -> ReturnedBits
* pr_true:    Instantiate -> [Reseed -> Generate] x2, second output -> ReturnedBits

Inputs are deterministic SHA-256 expansions of a fixed tag so the whole corpus
regenerates byte-identically with `python3 generate_vectors.py`.
"""

import hashlib
import itertools
import pathlib

SEEDLEN = 55  # 440 bits, SP 800-90A Table 2 for SHA-256
RETURNED_BITS = 1024


def hash_df(material: bytes, out_len: int) -> bytes:
    out = b""
    counter = 1
    bits = out_len * 8
    while len(out) < out_len:
        out += hashlib.sha256(
            counter.to_bytes(1, "big") + bits.to_bytes(4, "big") + material
        ).digest()
        counter += 1
    return out[:out_len]


class HashDrbg:
    """SP 800-90A section 10.1.1 Hash_DRBG, big-integer arithmetic throughout."""

    def __init__(self, entropy: bytes, nonce: bytes, personalization: bytes):
        seed = hash_df(entropy + nonce + personalization, SEEDLEN)
        self.v = seed
        self.c = hash_df(b"\x00" + seed, SEEDLEN)
        self.counter = 1

    def reseed(self, entropy: bytes, additional: bytes = b"") -> None:
        seed = hash_df(b"\x01" + self.v + entropy + additional, SEEDLEN)
        self.v = seed
        self.c = hash_df(b"\x00" + seed, SEEDLEN)
        self.counter = 1

    def generate(self, n_bytes: int, additional: bytes = b"") -> bytes:
        if additional:
            w = hashlib.sha256(b"\x02" + self.v + additional).digest()
            self.v = self._mod_add(self.v, w)
        out = b""
        data = int.from_bytes(self.v, "big")
        while len(out) < n_bytes:
            out += hashlib.sha256(data.to_bytes(SEEDLEN, "big")).digest()
            data = (data + 1) % (1 << (SEEDLEN * 8))
        h = hashlib.sha256(b"\x03" + self.v).digest()
        v = (
            int.from_bytes(self.v, "big")
            + int.from_bytes(h, "big")
            + int.from_bytes(self.c, "big")
            + self.counter
        ) % (1 << (SEEDLEN * 8))
        self.v = v.to_bytes(SEEDLEN, "big")
        self.counter += 1
        return out[:n_bytes]

    @staticmethod
    def _mod_add(v: bytes, addend: bytes) -> bytes:
        total = (int.from_bytes(v, "big") + int.from_bytes(addend, "big")) % (
            1 << (SEEDLEN * 8)
        )
        return total.to_bytes(SEEDLEN, "big")


def material(tag: str, n_bytes: int) -> bytes:
    """Deterministic pseudo-random bytes: SHA-256(tag || block index), chained."""
    out = b""
    index = 0
    while len(out) < n_bytes:
        out += hashlib.sha256(f"ptrng-drbgvs:{tag}:{index}".encode()).digest()
        index += 1
    return out[:n_bytes]


def hexline(name: str, value: bytes) -> str:
    return f"{name} = {value.hex()}"


def section_header(pers_bits: int, addin_bits: int, pr: str) -> list[str]:
    return [
        "[SHA-256]",
        f"[PredictionResistance = {pr}]",
        "[EntropyInputLen = 256]",
        "[NonceLen = 128]",
        f"[PersonalizationStringLen = {pers_bits}]",
        f"[AdditionalInputLen = {addin_bits}]",
        f"[ReturnedBitsLen = {RETURNED_BITS}]",
        "",
    ]


COMBOS = [(0, 0), (256, 0), (0, 256), (256, 256)]
COUNTS = 4


def no_reseed() -> list[str]:
    lines = []
    for pers_bits, addin_bits in COMBOS:
        lines += section_header(pers_bits, addin_bits, "False")
        for count in range(COUNTS):
            tag = f"no_reseed:{pers_bits}:{addin_bits}:{count}"
            entropy = material(tag + ":entropy", 32)
            nonce = material(tag + ":nonce", 16)
            pers = material(tag + ":pers", pers_bits // 8)
            addin1 = material(tag + ":addin1", addin_bits // 8)
            addin2 = material(tag + ":addin2", addin_bits // 8)
            drbg = HashDrbg(entropy, nonce, pers)
            drbg.generate(RETURNED_BITS // 8, addin1)
            returned = drbg.generate(RETURNED_BITS // 8, addin2)
            lines += [
                f"COUNT = {count}",
                hexline("EntropyInput", entropy),
                hexline("Nonce", nonce),
                hexline("PersonalizationString", pers),
                hexline("AdditionalInput", addin1),
                hexline("AdditionalInput", addin2),
                hexline("ReturnedBits", returned),
                "",
            ]
    return lines


def pr_false() -> list[str]:
    lines = []
    for pers_bits, addin_bits in COMBOS:
        lines += section_header(pers_bits, addin_bits, "False")
        for count in range(COUNTS):
            tag = f"pr_false:{pers_bits}:{addin_bits}:{count}"
            entropy = material(tag + ":entropy", 32)
            nonce = material(tag + ":nonce", 16)
            pers = material(tag + ":pers", pers_bits // 8)
            entropy_reseed = material(tag + ":entropy_reseed", 32)
            addin_reseed = material(tag + ":addin_reseed", addin_bits // 8)
            addin1 = material(tag + ":addin1", addin_bits // 8)
            addin2 = material(tag + ":addin2", addin_bits // 8)
            drbg = HashDrbg(entropy, nonce, pers)
            drbg.reseed(entropy_reseed, addin_reseed)
            drbg.generate(RETURNED_BITS // 8, addin1)
            returned = drbg.generate(RETURNED_BITS // 8, addin2)
            lines += [
                f"COUNT = {count}",
                hexline("EntropyInput", entropy),
                hexline("Nonce", nonce),
                hexline("PersonalizationString", pers),
                hexline("EntropyInputReseed", entropy_reseed),
                hexline("AdditionalInputReseed", addin_reseed),
                hexline("AdditionalInput", addin1),
                hexline("AdditionalInput", addin2),
                hexline("ReturnedBits", returned),
                "",
            ]
    return lines


def pr_true() -> list[str]:
    lines = []
    for pers_bits, addin_bits in COMBOS:
        lines += section_header(pers_bits, addin_bits, "True")
        for count in range(COUNTS):
            tag = f"pr_true:{pers_bits}:{addin_bits}:{count}"
            entropy = material(tag + ":entropy", 32)
            nonce = material(tag + ":nonce", 16)
            pers = material(tag + ":pers", pers_bits // 8)
            entropy_pr1 = material(tag + ":entropy_pr1", 32)
            entropy_pr2 = material(tag + ":entropy_pr2", 32)
            addin1 = material(tag + ":addin1", addin_bits // 8)
            addin2 = material(tag + ":addin2", addin_bits // 8)
            drbg = HashDrbg(entropy, nonce, pers)
            # Prediction resistance: fresh entropy immediately before each
            # generate; the additional input rides the reseed (SP 800-90A
            # section 9.3.1 path taken by the CAVP suite).
            drbg.reseed(entropy_pr1, addin1)
            drbg.generate(RETURNED_BITS // 8)
            drbg.reseed(entropy_pr2, addin2)
            returned = drbg.generate(RETURNED_BITS // 8)
            lines += [
                f"COUNT = {count}",
                hexline("EntropyInput", entropy),
                hexline("Nonce", nonce),
                hexline("PersonalizationString", pers),
                hexline("EntropyInputPR", entropy_pr1),
                hexline("AdditionalInput", addin1),
                hexline("EntropyInputPR", entropy_pr2),
                hexline("AdditionalInput", addin2),
                hexline("ReturnedBits", returned),
                "",
            ]
    return lines


def main() -> None:
    here = pathlib.Path(__file__).parent
    for name, lines in [
        ("hash_drbg_no_reseed.rsp", no_reseed()),
        ("hash_drbg_pr_false.rsp", pr_false()),
        ("hash_drbg_pr_true.rsp", pr_true()),
    ]:
        banner = [
            "# Hash_DRBG (SHA-256) known-answer vectors, DRBGVS file format.",
            "# Generated by generate_vectors.py in this directory — see README.md",
            "# for provenance.  Regenerate with: python3 generate_vectors.py",
            "",
        ]
        (here / name).write_text("\n".join(banner + lines))
        print(f"wrote {name}")


if __name__ == "__main__":
    main()
