//! Reseed-accounting tests of the DRBG expansion layer (`ExpandedTap`): the
//! ledger debit tracks the (re)seed count exactly, the per-seed output
//! allowance is never exceeded for any draw schedule, and a starved source
//! surfaces as the engine's `EntropyDeficit` refusal — never as unaccounted
//! output.

use ptrng_engine::expanded::{DrbgPolicy, ExpandedTap, DEFAULT_SEED_BITS_ACCOUNTED};
use ptrng_engine::fault::FaultPlan;
use ptrng_engine::health::HealthConfig;
use ptrng_engine::pool::{Engine, EngineConfig};
use ptrng_engine::pooled::PoolOptions;
use ptrng_engine::source::SourceSpec;
use ptrng_engine::EngineError;

/// A one-shard model-source engine wrapped in the expansion layer.
fn model_expanded(policy: DrbgPolicy, seed: u64) -> ExpandedTap {
    let config = EngineConfig::new(SourceSpec::model(0.5).expect("valid spec"))
        .shards(1)
        .seed(seed)
        .health(HealthConfig::default().without_startup_battery());
    let tap = Engine::spawn(config).expect("engine spawns").into_tap();
    ExpandedTap::new(tap, policy).expect("valid policy")
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any draw schedule, the seed economy is exact: the DRBG never
        /// emits past `reseed_after_bytes` on one seed, the (re)seed count is
        /// precisely `ceil(total / allowance)`, and every (re)seed debits the
        /// ledger by exactly `seed_bits_accounted` — no free bytes, no double
        /// charges.
        #[test]
        fn debit_matches_the_seed_economy(
            draws in proptest::collection::vec(1usize..6000, 1..8),
            allowance in 1024u64..16384,
        ) {
            let policy = DrbgPolicy {
                reseed_after_bytes: allowance,
                ..DrbgPolicy::default()
            };
            let tap = model_expanded(policy, 11);
            let mut total = 0u64;
            for &len in &draws {
                let mut out = vec![0u8; len];
                tap.draw(&mut out).expect("a healthy model source always funds");
                total += len as u64;
            }
            let snap = tap.snapshot();
            prop_assert_eq!(snap.bytes_total, total);
            prop_assert_eq!(snap.reseeds, total.div_ceil(allowance));
            prop_assert_eq!(
                snap.seed_bits_debited,
                snap.reseeds * DEFAULT_SEED_BITS_ACCOUNTED
            );
            prop_assert!(snap.bytes_since_reseed <= allowance);
            // Exact, not chunk-granular: the last seed carries the remainder.
            prop_assert_eq!(
                snap.bytes_since_reseed,
                total - (snap.reseeds - 1) * allowance
            );
            tap.shutdown().expect("shutdown");
        }

        /// Prediction resistance pays one funded seed per generate call, for
        /// any request size (large requests split at the 2^19-bit cap, and each
        /// internal generate gets its own fresh seed).
        #[test]
        fn prediction_resistance_pays_one_seed_per_generate(
            lens in proptest::collection::vec(1usize..150_000, 1..3),
        ) {
            let policy = DrbgPolicy {
                prediction_resistance: true,
                ..DrbgPolicy::default()
            };
            let tap = model_expanded(policy, 23);
            for &len in &lens {
                let mut out = vec![0u8; len];
                tap.draw(&mut out).expect("a healthy model source always funds");
            }
            let snap = tap.snapshot();
            prop_assert_eq!(snap.reseeds, snap.generates);
            prop_assert_eq!(
                snap.seed_bits_debited,
                snap.reseeds * DEFAULT_SEED_BITS_ACCOUNTED
            );
            tap.shutdown().expect("shutdown");
        }
    }
}

/// A permanently stuck pool child drops the dynamic claim below the seed-funding
/// floor: the next due reseed must refuse with `EntropyDeficit` (per-bit terms,
/// static ledger attached), and the refused draw must not move the output or
/// debit counters — starvation is a refusal, never silent degradation.
#[test]
fn starved_source_yields_a_deficit_not_unaccounted_output() {
    let spec = match SourceSpec::parse("pool:model:0.6+model:0.6+model:0.6").expect("valid spec") {
        SourceSpec::Pool { children, .. } => SourceSpec::Pool {
            children,
            options: PoolOptions {
                quarantine_draws: 2,
                probation_windows: 2,
                probation_window_draws: 2,
                stall_ms: None,
                ..PoolOptions::default()
            },
        },
        other => panic!("expected a pool spec, parsed {other:?}"),
    };
    let mut config = EngineConfig::new(spec)
        .seed(97)
        .batch_bits(8192)
        .health(HealthConfig::default().without_startup_battery())
        // No `for=`: the child sticks permanently and stays quarantined.
        .fault(Some(
            FaultPlan::parse("child=1,kind=stuck,at=2KiB").expect("valid plan"),
        ));
    config.queue_batches = 1;
    let tap = Engine::spawn(config).expect("engine spawns").into_tap();
    let expanded = ExpandedTap::new(
        tap.clone(),
        DrbgPolicy {
            reseed_after_bytes: 2048,
            ..DrbgPolicy::default()
        },
    )
    .expect("valid policy");

    // While every child is healthy, the first seed funds.
    let mut out = vec![0u8; 2048];
    expanded
        .draw(&mut out)
        .expect("healthy pool funds the seed");

    let mut deficit = None;
    for _ in 0..200 {
        // Advance the conditioned stream into the permanent fault window.
        let mut advance = [0u8; 1024];
        assert_eq!(tap.draw(&mut advance), advance.len(), "pool keeps serving");
        // Every 2048-byte draw exhausts the allowance, so each one reseeds.
        match expanded.draw(&mut out) {
            Ok(()) => {}
            Err(error) => {
                deficit = Some(error);
                break;
            }
        }
    }
    let error = deficit.expect("the starved reseed never refused");
    match &error {
        EngineError::EntropyDeficit {
            accounted,
            required,
            ledger,
            ..
        } => {
            // Per-bit terms, exactly like the engine's spawn-time refusal.
            assert!(
                accounted + 1e-9 < *required,
                "dip below the funding floor: {accounted} vs {required}"
            );
            assert!(*required <= 1.0, "per-bit value, not a total: {required}");
            assert!(
                ledger.min_entropy_per_bit() > 0.9,
                "the static accounting trail rides the refusal"
            );
        }
        other => panic!("expected EntropyDeficit, got {other}"),
    }

    // A refused draw emits nothing and debits nothing.
    let before = expanded.snapshot();
    let mut small = [0u8; 16];
    if expanded.draw(&mut small).is_err() {
        let after = expanded.snapshot();
        assert_eq!(
            before.bytes_total, after.bytes_total,
            "no unaccounted output"
        );
        assert_eq!(before.seed_bits_debited, after.seed_bits_debited);
        assert_eq!(before.reseeds, after.reseeds);
    }
    expanded.shutdown().expect("shutdown");
}
