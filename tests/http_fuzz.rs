//! Negative-path robustness of the hand-rolled HTTP/1.1 layer: a corpus of
//! malformed requests — oversized heads, truncated request lines, NUL bytes,
//! bogus chunked framing — plus a seeded byte-mangler over valid requests.  Every
//! input must end in a clean 4xx response or a clean connection close, never a
//! panic, a 5xx, or a hang, and the server must keep serving afterwards.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ptrng_engine::health::HealthConfig;
use ptrng_engine::pool::EngineConfig;
use ptrng_engine::source::SourceSpec;
use ptrng_serve::http::{HttpError, Request, MAX_HEADERS, MAX_LINE_BYTES};
use ptrng_serve::server::{ServeConfig, Server, ShutdownHandle};

// ---------------------------------------------------------------------------
// Direct parser corpus: every malformed head maps to a typed error, no panics.
// ---------------------------------------------------------------------------

fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
    Request::read_from(&mut std::io::BufReader::new(bytes))
}

#[test]
fn malformed_heads_yield_typed_errors_never_panics() {
    let oversized_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
    let oversized_header = format!(
        "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "b".repeat(MAX_LINE_BYTES + 1)
    );
    let too_many_headers = format!(
        "GET / HTTP/1.1\r\n{}\r\n",
        (0..=MAX_HEADERS)
            .map(|i| format!("H{i}: v\r\n"))
            .collect::<String>()
    );
    let cases: Vec<(&str, Vec<u8>, HttpError)> = vec![
        (
            "truncated request line",
            b"GET /entro".to_vec(),
            HttpError::UnexpectedEof,
        ),
        (
            "truncated header block",
            b"GET / HTTP/1.1\r\nHost: x\r\n".to_vec(),
            HttpError::UnexpectedEof,
        ),
        (
            "missing version",
            b"GET /\r\n\r\n".to_vec(),
            HttpError::Malformed("missing version"),
        ),
        (
            "extra request-line tokens",
            b"GET / HTTP/1.1 extra\r\n\r\n".to_vec(),
            HttpError::Malformed("extra tokens in request line"),
        ),
        (
            "unsupported version",
            b"GET / HTTP/2\r\n\r\n".to_vec(),
            HttpError::Malformed("unsupported HTTP version"),
        ),
        (
            "header without colon",
            b"GET / HTTP/1.1\r\nNoColon\r\n\r\n".to_vec(),
            HttpError::Malformed("header without colon"),
        ),
        (
            "non-UTF-8 head",
            b"GET /\xff\xfe HTTP/1.1\r\n\xff\xff\r\n\r\n".to_vec(),
            HttpError::Malformed("non-UTF-8 header"),
        ),
        (
            "oversized request line",
            oversized_line.into_bytes(),
            HttpError::TooLarge("line too long"),
        ),
        (
            "oversized header line",
            oversized_header.into_bytes(),
            HttpError::TooLarge("line too long"),
        ),
        (
            "too many headers",
            too_many_headers.into_bytes(),
            HttpError::TooLarge("too many headers"),
        ),
    ];
    for (label, bytes, expected) in cases {
        match parse(&bytes) {
            Err(error) => assert_eq!(error, expected, "{label}"),
            Ok(parsed) => panic!("{label}: accepted as {parsed:?}"),
        }
    }

    // NUL bytes inside an otherwise-framed head parse without panicking; the
    // garbage target then routes to a 404, never into the entropy path.
    let parsed = parse(b"GET /\0\0 HTTP/1.1\r\nX: \0\r\n\r\n")
        .expect("NUL bytes are not a parser crash")
        .expect("request present");
    assert_eq!(parsed.path, "/\0\0");
}

// ---------------------------------------------------------------------------
// Seeded byte-mangler over the live server.
// ---------------------------------------------------------------------------

struct FuzzServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<ptrng_serve::Result<()>>>,
}

impl FuzzServer {
    fn start() -> Self {
        let engine = EngineConfig::new(SourceSpec::model(0.5).expect("valid spec"))
            .seed(5)
            .health(HealthConfig::default().without_startup_battery());
        let mut config = ServeConfig::new(engine);
        config.listen = "127.0.0.1:0".to_string();
        config.threads = 2;
        // Short socket timeout so a mutant that leaves the connection dangling
        // (e.g. a truncated head) is reaped quickly instead of pinning a worker.
        config.read_timeout = Duration::from_millis(200);
        let server = Server::bind(config).expect("server binds");
        let addr = server.local_addr().expect("bound address");
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        Self {
            addr,
            handle,
            thread: Some(thread),
        }
    }
}

impl Drop for FuzzServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .expect("server thread joins")
                .expect("server drains cleanly");
        }
    }
}

/// Sends raw bytes, reads until the server closes (bounded by timeouts), and
/// returns every response status code found in the stream.
fn exchange(addr: SocketAddr, payload: &[u8]) -> Vec<u16> {
    let mut conn = TcpStream::connect(addr).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    // A mutant may have corrupted `Connection: close`; the server's own read
    // timeout closes idle keep-alive connections, so read_to_end terminates.
    let _ = conn.write_all(payload);
    let _ = conn.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("response read");
    String::from_utf8_lossy(&raw)
        .lines()
        .filter_map(|line| {
            line.strip_prefix("HTTP/1.1 ")
                .and_then(|rest| rest.split(' ').next())
                .and_then(|code| code.parse::<u16>().ok())
        })
        .collect()
}

/// Seeded mangler: applies one random corruption to a valid request.
fn mangle(rng: &mut StdRng, valid: &str) -> Vec<u8> {
    let mut bytes = valid.as_bytes().to_vec();
    match rng.gen_range(0..6) {
        // Truncate mid-head.
        0 => bytes.truncate(rng.gen_range(1..bytes.len())),
        // Flip one byte to a random value.
        1 => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen_range(0..=255);
        }
        // Inject a NUL byte.
        2 => {
            let at = rng.gen_range(0..bytes.len());
            bytes.insert(at, 0);
        }
        // Blow a header up past the line limit.
        3 => {
            let pad = format!(
                "X-Pad: {}\r\n",
                "c".repeat(rng.gen_range(8..2 * MAX_LINE_BYTES))
            );
            bytes.splice(bytes.len() - 2..bytes.len() - 2, pad.into_bytes());
        }
        // Declare a body with bogus chunked framing.
        4 => {
            bytes.splice(
                bytes.len() - 2..bytes.len() - 2,
                b"Transfer-Encoding: chunked\r\n".to_vec(),
            );
            bytes.extend_from_slice(b"ZZZZ\r\nnot-a-chunk");
        }
        // Duplicate a random slice of the head in place.
        _ => {
            let start = rng.gen_range(0..bytes.len() - 1);
            let end = rng.gen_range(start + 1..=bytes.len());
            let slice: Vec<u8> = bytes[start..end].to_vec();
            bytes.splice(start..start, slice);
        }
    }
    bytes
}

/// Time-domain adversaries: prefixes of a valid request dripped a byte at a
/// time, then stalled forever.  Every round must end in a silent server-side
/// close at the header deadline — never a hang, never a response to a head
/// that was never completed — and the server keeps serving afterwards.
#[test]
fn slow_drip_mutants_are_reaped_not_hung() {
    let server = FuzzServer::start();
    let template = "GET /entropy?bytes=64 HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n";
    let mut rng = StdRng::seed_from_u64(777);
    let started = Instant::now();
    for round in 0..6 {
        // Always cut short of the final byte: the head stays incomplete.
        let cut = rng.gen_range(1..template.len());
        let mut conn = TcpStream::connect(server.addr).expect("connects");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout set");
        for byte in &template.as_bytes()[..cut] {
            if conn.write_all(&[*byte]).is_err() {
                break; // reaped mid-drip: the deadline fired while we stalled
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink);
        assert!(
            sink.is_empty(),
            "round {round}: incomplete heads are closed silently, got {:?}",
            String::from_utf8_lossy(&sink)
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "drip rounds must be reaped by the header deadline, not ride out client patience"
    );
    let statuses = exchange(
        server.addr,
        b"GET /healthz HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(statuses, vec![200]);
}

#[test]
fn mangled_requests_never_hang_or_crash_the_server() {
    let server = FuzzServer::start();
    let templates = [
        "GET /entropy?bytes=64 HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n",
        "GET /healthz HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n",
        "HEAD /metrics HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n",
    ];
    let mut rng = StdRng::seed_from_u64(4242);
    let mut rejected = 0usize;
    let started = Instant::now();
    for round in 0..36 {
        let template = templates[round % templates.len()];
        let mutant = mangle(&mut rng, template);
        let statuses = exchange(server.addr, &mutant);
        for &status in &statuses {
            assert!(
                (200..500).contains(&status),
                "round {round}: mutant {:?} produced status {status}",
                String::from_utf8_lossy(&mutant)
            );
        }
        if statuses.iter().any(|&s| (400..500).contains(&s)) {
            rejected += 1;
        }
    }
    assert!(
        rejected >= 8,
        "the mangler must exercise the rejection paths ({rejected} rejections)"
    );
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "fuzz exchanges must not stall"
    );

    // The server survived the storm: a clean request still round-trips.
    let statuses = exchange(
        server.addr,
        b"GET /healthz HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(statuses, vec![200]);
}
