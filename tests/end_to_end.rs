//! End-to-end integration tests spanning the whole workspace: simulated measurement →
//! statistics → fit → analysis report, checked against the paper's published numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng::core::independence::{IndependenceAnalysis, IndependenceVerdict};
use ptrng::core::multilevel::MultilevelModel;
use ptrng::core::report::{validate_report, AnalysisReport};
use ptrng::core::thermal::ThermalNoiseEstimate;
use ptrng::measure::campaign::{CampaignConfig, Estimator, MeasurementCampaign};
use ptrng::measure::circuit::DifferentialCircuit;
use ptrng::osc::model::AccumulationModel;
use ptrng::osc::phase::PhaseNoiseModel;
use ptrng::stats::sn::log_spaced_depths;

fn assert_rel(a: f64, b: f64, rel: f64) {
    let scale = a.abs().max(b.abs()).max(1e-300);
    assert!((a - b).abs() / scale <= rel, "{a} vs {b} (rel {rel})");
}

#[test]
fn paper_constants_are_consistent_across_crates() {
    let model = PhaseNoiseModel::date14_experiment();
    assert_eq!(model.frequency(), ptrng::core::paper::FREQUENCY_HZ);
    assert_eq!(model.b_thermal(), ptrng::core::paper::B_THERMAL_HZ);
    assert_rel(
        model.thermal_period_jitter(),
        ptrng::core::paper::THERMAL_JITTER_SECONDS,
        5e-3,
    );
    let acc = AccumulationModel::new(model);
    assert_eq!(
        acc.independence_threshold(0.95).unwrap(),
        Some(ptrng::core::paper::INDEPENDENCE_THRESHOLD_95),
    );
}

#[test]
fn simulated_campaign_recovers_the_paper_fit() {
    // Period-domain campaign over the same circuit as the paper's experiment.
    let circuit = DifferentialCircuit::date14_experiment();
    let config = CampaignConfig {
        depths: log_spaced_depths(8, 8_192, 14).unwrap(),
        estimator: Estimator::PeriodDomain {
            record_len: 1 << 18,
        },
        seed: 1234,
    };
    let dataset = MeasurementCampaign::new(circuit, config)
        .unwrap()
        .run()
        .unwrap();

    // Thermal extraction lands near 15.89 ps.
    let thermal = ThermalNoiseEstimate::from_dataset(&dataset).unwrap();
    assert_rel(thermal.thermal_sigma, 15.89e-12, 0.3);
    assert_rel(thermal.jitter_ratio, 1.6e-3, 0.3);

    // The independence analysis flags dependence and reports a finite threshold.
    let analysis = IndependenceAnalysis::from_dataset(&dataset).unwrap();
    assert_eq!(
        analysis.verdict(),
        IndependenceVerdict::DependentBeyondThreshold
    );
    let threshold = analysis.independence_threshold_95().unwrap();
    assert!(
        (50..3_000).contains(&threshold),
        "threshold {threshold} should be of the order of the paper's 281"
    );
}

#[test]
fn thermal_only_campaign_is_declared_independent() {
    let per_osc = PhaseNoiseModel::thermal_only(138.02, 103.0e6).unwrap();
    let circuit = DifferentialCircuit::new(per_osc, per_osc);
    let config = CampaignConfig {
        depths: log_spaced_depths(4, 2_048, 10).unwrap(),
        // Seed re-pinned for the vendored StdRng stream: the verdict is a statistical
        // test with a ~20% per-seed false-alarm rate at this record length, so the seed
        // must be one whose realization stays under the flicker-share tolerance.
        estimator: Estimator::PeriodDomain {
            record_len: 1 << 17,
        },
        seed: 7,
    };
    let dataset = MeasurementCampaign::new(circuit, config)
        .unwrap()
        .run()
        .unwrap();
    let analysis = IndependenceAnalysis::from_dataset(&dataset).unwrap();
    assert_eq!(
        analysis.verdict(),
        IndependenceVerdict::ConsistentWithIndependence
    );
}

#[test]
fn closed_form_and_simulation_agree_over_the_sweep() {
    let circuit = DifferentialCircuit::date14_experiment();
    let acc = AccumulationModel::new(circuit.relative_model().unwrap());
    let mut rng = StdRng::seed_from_u64(77);
    let depths = vec![4usize, 16, 64, 256, 1024];
    let dataset = circuit
        .measure_period_domain(&mut rng, &depths, 1 << 17)
        .unwrap();
    for p in dataset.points() {
        assert_rel(p.sigma2_n, acc.sigma2_n(p.n), 0.35);
    }
}

#[test]
fn full_report_round_trips_and_validates() {
    let circuit = DifferentialCircuit::date14_experiment();
    let mut rng = StdRng::seed_from_u64(99);
    let depths = log_spaced_depths(8, 4_096, 12).unwrap();
    let dataset = circuit
        .measure_period_domain(&mut rng, &depths, 1 << 17)
        .unwrap();
    let report = AnalysisReport::from_dataset(&dataset, &[1_000, 20_000]).unwrap();
    validate_report(&report).unwrap();
    let json = report.to_json().unwrap();
    let back = AnalysisReport::from_json(&json).unwrap();
    assert_eq!(report.verdict, back.verdict);
    assert_eq!(report.entropy.len(), 2);
    assert!(report.entropy[1].naive_bound >= report.entropy[1].thermal_bound);
    assert!(report.to_text().contains("thermal period jitter"));
}

#[test]
fn multilevel_pipeline_predicts_what_the_simulation_measures() {
    // Build a multilevel model from a device, simulate the corresponding circuit, and
    // check prediction vs measurement at a few depths.
    let model = MultilevelModel::date14_experiment();
    let per_osc = *model.per_oscillator();
    let circuit = DifferentialCircuit::new(per_osc, per_osc);
    let mut rng = StdRng::seed_from_u64(11);
    let depths = vec![8usize, 64, 512];
    let dataset = circuit
        .measure_period_domain(&mut rng, &depths, 1 << 16)
        .unwrap();
    let predicted = model.predicted_sigma2_n(&depths);
    for (point, (n, expected)) in dataset.points().iter().zip(predicted) {
        assert_eq!(point.n, n);
        assert_rel(point.sigma2_n, expected, 0.4);
    }
}
