//! `ptrng` — P-TRNG jitter stochastic modeling toolkit.
//!
//! This facade crate re-exports the whole workspace, which reproduces
//! *"On the assumption of mutual independence of jitter realizations in P-TRNG stochastic
//! models"* (Haddad, Teglia, Bernard, Fischer — DATE 2014):
//!
//! | Crate | Contents |
//! |---|---|
//! | [`noise`] | transistor-level thermal/flicker noise models, `1/f^α` generators |
//! | [`stats`] | `σ²_N` statistic, Allan variances, spectral estimation, fitting, tests |
//! | [`osc`] | ring oscillators, ISF conversion, phase-noise model, jitter generation |
//! | [`measure`] | the differential counter measurement circuit and acquisition campaigns |
//! | [`trng`] | the eRO-TRNG, conditioning pipeline + entropy ledger, SHA-256, entropy bounds, online test |
//! | [`ais`] | AIS 31 / FIPS 140-2 / SP 800-90B statistical test batteries |
//! | [`core`] | the multilevel model, independence analysis, thermal extraction, reports |
//! | [`engine`] | sharded entropy generation runtime: pluggable sources, worker pool, continuous health monitoring, multi-consumer `EntropyTap` |
//! | [`obs`] | observability primitives: flight recorder, log-linear latency histograms, Prometheus text encoder, alarm postmortems, JSONL journal |
//! | [`serve`] | entropy-as-a-service: HTTP/1.1 server with ledger headers, rate limiting, Prometheus metrics; `ptrngd` + `ptrng-serve` CLIs |
//!
//! The repository book under `docs/` (architecture, stochastic model, operations)
//! ties the crates together.
//!
//! # Quickstart
//!
//! ```
//! use ptrng::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate the paper's differential measurement and analyse the result.
//! let circuit = DifferentialCircuit::date14_experiment();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let depths = ptrng::stats::sn::log_spaced_depths(1, 256, 8)?;
//! let dataset = circuit.measure_period_domain(&mut rng, &depths, 1 << 15)?;
//! let report = AnalysisReport::from_dataset(&dataset, &[1_000, 20_000])?;
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ptrng_ais as ais;
pub use ptrng_core as core;
pub use ptrng_engine as engine;
pub use ptrng_measure as measure;
pub use ptrng_noise as noise;
pub use ptrng_obs as obs;
pub use ptrng_osc as osc;
pub use ptrng_serve as serve;
pub use ptrng_stats as stats;
pub use ptrng_trng as trng;

/// Commonly used items, re-exported from [`ptrng_core::prelude`] plus the report type
/// and the generation runtime.
pub mod prelude {
    pub use ptrng_core::prelude::*;
    pub use ptrng_core::report::AnalysisReport;
    // Engine types (the crate's `Result`/`EngineError` stay namespaced to avoid
    // shadowing the analysis crates' aliases).
    pub use ptrng_engine::health::{HealthConfig, HealthMonitor, HealthState};
    pub use ptrng_engine::pool::{ConditionerSpec, Engine, EngineConfig, StageSpec};
    pub use ptrng_engine::source::{EntropySource, JitterProfile, SourceSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_every_crate() {
        // A compile-time smoke test: one symbol per re-exported crate.
        let _ = crate::noise::BOLTZMANN;
        let _ = crate::stats::sn::sigma2_n_independent(1, 1.0);
        let _ = crate::osc::phase::DATE14_FREQUENCY;
        let _ = crate::measure::campaign::Estimator::PeriodDomain { record_len: 16 };
        let _ = crate::trng::postprocess::xor_output_bias(0.1, 2).unwrap();
        let _ = crate::ais::procedure_a::BLOCK_BITS;
        let _ = crate::core::paper::RN_CONSTANT;
        let _ = crate::engine::source::SourceSpec::parse("model");
        let _ = crate::obs::EventKind::Alarm.code();
        let _ = crate::serve::http::reason_phrase(503);
    }
}
