//! `σ²_N` vs `N` acquisition datasets.

use serde::{Deserialize, Serialize};

use crate::{MeasureError, Result};

/// One acquired point: the estimated variance of `s_N` at accumulation depth `N`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetPoint {
    /// Accumulation depth `N` (number of reference periods per window).
    pub n: usize,
    /// Estimated `σ²_N` in s².
    pub sigma2_n: f64,
    /// Number of `s_N` realizations behind the estimate.
    pub samples: usize,
}

/// A full `σ²_N` vs `N` sweep, as produced by an acquisition campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sigma2NDataset {
    frequency: f64,
    estimator: String,
    points: Vec<DatasetPoint>,
}

impl Sigma2NDataset {
    /// Creates a dataset for an oscillator of nominal frequency `frequency`, sorting the
    /// points by depth.
    ///
    /// # Errors
    ///
    /// Returns an error when the frequency is not positive, the point list is empty, a
    /// variance is negative/non-finite, or two points share a depth.
    pub fn new(
        frequency: f64,
        estimator: impl Into<String>,
        mut points: Vec<DatasetPoint>,
    ) -> Result<Self> {
        if frequency <= 0.0 || !frequency.is_finite() {
            return Err(MeasureError::InvalidParameter {
                name: "frequency",
                reason: format!("must be positive and finite, got {frequency}"),
            });
        }
        if points.is_empty() {
            return Err(MeasureError::InvalidParameter {
                name: "points",
                reason: "at least one point is required".to_string(),
            });
        }
        for p in &points {
            if !p.sigma2_n.is_finite() || p.sigma2_n < 0.0 {
                return Err(MeasureError::InvalidParameter {
                    name: "points",
                    reason: format!("sigma2_n at depth {} must be non-negative and finite", p.n),
                });
            }
            if p.n == 0 {
                return Err(MeasureError::InvalidParameter {
                    name: "points",
                    reason: "accumulation depths must be at least 1".to_string(),
                });
            }
        }
        points.sort_by_key(|p| p.n);
        if points.windows(2).any(|w| w[0].n == w[1].n) {
            return Err(MeasureError::InvalidParameter {
                name: "points",
                reason: "duplicate accumulation depth".to_string(),
            });
        }
        Ok(Self {
            frequency,
            estimator: estimator.into(),
            points,
        })
    }

    /// Nominal frequency `f0` of the counted oscillator, in hertz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Human-readable name of the estimator that produced the dataset.
    pub fn estimator(&self) -> &str {
        &self.estimator
    }

    /// The acquired points, sorted by depth.
    pub fn points(&self) -> &[DatasetPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the dataset has no points (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The accumulation depths as `f64`, in ascending order.
    pub fn depths(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.n as f64).collect()
    }

    /// The `σ²_N` estimates in the same order as [`Sigma2NDataset::depths`].
    pub fn variances(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.sigma2_n).collect()
    }

    /// Per-point sample counts, usable as weights for a weighted fit.
    pub fn sample_weights(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.samples as f64).collect()
    }

    /// The points normalized as in the paper's Fig. 7: `(N, σ²_N·f0²)`.
    pub fn normalized_points(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.n as f64, p.sigma2_n * self.frequency * self.frequency))
            .collect()
    }

    /// Serializes the dataset to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserializes a dataset from JSON produced by [`Sigma2NDataset::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error when the JSON is malformed or violates the dataset invariants.
    pub fn from_json(json: &str) -> Result<Self> {
        let raw: Sigma2NDataset = serde_json::from_str(json)?;
        Self::new(raw.frequency, raw.estimator, raw.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_points() -> Vec<DatasetPoint> {
        vec![
            DatasetPoint {
                n: 100,
                sigma2_n: 2.0e-18,
                samples: 500,
            },
            DatasetPoint {
                n: 1,
                sigma2_n: 1.0e-20,
                samples: 1000,
            },
            DatasetPoint {
                n: 10,
                sigma2_n: 1.5e-19,
                samples: 800,
            },
        ]
    }

    #[test]
    fn construction_sorts_points_by_depth() {
        let ds = Sigma2NDataset::new(103.0e6, "period-domain", demo_points()).unwrap();
        let depths: Vec<usize> = ds.points().iter().map(|p| p.n).collect();
        assert_eq!(depths, vec![1, 10, 100]);
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.estimator(), "period-domain");
    }

    #[test]
    fn accessors_produce_parallel_vectors() {
        let ds = Sigma2NDataset::new(1.0e8, "counter", demo_points()).unwrap();
        assert_eq!(ds.depths(), vec![1.0, 10.0, 100.0]);
        assert_eq!(ds.variances().len(), 3);
        assert_eq!(ds.sample_weights(), vec![1000.0, 800.0, 500.0]);
        let norm = ds.normalized_points();
        assert!((norm[0].1 - 1.0e-20 * 1.0e16).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let ds = Sigma2NDataset::new(103.0e6, "counter", demo_points()).unwrap();
        let json = ds.to_json().unwrap();
        let back = Sigma2NDataset::from_json(&json).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn construction_rejects_invalid_inputs() {
        assert!(Sigma2NDataset::new(0.0, "x", demo_points()).is_err());
        assert!(Sigma2NDataset::new(1.0e8, "x", vec![]).is_err());
        let mut bad = demo_points();
        bad[0].sigma2_n = -1.0;
        assert!(Sigma2NDataset::new(1.0e8, "x", bad).is_err());
        let mut zero_depth = demo_points();
        zero_depth[0].n = 0;
        assert!(Sigma2NDataset::new(1.0e8, "x", zero_depth).is_err());
        let mut dup = demo_points();
        dup[0].n = 10;
        assert!(Sigma2NDataset::new(1.0e8, "x", dup).is_err());
    }

    #[test]
    fn from_json_revalidates() {
        let ds = Sigma2NDataset::new(1.0e8, "counter", demo_points()).unwrap();
        let json = ds.to_json().unwrap().replace("2e-18", "-2e-18");
        assert!(Sigma2NDataset::from_json(&json).is_err());
        assert!(Sigma2NDataset::from_json("not json").is_err());
    }
}
