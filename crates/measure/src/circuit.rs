//! The two-oscillator differential measurement (Fig. 6 / Eq. 12 of the paper).
//!
//! `Osc2` (the *reference*) defines consecutive windows of `N` of its own periods; a
//! counter tallies the rising edges of `Osc1` (the *target*) in every window, and the
//! accumulated relative-jitter statistic is the scaled difference of consecutive counter
//! values.
//!
//! # Quantization floor
//!
//! A hardware counter resolves the window contents to ±1 edge.  The difference of two
//! consecutive counter values therefore carries a quantization noise of roughly half a
//! squared count, i.e. `≈ 0.5/f0²` in seconds².  Below that floor the relative jitter is
//! invisible to the counter — which is precisely the practical difficulty the paper
//! discusses when trying to measure the thermal contribution at small `N`.  The
//! period-domain estimator ([`DifferentialCircuit::measure_period_domain`]) does not
//! quantize and covers the full depth range; both estimators are compared in the
//! `ablation_sn_estimators` benchmark.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use ptrng_osc::jitter::JitterGenerator;
use ptrng_osc::phase::PhaseNoiseModel;
use ptrng_stats::descriptive::sample_variance;
use ptrng_stats::sn::{sigma2_n_sweep, SnSampling};

use crate::counter::{count_in_reference_windows, counts_to_sn};
use crate::dataset::{DatasetPoint, Sigma2NDataset};
use crate::{MeasureError, Result};

/// Result of one counter-based acquisition at a fixed depth `N`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRun {
    /// Accumulation depth `N`.
    pub n: usize,
    /// Raw counter values `Q_i^N`.
    pub counts: Vec<u64>,
    /// Realizations of `s_N` derived from the counts (Eq. 12).
    pub sn: Vec<f64>,
    /// Sample variance of the `s_N` realizations.
    pub sigma2_n: f64,
}

/// The differential measurement circuit: two simulated ring oscillators plus the counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifferentialCircuit {
    target: JitterGenerator,
    reference: JitterGenerator,
}

impl DifferentialCircuit {
    /// Creates a circuit from the phase-noise models of the two oscillators.
    pub fn new(target: PhaseNoiseModel, reference: PhaseNoiseModel) -> Self {
        Self {
            target: JitterGenerator::new(target),
            reference: JitterGenerator::new(reference),
        }
    }

    /// Creates a circuit from pre-configured jitter generators (e.g. with a non-default
    /// flicker synthesis back-end).
    pub fn from_generators(target: JitterGenerator, reference: JitterGenerator) -> Self {
        Self { target, reference }
    }

    /// The paper's experimental setup: two identical oscillators, each carrying half of
    /// the fitted relative phase noise, at 103 MHz.
    ///
    /// The fit of Section IV-B characterizes the *relative* jitter of the pair; splitting
    /// it evenly over two independent, identical oscillators reproduces the same relative
    /// statistics.
    pub fn date14_experiment() -> Self {
        let relative = PhaseNoiseModel::date14_experiment();
        let per_oscillator = PhaseNoiseModel::new(
            relative.b_thermal() / 2.0,
            relative.b_flicker() / 2.0,
            relative.frequency(),
        )
        .expect("halved paper coefficients are valid");
        Self::new(per_oscillator, per_oscillator)
    }

    /// The jitter generator of the counted (target) oscillator.
    pub fn target(&self) -> &JitterGenerator {
        &self.target
    }

    /// The jitter generator of the window-defining (reference) oscillator.
    pub fn reference(&self) -> &JitterGenerator {
        &self.reference
    }

    /// The phase-noise model of the *relative* jitter seen by the counter (coefficients
    /// of the two oscillators add).
    ///
    /// # Errors
    ///
    /// Returns an error when the two nominal frequencies differ by more than 1 %.
    pub fn relative_model(&self) -> Result<PhaseNoiseModel> {
        Ok(self.target.model().relative_to(self.reference.model())?)
    }

    /// Estimated variance contributed by the ±1-count quantization of a hardware
    /// counter, in seconds² (≈ `0.5/f0²`).
    pub fn quantization_floor(&self) -> f64 {
        0.5 / (self.target.model().frequency() * self.target.model().frequency())
    }

    /// Runs the counter-based acquisition at depth `n`, collecting `windows` consecutive
    /// counter values.
    ///
    /// # Errors
    ///
    /// Returns an error when `n == 0`, `windows < 3`, or the underlying generation fails.
    pub fn measure_counters(
        &self,
        rng: &mut dyn RngCore,
        n: usize,
        windows: usize,
    ) -> Result<CounterRun> {
        if n == 0 {
            return Err(MeasureError::InvalidParameter {
                name: "n",
                reason: "accumulation depth must be at least 1".to_string(),
            });
        }
        if windows < 3 {
            return Err(MeasureError::InvalidParameter {
                name: "windows",
                reason: format!("at least 3 windows are required, got {windows}"),
            });
        }
        let reference_periods = n * windows;
        let reference_edges = self.reference.generate_edges(rng, 0.0, reference_periods)?;
        // The target must cover the full reference duration; its nominal frequency may
        // differ slightly, so add a 1 % + 16-period margin.
        let ratio = self.target.model().frequency() / self.reference.model().frequency();
        let target_periods = ((reference_periods as f64) * ratio * 1.01) as usize + 16;
        let target_edges = self.target.generate_edges(rng, 0.0, target_periods)?;

        let counts = count_in_reference_windows(&target_edges, &reference_edges, n)?;
        let sn = counts_to_sn(&counts, self.target.model().frequency())?;
        let sigma2_n = sample_variance(&sn)?;
        Ok(CounterRun {
            n,
            counts,
            sn,
            sigma2_n,
        })
    }

    /// Runs the period-domain acquisition: generates one record of `record_len` periods of
    /// the *relative* jitter process and evaluates `σ²_N` (Eq. 4) at every requested
    /// depth.
    ///
    /// # Errors
    ///
    /// Returns an error when the depths list is empty, the record is too short for every
    /// depth, or generation fails.
    pub fn measure_period_domain(
        &self,
        rng: &mut dyn RngCore,
        depths: &[usize],
        record_len: usize,
    ) -> Result<Sigma2NDataset> {
        let relative = self.relative_model()?;
        let generator = JitterGenerator::with_synthesis(relative, self.target.synthesis());
        let jitter = generator.generate_period_jitter(rng, record_len)?;
        let points = sigma2_n_sweep(&jitter, depths, SnSampling::Overlapping)?
            .into_iter()
            .map(|p| DatasetPoint {
                n: p.n,
                sigma2_n: p.sigma2_n,
                samples: p.samples,
            })
            .collect();
        Sigma2NDataset::new(relative.frequency(), "period-domain", points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrng_osc::model::AccumulationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_rel(a: f64, b: f64, rel: f64) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!((a - b).abs() / scale <= rel, "{a} vs {b} (rel {rel})");
    }

    #[test]
    fn date14_circuit_reconstructs_the_relative_model() {
        let circuit = DifferentialCircuit::date14_experiment();
        let relative = circuit.relative_model().unwrap();
        let paper = PhaseNoiseModel::date14_experiment();
        assert_rel(relative.b_thermal(), paper.b_thermal(), 1e-12);
        assert_rel(relative.b_flicker(), paper.b_flicker(), 1e-12);
    }

    #[test]
    fn counter_measurement_sees_large_jitter() {
        // Exaggerated thermal jitter so the accumulated jitter at N = 100 is far above
        // the counter quantization floor; the measured σ²_N must match Eq. 11 for the
        // relative model.
        let f0 = 1.0e8;
        let b_th = 2.0e6;
        let per_osc = PhaseNoiseModel::thermal_only(b_th / 2.0, f0).unwrap();
        let circuit = DifferentialCircuit::new(per_osc, per_osc);
        let mut rng = StdRng::seed_from_u64(7);
        let run = circuit.measure_counters(&mut rng, 100, 400).unwrap();
        assert_eq!(run.n, 100);
        assert!(run.counts.len() >= 399);
        assert_eq!(run.sn.len(), run.counts.len() - 1);
        let expected = AccumulationModel::new(circuit.relative_model().unwrap()).sigma2_n(100);
        assert!(expected > 4.0 * circuit.quantization_floor());
        assert_rel(run.sigma2_n, expected, 0.35);
    }

    #[test]
    fn counter_measurement_hits_the_quantization_floor_for_small_jitter() {
        // With the paper's (tiny) jitter and a small depth, the counter only sees its own
        // quantization noise — the practical limitation the paper discusses.
        let circuit = DifferentialCircuit::date14_experiment();
        let mut rng = StdRng::seed_from_u64(8);
        let run = circuit.measure_counters(&mut rng, 10, 200).unwrap();
        let floor = circuit.quantization_floor();
        let true_sigma2 = AccumulationModel::new(circuit.relative_model().unwrap()).sigma2_n(10);
        assert!(true_sigma2 < floor / 100.0);
        assert!(run.sigma2_n < 4.0 * floor);
        assert!(run.sigma2_n > floor / 100.0);
    }

    #[test]
    fn period_domain_matches_the_closed_form() {
        let circuit = DifferentialCircuit::date14_experiment();
        let mut rng = StdRng::seed_from_u64(9);
        let dataset = circuit
            .measure_period_domain(&mut rng, &[1, 4, 16, 64], 1 << 16)
            .unwrap();
        let acc = AccumulationModel::new(circuit.relative_model().unwrap());
        for p in dataset.points() {
            assert_rel(p.sigma2_n, acc.sigma2_n(p.n), 0.25);
        }
        assert_eq!(dataset.estimator(), "period-domain");
    }

    #[test]
    fn error_paths() {
        let circuit = DifferentialCircuit::date14_experiment();
        let mut rng = StdRng::seed_from_u64(10);
        assert!(circuit.measure_counters(&mut rng, 0, 10).is_err());
        assert!(circuit.measure_counters(&mut rng, 10, 2).is_err());
        assert!(circuit.measure_period_domain(&mut rng, &[], 1024).is_err());
        let a = PhaseNoiseModel::new(1.0, 1.0, 1.0e8).unwrap();
        let b = PhaseNoiseModel::new(1.0, 1.0, 2.0e8).unwrap();
        assert!(DifferentialCircuit::new(a, b).relative_model().is_err());
    }
}
