//! Reference-windowed edge counter.
//!
//! Models the FPGA counter of the paper's Fig. 6: the rising edges of the *target*
//! oscillator (`Osc1`) are counted during consecutive windows spanning `N` periods of the
//! *reference* oscillator (`Osc2`).  Each window yields one value `Q_i^N`.

use ptrng_osc::edges::EdgeSeries;

use crate::{MeasureError, Result};

/// Counts the target oscillator's rising edges inside consecutive windows of `n`
/// reference periods.
///
/// The `i`-th window spans `[r[i·n], r[(i+1)·n])` where `r` are the reference edge
/// timestamps.  Only complete windows fully covered by the target record are returned;
/// a final window that extends beyond the last target edge is discarded to avoid
/// truncation bias.
///
/// # Errors
///
/// Returns an error when `n == 0` or either edge series is too short to form at least
/// one complete window.
pub fn count_in_reference_windows(
    target: &EdgeSeries,
    reference: &EdgeSeries,
    n: usize,
) -> Result<Vec<u64>> {
    if n == 0 {
        return Err(MeasureError::InvalidParameter {
            name: "n",
            reason: "window length must be at least one reference period".to_string(),
        });
    }
    if reference.len() < n + 1 {
        return Err(MeasureError::InvalidParameter {
            name: "reference",
            reason: format!(
                "need at least {} reference edges for one window of {n} periods, got {}",
                n + 1,
                reference.len()
            ),
        });
    }
    let target_end = match target.last_time() {
        Some(t) => t,
        None => {
            return Err(MeasureError::InvalidParameter {
                name: "target",
                reason: "target edge series is empty".to_string(),
            })
        }
    };
    let ref_times = reference.times();
    let windows = (ref_times.len() - 1) / n;
    let mut counts = Vec::with_capacity(windows);
    for w in 0..windows {
        let start = ref_times[w * n];
        let end = ref_times[(w + 1) * n];
        if end > target_end {
            break;
        }
        counts.push(target.edges_in_window(start, end)? as u64);
    }
    if counts.is_empty() {
        return Err(MeasureError::InvalidParameter {
            name: "target",
            reason: "target record is too short to cover one reference window".to_string(),
        });
    }
    Ok(counts)
}

/// Converts consecutive counter values into realizations of the accumulated relative
/// jitter statistic `s_N(t_i) = (Q_{i+1}^N − Q_i^N)/f0` (Eq. 12), where `f0` is the
/// nominal frequency of the counted (target) oscillator.
///
/// # Errors
///
/// Returns an error when fewer than two counter values are supplied or `f0` is not
/// positive.
pub fn counts_to_sn(counts: &[u64], f0: f64) -> Result<Vec<f64>> {
    if counts.len() < 2 {
        return Err(MeasureError::InvalidParameter {
            name: "counts",
            reason: format!("need at least two counter values, got {}", counts.len()),
        });
    }
    if f0 <= 0.0 || !f0.is_finite() {
        return Err(MeasureError::InvalidParameter {
            name: "f0",
            reason: format!("must be positive and finite, got {f0}"),
        });
    }
    Ok(counts
        .windows(2)
        .map(|w| (w[1] as f64 - w[0] as f64) / f0)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regular_edges(period: f64, len: usize) -> EdgeSeries {
        EdgeSeries::from_periods(0.0, &vec![period; len]).unwrap()
    }

    #[test]
    fn identical_oscillators_give_constant_counts() {
        let target = regular_edges(1.0, 1000);
        let reference = regular_edges(1.0, 1000);
        let counts = count_in_reference_windows(&target, &reference, 10).unwrap();
        assert!(!counts.is_empty());
        // Every window of 10 reference periods contains exactly 10 target edges
        // (boundary edges are half-open so there is no double counting).
        for &c in &counts {
            assert_eq!(c, 10);
        }
    }

    #[test]
    fn frequency_offset_shows_up_in_the_counts() {
        // Target runs 5 % faster than the reference: windows of 100 reference periods
        // contain about 105 target edges.
        let target = regular_edges(1.0 / 1.05, 4000);
        let reference = regular_edges(1.0, 3000);
        let counts = count_in_reference_windows(&target, &reference, 100).unwrap();
        for &c in &counts {
            assert!((104..=106).contains(&c), "count {c}");
        }
    }

    #[test]
    fn counts_cover_only_complete_windows() {
        let target = regular_edges(1.0, 55);
        let reference = regular_edges(1.0, 100);
        // Reference defines 10 windows of 10 periods, but the target record ends at t=55:
        // only the first 5 windows are fully covered.
        let counts = count_in_reference_windows(&target, &reference, 10).unwrap();
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn counts_to_sn_applies_eq_12() {
        let sn = counts_to_sn(&[100, 103, 99, 101], 1.0e8).unwrap();
        assert_eq!(sn.len(), 3);
        assert!((sn[0] - 3.0e-8).abs() < 1e-20);
        assert!((sn[1] + 4.0e-8).abs() < 1e-20);
        assert!((sn[2] - 2.0e-8).abs() < 1e-20);
    }

    #[test]
    fn error_paths() {
        let edges = regular_edges(1.0, 100);
        assert!(count_in_reference_windows(&edges, &edges, 0).is_err());
        let short = regular_edges(1.0, 3);
        assert!(count_in_reference_windows(&edges, &short, 10).is_err());
        let tiny_target = regular_edges(1.0, 2);
        assert!(count_in_reference_windows(&tiny_target, &edges, 50).is_err());
        assert!(counts_to_sn(&[1], 1.0).is_err());
        assert!(counts_to_sn(&[1, 2], 0.0).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn total_count_is_conserved_across_windows(
                n in 1usize..20,
                target_period in 0.5f64..2.0,
            ) {
                let reference = regular_edges(1.0, 200);
                let target = regular_edges(target_period, (400.0 / target_period) as usize);
                let counts = count_in_reference_windows(&target, &reference, n).unwrap();
                let covered_end = reference.times()[counts.len() * n];
                let direct = target.edges_in_window(reference.times()[0], covered_end).unwrap();
                let summed: u64 = counts.iter().sum();
                prop_assert_eq!(summed, direct as u64);
            }
        }
    }
}
