//! Software model of the paper's differential jitter measurement circuit.
//!
//! The experimental setup of Section III-E (implemented on the Evariste II FPGA platform
//! in the paper) consists of two nominally identical ring oscillators: a counter counts
//! the rising edges of `Osc1` during windows of `N` cycles of `Osc2`, producing the
//! values `Q_i^N`; the accumulated relative jitter statistic is then
//! `s_N(t_i) = (Q_{i+1}^N − Q_i^N)/f0` (Eq. 12) and its variance `σ²_N` is what Fig. 7
//! plots against `N`.
//!
//! This crate rebuilds that chain in software:
//!
//! * [`counter`] — the reference-windowed edge counter,
//! * [`circuit`] — the two-oscillator differential measurement (Eq. 12), with an
//!   explicit model of the ±1-count quantization floor of a hardware counter,
//! * [`campaign`] — acquisition campaigns sweeping `N` (optionally in parallel),
//! * [`dataset`] — the resulting `σ²_N` vs `N` datasets, serializable to JSON.
//!
//! Hardware substitution: the only difference between this model and the FPGA circuit is
//! that the oscillators are the simulated [`ptrng_osc::jitter::JitterGenerator`]s rather
//! than physical rings; the counting and differencing semantics are identical.  The
//! equation-by-equation map to the paper is `docs/stochastic-model.md` §4 of the
//! repository book.
//!
//! # Example
//!
//! Measure a small `σ²_N` dataset from the paper's circuit and check that the variance
//! grows with the accumulation depth:
//!
//! ```
//! use ptrng_measure::circuit::DifferentialCircuit;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ptrng_measure::MeasureError> {
//! let circuit = DifferentialCircuit::date14_experiment();
//! let mut rng = StdRng::seed_from_u64(7);
//! let dataset = circuit.measure_period_domain(&mut rng, &[64, 256], 1 << 12)?;
//! let points = dataset.points();
//! assert_eq!(points.len(), 2);
//! assert!(points[1].sigma2_n > points[0].sigma2_n, "σ²_N grows with N");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod circuit;
pub mod counter;
pub mod dataset;

use thiserror::Error;

/// Errors produced by the measurement models.
#[derive(Debug, Error)]
#[non_exhaustive]
pub enum MeasureError {
    /// A parameter was outside its valid domain.
    #[error("invalid parameter {name}: {reason}")]
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// An oscillator-model routine failed.
    #[error("oscillator model error: {0}")]
    Osc(#[from] ptrng_osc::OscError),
    /// A statistical routine failed.
    #[error("statistics error: {0}")]
    Stats(#[from] ptrng_stats::StatsError),
    /// Serialization of a dataset failed.
    #[error("serialization error: {0}")]
    Serialization(#[from] serde_json::Error),
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, MeasureError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_produce_readable_messages() {
        let osc_err = ptrng_osc::OscError::InvalidParameter {
            name: "x",
            reason: "bad".to_string(),
        };
        let err: MeasureError = osc_err.into();
        assert!(err.to_string().contains("oscillator model error"));

        let stats_err = ptrng_stats::StatsError::SeriesTooShort { len: 0, needed: 1 };
        let err: MeasureError = stats_err.into();
        assert!(err.to_string().contains("statistics error"));

        let json_err = serde_json::from_str::<u32>("not json").unwrap_err();
        let err: MeasureError = json_err.into();
        assert!(err.to_string().contains("serialization error"));
    }
}
