//! Acquisition campaigns: sweep `σ²_N` over a range of accumulation depths.
//!
//! A campaign drives the [`DifferentialCircuit`] over a list of depths and produces a
//! [`Sigma2NDataset`] — the software counterpart of letting the paper's FPGA measurement
//! run over night.  Counter-mode campaigns evaluate every depth independently (and in
//! parallel with rayon); period-domain campaigns reuse a single long record.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use ptrng_stats::seed::derive_seed;
use ptrng_stats::sn::log_spaced_depths;

use crate::circuit::DifferentialCircuit;
use crate::dataset::{DatasetPoint, Sigma2NDataset};
use crate::{MeasureError, Result};

/// The estimator a campaign uses at each depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Estimator {
    /// Hardware-faithful counter circuit (Eq. 12): `windows` counter values per depth.
    CounterCircuit {
        /// Number of consecutive counter windows acquired per depth.
        windows: usize,
    },
    /// Direct evaluation of Eq. 4 on one simulated record of the relative period jitter.
    PeriodDomain {
        /// Number of oscillator periods in the simulated record.
        record_len: usize,
    },
}

/// Configuration of an acquisition campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Accumulation depths to acquire.
    pub depths: Vec<usize>,
    /// Estimator to use.
    pub estimator: Estimator,
    /// Base seed; every depth derives its own deterministic sub-seed.
    pub seed: u64,
}

impl CampaignConfig {
    /// A configuration with `count` log-spaced depths between `min_n` and `max_n`.
    ///
    /// # Errors
    ///
    /// Returns an error when the depth range is invalid.
    pub fn log_spaced(
        min_n: usize,
        max_n: usize,
        count: usize,
        estimator: Estimator,
        seed: u64,
    ) -> Result<Self> {
        let depths = log_spaced_depths(min_n, max_n, count)?;
        Ok(Self {
            depths,
            estimator,
            seed,
        })
    }
}

/// A reproducible acquisition campaign over one differential circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementCampaign {
    circuit: DifferentialCircuit,
    config: CampaignConfig,
}

impl MeasurementCampaign {
    /// Creates a campaign.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration has no depths or a depth of zero.
    pub fn new(circuit: DifferentialCircuit, config: CampaignConfig) -> Result<Self> {
        if config.depths.is_empty() {
            return Err(MeasureError::InvalidParameter {
                name: "depths",
                reason: "at least one depth is required".to_string(),
            });
        }
        if config.depths.contains(&0) {
            return Err(MeasureError::InvalidParameter {
                name: "depths",
                reason: "accumulation depths must be at least 1".to_string(),
            });
        }
        Ok(Self { circuit, config })
    }

    /// The circuit under measurement.
    pub fn circuit(&self) -> &DifferentialCircuit {
        &self.circuit
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign, evaluating the counter-mode depths in parallel.
    ///
    /// # Errors
    ///
    /// Returns an error when any individual acquisition fails.
    pub fn run(&self) -> Result<Sigma2NDataset> {
        match self.config.estimator {
            Estimator::PeriodDomain { record_len } => {
                let mut rng = StdRng::seed_from_u64(self.config.seed);
                self.circuit
                    .measure_period_domain(&mut rng, &self.config.depths, record_len)
            }
            Estimator::CounterCircuit { windows } => {
                let runs: Vec<Result<DatasetPoint>> = self
                    .config
                    .depths
                    .par_iter()
                    .map(|&n| {
                        let mut rng =
                            StdRng::seed_from_u64(derive_seed(self.config.seed, n as u64));
                        let run = self.circuit.measure_counters(&mut rng, n, windows)?;
                        Ok(DatasetPoint {
                            n,
                            sigma2_n: run.sigma2_n,
                            samples: run.sn.len(),
                        })
                    })
                    .collect();
                let mut points = Vec::with_capacity(runs.len());
                for r in runs {
                    points.push(r?);
                }
                Sigma2NDataset::new(
                    self.circuit.target().model().frequency(),
                    "counter-circuit",
                    points,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrng_osc::model::AccumulationModel;
    use ptrng_osc::phase::PhaseNoiseModel;

    fn assert_rel(a: f64, b: f64, rel: f64) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!((a - b).abs() / scale <= rel, "{a} vs {b} (rel {rel})");
    }

    #[test]
    fn period_domain_campaign_is_deterministic_and_accurate() {
        let circuit = DifferentialCircuit::date14_experiment();
        let config = CampaignConfig {
            depths: vec![1, 8, 32, 128],
            estimator: Estimator::PeriodDomain {
                record_len: 1 << 16,
            },
            seed: 42,
        };
        let campaign = MeasurementCampaign::new(circuit, config.clone()).unwrap();
        let a = campaign.run().unwrap();
        let b = MeasurementCampaign::new(circuit, config)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a, b);
        let acc = AccumulationModel::new(circuit.relative_model().unwrap());
        for p in a.points() {
            assert_rel(p.sigma2_n, acc.sigma2_n(p.n), 0.3);
        }
    }

    #[test]
    fn counter_campaign_runs_depths_in_parallel() {
        // Exaggerated jitter so the counters see it above the quantization floor.
        let f0 = 1.0e8;
        let per_osc = PhaseNoiseModel::thermal_only(1.0e6, f0).unwrap();
        let circuit = DifferentialCircuit::new(per_osc, per_osc);
        let config = CampaignConfig {
            depths: vec![50, 100, 200],
            estimator: Estimator::CounterCircuit { windows: 300 },
            seed: 7,
        };
        let dataset = MeasurementCampaign::new(circuit, config)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(dataset.len(), 3);
        assert_eq!(dataset.estimator(), "counter-circuit");
        let acc = AccumulationModel::new(circuit.relative_model().unwrap());
        for p in dataset.points() {
            assert_rel(p.sigma2_n, acc.sigma2_n(p.n), 0.4);
        }
        // The thermal-only model must look linear: doubling N roughly doubles σ²_N.
        let v = dataset.variances();
        assert_rel(v[1] / v[0], 2.0, 0.4);
        assert_rel(v[2] / v[1], 2.0, 0.4);
    }

    #[test]
    fn log_spaced_config_builds_sorted_depths() {
        let config = CampaignConfig::log_spaced(
            1,
            1000,
            10,
            Estimator::PeriodDomain { record_len: 4096 },
            1,
        )
        .unwrap();
        assert!(config.depths.len() <= 10);
        assert_eq!(*config.depths.first().unwrap(), 1);
        assert_eq!(*config.depths.last().unwrap(), 1000);
    }

    #[test]
    fn construction_rejects_bad_configs() {
        let circuit = DifferentialCircuit::date14_experiment();
        let empty = CampaignConfig {
            depths: vec![],
            estimator: Estimator::PeriodDomain { record_len: 1024 },
            seed: 0,
        };
        assert!(MeasurementCampaign::new(circuit, empty).is_err());
        let zero = CampaignConfig {
            depths: vec![0, 1],
            estimator: Estimator::PeriodDomain { record_len: 1024 },
            seed: 0,
        };
        assert!(MeasurementCampaign::new(circuit, zero).is_err());
        assert!(CampaignConfig::log_spaced(
            0,
            10,
            5,
            Estimator::PeriodDomain { record_len: 1024 },
            0
        )
        .is_err());
    }

    #[test]
    fn derived_seeds_differ_between_depths() {
        let seeds: Vec<u64> = (1..100u64).map(|n| derive_seed(12345, n)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }
}
