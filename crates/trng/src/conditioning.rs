//! The conditioning pipeline: composable post-processing stages that carry an
//! explicit **entropy ledger** from the noise source to the emitted bits.
//!
//! The paper's central warning is that crediting entropy under the mutual-independence
//! assumption overstates what an eRO-TRNG actually delivers; the corrected
//! (dependent-jitter-aware) bound must therefore be *propagated*, not asserted.  This
//! module makes that propagation a first-class object:
//!
//! * [`EntropyLedger`] — the accounted min-entropy per bit, the worst-case bias it
//!   corresponds to, and the throughput rate, seeded from the stochastic model's
//!   thermal-only (dependent-jitter) lower bound and transformed by every stage,
//! * [`ConditioningStage`] — a block-in/block-out streaming transformation with zero
//!   steady-state allocation (partial groups are carried across calls), mirroring the
//!   block pipeline's `fill_block` style,
//! * [`XorDecimateStage`] / [`VonNeumannStage`] — the algebraic correctors with their
//!   exact bias/rate algebra (piling-up lemma; von Neumann pair statistics),
//! * [`Sha256Stage`] — an SP 800-90B §3.1.5 *vetted conditioner* built on the
//!   workspace's FIPS 180-4 [`crate::sha256`] implementation, whose ledger update uses
//!   the specification's output-entropy bound,
//! * [`ConditioningChain`] — a sequence of stages processed through ping-pong scratch
//!   buffers, with the folded ledger of the whole chain.
//!
//! Bits are represented as one `0`/`1` value per byte, like everywhere else in the
//! workspace; stages *append* to their output buffer so a chain can stream through
//! reused scratch.

use serde::{Deserialize, Serialize};

use ptrng_ais::bits::ensure_bits;
use ptrng_ais::sp80090b::conditioned_output_entropy;
use ptrng_obs::Probe;
use ptrng_stats::minentropy::{bias_from_min_entropy, min_entropy_from_bias};

use crate::postprocess::xor_output_bias;
use crate::sha256::{Sha256, DIGEST_BITS};
use crate::{Result, TrngError};

/// End-to-end entropy accounting of a conditioning pipeline.
///
/// The ledger tracks three coupled quantities:
///
/// * **min-entropy per bit** `h ∈ (0, 1]` — the quantity emission policies and
///   SP 800-90B cutoff calibration consume,
/// * **bias** `ε = 2^{−h} − 1/2` — the worst-case bias consistent with `h`, the
///   representation in which the algebraic stages compose exactly,
/// * **rate** — expected output bits per raw source bit, so throughput planning and
///   entropy accounting share one object.
///
/// A trail of human-readable entries records every transformation for reports and
/// refusal diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyLedger {
    min_entropy_per_bit: f64,
    bias: f64,
    rate: f64,
    trail: Vec<String>,
}

impl EntropyLedger {
    /// Seeds the ledger at the noise source from a model-backed min-entropy claim —
    /// for an eRO-TRNG, the stochastic model's *thermal-only* lower bound
    /// ([`crate::stochastic::EntropyModel::entropy_bound_thermal`]), i.e. the
    /// dependent-jitter-aware reading the paper mandates.
    ///
    /// # Errors
    ///
    /// Returns an error when `min_entropy_per_bit` is outside `(0, 1]`.
    pub fn source(label: &str, min_entropy_per_bit: f64) -> Result<Self> {
        let bias = bias_from_min_entropy(min_entropy_per_bit)?;
        Ok(Self {
            min_entropy_per_bit,
            bias,
            rate: 1.0,
            trail: vec![format!(
                "source {label}: h/bit {min_entropy_per_bit:.6}, bias {bias:.3e}"
            )],
        })
    }

    /// Accounted min-entropy per bit at this point of the pipeline, in `(0, 1]`.
    pub fn min_entropy_per_bit(&self) -> f64 {
        self.min_entropy_per_bit
    }

    /// Worst-case bias `|p − 1/2|` consistent with the accounted min-entropy.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Expected output bits per raw source bit at this point of the pipeline.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The transformation trail, one entry per source/stage.
    pub fn trail(&self) -> &[String] {
        &self.trail
    }

    /// Accounted min-entropy (in bits) carried by `output_bits` emitted bits.
    pub fn accounted_bits(&self, output_bits: u64) -> f64 {
        self.min_entropy_per_bit * output_bits as f64
    }

    /// The canonical machine-readable rendering of the ledger: compact JSON with the
    /// fields `min_entropy_per_bit`, `bias`, `rate` and `trail`.
    ///
    /// This is the **public contract** consumed outside the process — `ptrngd --stats`
    /// prints it, the engine's entropy-deficit refusal carries it, and `ptrng-serve`
    /// returns it verbatim in the `X-PTRNG-Ledger` header and the HTTP 503 refusal
    /// body.  [`EntropyLedger::from_json`] round-trips it bit-exactly (floats use
    /// shortest round-trip formatting).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("a ledger contains only finite floats and strings")
    }

    /// Parses a ledger from its canonical JSON form (see [`EntropyLedger::to_json`])
    /// and re-validates the accounting invariants.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or when the parsed accounting is outside its
    /// valid domain (`h ∉ (0, 1]`, negative bias, non-positive rate).
    pub fn from_json(text: &str) -> Result<Self> {
        let ledger: Self = serde_json::from_str(text).map_err(|e| TrngError::InvalidParameter {
            name: "ledger_json",
            reason: e.to_string(),
        })?;
        if !(ledger.min_entropy_per_bit > 0.0 && ledger.min_entropy_per_bit <= 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "ledger_json",
                reason: format!(
                    "min_entropy_per_bit must be in (0, 1], got {}",
                    ledger.min_entropy_per_bit
                ),
            });
        }
        if !(ledger.bias >= 0.0 && ledger.bias <= 0.5) {
            return Err(TrngError::InvalidParameter {
                name: "ledger_json",
                reason: format!("bias must be in [0, 1/2], got {}", ledger.bias),
            });
        }
        if !(ledger.rate.is_finite() && ledger.rate > 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "ledger_json",
                reason: format!("rate must be positive and finite, got {}", ledger.rate),
            });
        }
        Ok(ledger)
    }

    /// Combines the ledgers of pool children whose bits are XOR-mixed
    /// bit-for-bit into one output bit.
    ///
    /// The accounting is the heterogeneous piling-up lemma:
    /// `ε = 2^{K−1}·∏εᵢ = ½·∏(2εᵢ)` — each factor `2εᵢ ≤ 1`, so the mixed bias is
    /// never worse than **any** child's bias and the credited min-entropy is at
    /// least the best child's.  Crucially the combination stays *conservative*:
    /// every child contributes only its own (dependent-jitter-aware) bound, and
    /// since the credit is monotone increasing in each child's claim, a pool fed
    /// honest per-child bounds can never account more than the same pool fed the
    /// independence-assuming (optimistic) claims the paper warns against.
    /// Removing a child (quarantine) divides the product by its `2εⱼ ≤ 1`, so the
    /// credit is monotone non-increasing under quarantine.
    ///
    /// The rate is `1/K`: the pool consumes one raw bit from each of the `K`
    /// children per emitted bit.
    ///
    /// # Errors
    ///
    /// Returns an error when `children` is empty.
    pub fn xor_mix(label: &str, children: &[EntropyLedger]) -> Result<Self> {
        if children.is_empty() {
            return Err(TrngError::InvalidParameter {
                name: "children",
                reason: "an XOR mix needs at least one child ledger".to_string(),
            });
        }
        let mut bias = 0.5;
        for child in children {
            bias *= 2.0 * child.bias();
        }
        let min_entropy_per_bit = min_entropy_from_bias(bias)?;
        let rate = 1.0 / children.len() as f64;
        let mut trail: Vec<String> = Vec::with_capacity(children.len() + 1);
        for (index, child) in children.iter().enumerate() {
            trail.push(format!(
                "pool child {index}: h/bit {:.6}, bias {:.3e} [{}]",
                child.min_entropy_per_bit(),
                child.bias(),
                child.trail().join(" → ")
            ));
        }
        trail.push(format!(
            "xor-mix {label}: h/bit {min_entropy_per_bit:.6}, bias {bias:.3e}, rate ×{rate:.4}"
        ));
        Ok(Self {
            min_entropy_per_bit,
            bias,
            rate,
            trail,
        })
    }

    /// A new ledger with the given stage transformation appended.
    fn derived(&self, label: &str, min_entropy_per_bit: f64, bias: f64, rate_factor: f64) -> Self {
        let mut trail = self.trail.clone();
        trail.push(format!(
            "{label}: h/bit {min_entropy_per_bit:.6}, bias {bias:.3e}, rate ×{rate_factor:.4}"
        ));
        Self {
            min_entropy_per_bit,
            bias,
            rate: self.rate * rate_factor,
            trail,
        }
    }
}

impl std::fmt::Display for EntropyLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "h/bit {:.6} (bias {:.3e}, rate {:.4}): {}",
            self.min_entropy_per_bit,
            self.bias,
            self.rate,
            self.trail.join(" → ")
        )
    }
}

/// One streaming conditioning transformation: bits in, bits out, ledger through.
///
/// Implementations buffer partial groups (XOR groups, von Neumann pairs, SHA-256
/// input blocks) across calls, so arbitrary batch boundaries are transparent and the
/// steady state allocates nothing beyond the caller's output buffer.
pub trait ConditioningStage: Send {
    /// Short human-readable stage description (CLI-spec style, e.g. `xor:4`).
    fn label(&self) -> String;

    /// Consumes `input` bits and **appends** the conditioned bits to `out`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input contains non-bit values.
    fn process(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<()>;

    /// The ledger of this stage's output, given the ledger of its input.
    ///
    /// # Errors
    ///
    /// Returns an error when the resulting accounting leaves the valid domain.
    fn transform(&self, ledger: &EntropyLedger) -> Result<EntropyLedger>;
}

/// Streaming XOR decimation: each output bit is the parity of `factor` consecutive
/// input bits; a partial group is carried to the next call.
///
/// Ledger algebra (piling-up lemma): `ε' = 2^{K−1}·ε^K`, rate `×1/K` — exactly
/// [`xor_output_bias`], so chained XOR stages compose like a single stage with the
/// product of the factors.
#[derive(Debug, Clone)]
pub struct XorDecimateStage {
    factor: usize,
    parity: u8,
    filled: usize,
}

impl XorDecimateStage {
    /// Creates the stage.
    ///
    /// # Errors
    ///
    /// Returns an error when `factor == 0`.
    pub fn new(factor: usize) -> Result<Self> {
        if factor == 0 {
            return Err(TrngError::InvalidParameter {
                name: "factor",
                reason: "the decimation factor must be at least 1".to_string(),
            });
        }
        Ok(Self {
            factor,
            parity: 0,
            filled: 0,
        })
    }
}

impl ConditioningStage for XorDecimateStage {
    fn label(&self) -> String {
        format!("xor:{}", self.factor)
    }

    fn process(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<()> {
        ensure_bits(input)?;
        out.reserve((self.filled + input.len()) / self.factor);
        for &bit in input {
            self.parity ^= bit;
            self.filled += 1;
            if self.filled == self.factor {
                out.push(self.parity);
                self.parity = 0;
                self.filled = 0;
            }
        }
        Ok(())
    }

    fn transform(&self, ledger: &EntropyLedger) -> Result<EntropyLedger> {
        let bias = xor_output_bias(ledger.bias(), self.factor)?;
        let h = min_entropy_from_bias(bias)?;
        Ok(ledger.derived(&self.label(), h, bias, 1.0 / self.factor as f64))
    }
}

/// Streaming von Neumann corrector: non-overlapping pairs, `01 → 0`, `10 → 1`,
/// `00`/`11` dropped; an odd trailing bit is carried to the next call.
///
/// Ledger algebra: the expected rate per input bit is `2p(1−p)/2 = 1/4 − ε²`.
/// The classical exactness result (output exactly unbiased) holds only for
/// *independent* pairs — precisely the assumption the paper warns against — so the
/// ledger does not saturate the claim at 1 bit/bit: the credited min-entropy is
/// capped by the `2·h` budget the kept pair actually carried (a corrector cannot
/// create entropy), which keeps a degraded source from laundering its deficit
/// through `vn` past a `min-h` emission policy.
#[derive(Debug, Clone, Default)]
pub struct VonNeumannStage {
    pending: Option<u8>,
}

impl VonNeumannStage {
    /// Creates the stage.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ConditioningStage for VonNeumannStage {
    fn label(&self) -> String {
        "vn".to_string()
    }

    fn process(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<()> {
        ensure_bits(input)?;
        for &bit in input {
            match self.pending.take() {
                None => self.pending = Some(bit),
                Some(first) => {
                    if first != bit {
                        out.push(first);
                    }
                }
            }
        }
        Ok(())
    }

    fn transform(&self, ledger: &EntropyLedger) -> Result<EntropyLedger> {
        // Credit at most the budget of the consumed pair: exactly unbiased under the
        // independent-pair model, but never more than 2·h bits per emitted bit.
        let h = (2.0 * ledger.min_entropy_per_bit()).min(1.0);
        let bias = bias_from_min_entropy(h)?;
        let rate_factor = 0.25 - ledger.bias() * ledger.bias();
        Ok(ledger.derived(&self.label(), h, bias, rate_factor))
    }
}

/// Default input/output compression ratio of the SHA-256 conditioning stage.
pub const SHA256_DEFAULT_RATIO: usize = 2;

/// Streaming SP 800-90B §3.1.5 vetted conditioner: collects `ratio × 256` input
/// bits (packed MSB-first into the incremental [`Sha256`] state as they arrive),
/// then emits the 256-bit digest as output bits.
///
/// Ledger algebra: the accounted output min-entropy per block follows the
/// specification's vetted-conditioner bound
/// ([`conditioned_output_entropy`]) with `n_in = 256·ratio`, `n_out = nw = 256`
/// and `h_in = h·n_in`; the rate is `×1/ratio`.
pub struct Sha256Stage {
    ratio: usize,
    hasher: Sha256,
    /// Partially packed input byte (bits enter from the LSB side).
    byte: u8,
    byte_filled: u8,
    /// Input bits fed into the current conditioning block.
    fed_bits: usize,
}

impl Sha256Stage {
    /// Creates the stage with the given input/output ratio (input bits consumed per
    /// output bit).
    ///
    /// # Errors
    ///
    /// Returns an error when `ratio == 0`.
    pub fn new(ratio: usize) -> Result<Self> {
        if ratio == 0 {
            return Err(TrngError::InvalidParameter {
                name: "ratio",
                reason: "the conditioning ratio must be at least 1".to_string(),
            });
        }
        Ok(Self {
            ratio,
            hasher: Sha256::new(),
            byte: 0,
            byte_filled: 0,
            fed_bits: 0,
        })
    }

    /// Input bits consumed per conditioning block.
    fn block_bits(&self) -> usize {
        self.ratio * DIGEST_BITS
    }
}

impl ConditioningStage for Sha256Stage {
    fn label(&self) -> String {
        format!("sha256:{}", self.ratio)
    }

    fn process(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<()> {
        ensure_bits(input)?;
        let block_bits = self.block_bits();
        for &bit in input {
            self.byte = (self.byte << 1) | bit;
            self.byte_filled += 1;
            if self.byte_filled == 8 {
                self.hasher.update(&[self.byte]);
                self.byte = 0;
                self.byte_filled = 0;
            }
            self.fed_bits += 1;
            if self.fed_bits == block_bits {
                // Block widths are multiples of 8, so no partial byte straddles here.
                debug_assert_eq!(self.byte_filled, 0);
                let digest = self.hasher.finalize_reset();
                out.reserve(DIGEST_BITS);
                for byte in digest {
                    for shift in (0..8).rev() {
                        out.push((byte >> shift) & 1);
                    }
                }
                self.fed_bits = 0;
            }
        }
        Ok(())
    }

    fn transform(&self, ledger: &EntropyLedger) -> Result<EntropyLedger> {
        let n_in = self.block_bits() as f64;
        let h_in = ledger.min_entropy_per_bit() * n_in;
        let h_out_block =
            conditioned_output_entropy(n_in, DIGEST_BITS as f64, DIGEST_BITS as f64, h_in)?;
        // Per output bit; the block never credits more than 1 bit/bit.
        let h = (h_out_block / DIGEST_BITS as f64).min(1.0);
        if h <= 0.0 {
            return Err(TrngError::InvalidParameter {
                name: "ledger",
                reason: format!("conditioned output entropy collapsed to {h}"),
            });
        }
        let bias = bias_from_min_entropy(h)?;
        Ok(ledger.derived(&self.label(), h, bias, 1.0 / self.ratio as f64))
    }
}

/// A sequence of conditioning stages streamed through ping-pong scratch buffers.
///
/// The empty chain is the identity (raw bits pass through); [`ConditioningChain::process`]
/// performs no steady-state allocation beyond growing the caller's output buffer.
pub struct ConditioningChain {
    stages: Vec<Box<dyn ConditioningStage>>,
    /// Optional per-stage latency probes (`probes[i]` times `stages[i]`); empty when
    /// the chain is not instrumented, in which case [`ConditioningChain::process`]
    /// takes no timestamps at all.
    probes: Vec<Probe>,
    ping: Vec<u8>,
    pong: Vec<u8>,
}

impl ConditioningChain {
    /// Builds a chain from stages (first stage sees the raw bits).
    pub fn new(stages: Vec<Box<dyn ConditioningStage>>) -> Self {
        Self {
            stages,
            probes: Vec::new(),
            ping: Vec::new(),
            pong: Vec::new(),
        }
    }

    /// The identity chain: output bits are the input bits.
    pub fn identity() -> Self {
        Self::new(Vec::new())
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages — i.e. it is the identity.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Whether this is the identity chain (alias of [`ConditioningChain::is_empty`]
    /// reading as intent at call sites).
    pub fn is_identity(&self) -> bool {
        self.is_empty()
    }

    /// Per-stage labels in pipeline order, e.g. `["xor:4", "sha256:2"]` (empty for
    /// the identity chain) — the label vocabulary latency histograms key on.
    pub fn stage_labels(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.label()).collect()
    }

    /// Attaches one latency [`Probe`] per stage; each call to
    /// [`ConditioningChain::process`] then records every stage's wall-clock time
    /// into the matching probe.  Passing an empty vector removes instrumentation.
    ///
    /// # Panics
    ///
    /// Panics when a non-empty `probes` does not have exactly one probe per stage.
    pub fn instrument(&mut self, probes: Vec<Probe>) {
        assert!(
            probes.is_empty() || probes.len() == self.stages.len(),
            "probe count {} does not match stage count {}",
            probes.len(),
            self.stages.len()
        );
        self.probes = probes;
    }

    /// Human-readable chain description, e.g. `xor:4 → sha256:2` (or `identity`).
    pub fn label(&self) -> String {
        if self.stages.is_empty() {
            return "identity".to_string();
        }
        self.stages
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Streams `input` through every stage, **appending** the conditioned bits to
    /// `out`.  Partial groups buffered inside the stages carry over to the next call.
    ///
    /// # Errors
    ///
    /// Returns an error when the input contains non-bit values.
    pub fn process(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<()> {
        match self.stages.len() {
            0 => {
                ensure_bits(input)?;
                out.extend_from_slice(input);
                Ok(())
            }
            1 => run_stage(&mut self.stages[0], self.probes.first(), input, out),
            n => {
                let Self {
                    stages,
                    probes,
                    ping,
                    pong,
                } = self;
                ping.clear();
                run_stage(&mut stages[0], probes.first(), input, ping)?;
                for (index, stage) in stages[1..n - 1].iter_mut().enumerate() {
                    pong.clear();
                    run_stage(stage, probes.get(index + 1), ping, pong)?;
                    std::mem::swap(ping, pong);
                }
                run_stage(&mut stages[n - 1], probes.get(n - 1), ping, out)
            }
        }
    }

    /// Folds the ledger of the whole chain from the source ledger.
    ///
    /// # Errors
    ///
    /// Returns an error when a stage's accounting leaves the valid domain.
    pub fn transform(&self, ledger: &EntropyLedger) -> Result<EntropyLedger> {
        let mut current = ledger.clone();
        for stage in &self.stages {
            current = stage.transform(&current)?;
        }
        Ok(current)
    }
}

/// Runs one stage, timing it through `probe` when the chain is instrumented.
fn run_stage(
    stage: &mut Box<dyn ConditioningStage>,
    probe: Option<&Probe>,
    input: &[u8],
    out: &mut Vec<u8>,
) -> Result<()> {
    match probe {
        Some(probe) => probe.time(|| stage.process(input, out)),
        None => stage.process(input, out),
    }
}

impl std::fmt::Debug for ConditioningChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditioningChain")
            .field("stages", &self.label())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess::{von_neumann, xor_decimate};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn biased_bits(len: usize, p_one: f64, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| u8::from(rng.gen_bool(p_one))).collect()
    }

    #[test]
    fn ledger_seeds_from_a_claim() {
        let ledger = EntropyLedger::source("test", 0.9).unwrap();
        assert_eq!(ledger.min_entropy_per_bit(), 0.9);
        assert!((ledger.bias() - (2.0f64.powf(-0.9) - 0.5)).abs() < 1e-15);
        assert_eq!(ledger.rate(), 1.0);
        assert_eq!(ledger.trail().len(), 1);
        assert!(EntropyLedger::source("bad", 0.0).is_err());
        assert!(EntropyLedger::source("bad", 1.5).is_err());
        assert!((ledger.accounted_bits(1000) - 900.0).abs() < 1e-9);
        assert!(ledger.to_string().contains("source test"));
    }

    #[test]
    fn ledger_json_round_trips_bit_exactly() {
        // A multi-stage ledger exercises every field: irrational h/bias/rate values
        // and a multi-entry trail.
        let source = EntropyLedger::source("ero:16:strong", 0.9973).unwrap();
        let chain = ConditioningChain::new(vec![
            Box::new(XorDecimateStage::new(3).unwrap()),
            Box::new(Sha256Stage::new(2).unwrap()),
        ]);
        let ledger = chain.transform(&source).unwrap();

        let json = ledger.to_json();
        assert!(json.contains("\"min_entropy_per_bit\""), "{json}");
        assert!(json.contains("xor:3"), "{json}");
        let back = EntropyLedger::from_json(&json).unwrap();
        // Bit-exact: the vendored serde_json renders floats with shortest
        // round-trip formatting.
        assert_eq!(back, ledger);
        assert_eq!(back.to_json(), json);

        // The canonical form is validated on the way in, not just parsed.
        assert!(EntropyLedger::from_json("{not json").is_err());
        let mut bad = ledger.clone();
        bad.min_entropy_per_bit = 1.5;
        assert!(EntropyLedger::from_json(&bad.to_json()).is_err());
        bad.min_entropy_per_bit = 0.5;
        bad.rate = 0.0;
        assert!(EntropyLedger::from_json(&bad.to_json()).is_err());
        bad.rate = 0.5;
        bad.bias = -0.1;
        assert!(EntropyLedger::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn xor_mix_follows_the_piling_up_algebra() {
        let a = EntropyLedger::source("a", 0.2).unwrap();
        let b = EntropyLedger::source("b", 0.5).unwrap();
        let c = EntropyLedger::source("c", 0.9).unwrap();
        let mix = EntropyLedger::xor_mix("pool", &[a.clone(), b.clone(), c.clone()]).unwrap();

        // ε = ½·(2ε_a)(2ε_b)(2ε_c).
        let expected = 0.5 * (2.0 * a.bias()) * (2.0 * b.bias()) * (2.0 * c.bias());
        assert!((mix.bias() - expected).abs() < 1e-15);
        // The mix is never worse than the best child.
        assert!(mix.min_entropy_per_bit() >= c.min_entropy_per_bit());
        assert!((mix.rate() - 1.0 / 3.0).abs() < 1e-15);
        // Trail: one entry per child plus the mix line.
        assert_eq!(mix.trail().len(), 4);
        assert!(mix.trail()[3].contains("xor-mix pool"));

        // Quarantining the strongest child strictly reduces the credit.
        let reduced = EntropyLedger::xor_mix("pool", &[a.clone(), b.clone()]).unwrap();
        assert!(reduced.min_entropy_per_bit() < mix.min_entropy_per_bit());

        // Degenerate single-child mix: the child's own accounting at rate 1.
        let single = EntropyLedger::xor_mix("pool", std::slice::from_ref(&a)).unwrap();
        assert!((single.bias() - a.bias()).abs() < 1e-15);
        assert!((single.min_entropy_per_bit() - a.min_entropy_per_bit()).abs() < 1e-12);

        assert!(EntropyLedger::xor_mix("pool", &[]).is_err());
    }

    #[test]
    fn xor_stage_streams_like_the_batch_function() {
        let bits = biased_bits(10_000, 0.6, 1);
        let mut stage = XorDecimateStage::new(3).unwrap();
        let mut streamed = Vec::new();
        // Deliberately misaligned chunking: carries must bridge the boundaries.
        for chunk in bits.chunks(7) {
            stage.process(chunk, &mut streamed).unwrap();
        }
        let reference = xor_decimate(&bits[..(bits.len() / 3) * 3], 3).unwrap();
        assert_eq!(streamed, reference);
    }

    #[test]
    fn von_neumann_stage_streams_like_the_batch_function() {
        let bits = biased_bits(10_000, 0.7, 2);
        let mut stage = VonNeumannStage::new();
        let mut streamed = Vec::new();
        for chunk in bits.chunks(5) {
            stage.process(chunk, &mut streamed).unwrap();
        }
        assert_eq!(streamed, von_neumann(&bits).unwrap());
    }

    #[test]
    fn stages_reject_non_bits() {
        let mut out = Vec::new();
        assert!(XorDecimateStage::new(0).is_err());
        assert!(XorDecimateStage::new(2)
            .unwrap()
            .process(&[0, 2], &mut out)
            .is_err());
        assert!(VonNeumannStage::new().process(&[3], &mut out).is_err());
        assert!(Sha256Stage::new(0).is_err());
        assert!(Sha256Stage::new(1)
            .unwrap()
            .process(&[9], &mut out)
            .is_err());
        assert!(ConditioningChain::identity()
            .process(&[7], &mut out)
            .is_err());
    }

    #[test]
    fn sha256_stage_emits_digest_blocks() {
        // ratio 2: 512 input bits per 256 output bits.
        let bits = biased_bits(512 * 3 + 100, 0.5, 3);
        let mut stage = Sha256Stage::new(2).unwrap();
        let mut out = Vec::new();
        for chunk in bits.chunks(111) {
            stage.process(chunk, &mut out).unwrap();
        }
        // Three full blocks emitted; the trailing 100 bits are still buffered.
        assert_eq!(out.len(), 3 * 256);
        assert!(out.iter().all(|&b| b <= 1));

        // First block must equal the one-shot digest of the packed first 512 bits.
        let packed = ptrng_ais::bits::pack_bits(&bits[..512]).unwrap();
        let digest = Sha256::digest(&packed);
        let expected: Vec<u8> = digest
            .iter()
            .flat_map(|&byte| (0..8).rev().map(move |s| (byte >> s) & 1))
            .collect();
        assert_eq!(&out[..256], &expected[..]);
    }

    #[test]
    fn sha256_stage_debiases_a_biased_stream() {
        let bits = biased_bits(512 * 40, 0.6, 4);
        let mut stage = Sha256Stage::new(2).unwrap();
        let mut out = Vec::new();
        stage.process(&bits, &mut out).unwrap();
        assert_eq!(out.len(), 256 * 40);
        let p = out.iter().map(|&b| b as f64).sum::<f64>() / out.len() as f64;
        assert!((p - 0.5).abs() < 0.02, "p(1) = {p}");
    }

    #[test]
    fn ledger_follows_the_xor_algebra() {
        let ledger = EntropyLedger::source("model", 0.415).unwrap();
        let out = XorDecimateStage::new(4)
            .unwrap()
            .transform(&ledger)
            .unwrap();
        let expected = xor_output_bias(ledger.bias(), 4).unwrap();
        assert!((out.bias() - expected).abs() < 1e-15);
        assert!(out.min_entropy_per_bit() > ledger.min_entropy_per_bit());
        assert!((out.rate() - 0.25).abs() < 1e-15);
        assert_eq!(out.trail().len(), 2);
    }

    #[test]
    fn ledger_follows_the_von_neumann_algebra() {
        // Near-full-entropy input: the pair budget 2·h exceeds 1, so the classical
        // exactly-unbiased credit applies.
        let strong = EntropyLedger::source("model", 0.9).unwrap();
        let eps = strong.bias();
        let out = VonNeumannStage::new().transform(&strong).unwrap();
        assert_eq!(out.min_entropy_per_bit(), 1.0);
        assert_eq!(out.bias(), 0.0);
        assert!((out.rate() - (0.25 - eps * eps)).abs() < 1e-15);

        // Degraded input: the credit is capped by the consumed pair budget, so `vn`
        // cannot launder an entropy deficit past an emission policy.
        let weak = EntropyLedger::source("model", 0.074).unwrap();
        let out = VonNeumannStage::new().transform(&weak).unwrap();
        assert!((out.min_entropy_per_bit() - 0.148).abs() < 1e-12);
        assert!(out.bias() > 0.0);
    }

    #[test]
    fn sha256_ledger_caps_at_output_width_and_respects_input_entropy() {
        // Near-full-entropy input: ratio 2 accounts (essentially) full output entropy.
        let strong = EntropyLedger::source("strong", 0.9996).unwrap();
        let out = Sha256Stage::new(2).unwrap().transform(&strong).unwrap();
        assert!(out.min_entropy_per_bit() > 0.999, "{}", out);
        assert!((out.rate() - 0.5).abs() < 1e-15);

        // Degraded input: the conditioner cannot create entropy.
        let weak = EntropyLedger::source("weak", 0.074).unwrap();
        let out = Sha256Stage::new(2).unwrap().transform(&weak).unwrap();
        assert!(
            out.min_entropy_per_bit() < 2.0 * 0.074 + 1e-6,
            "{}",
            out.min_entropy_per_bit()
        );
        assert!(out.min_entropy_per_bit() > 0.074);
    }

    #[test]
    fn chain_processes_and_accounts_multi_stage() {
        let bits = biased_bits(512 * 8 * 4, 0.6, 5);
        let mut chain = ConditioningChain::new(vec![
            Box::new(XorDecimateStage::new(2).unwrap()),
            Box::new(Sha256Stage::new(2).unwrap()),
        ]);
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_identity());
        assert_eq!(chain.label(), "xor:2 → sha256:2");
        let mut out = Vec::new();
        for chunk in bits.chunks(1000) {
            chain.process(chunk, &mut out).unwrap();
        }
        assert_eq!(out.len(), bits.len() / 4);

        let ledger = chain
            .transform(&EntropyLedger::source("model", 0.415).unwrap())
            .unwrap();
        assert!((ledger.rate() - 0.25).abs() < 1e-12);
        assert_eq!(ledger.trail().len(), 3);

        // Equivalence with running the stages by hand.
        let mut xor = XorDecimateStage::new(2).unwrap();
        let mut sha = Sha256Stage::new(2).unwrap();
        let mut mid = Vec::new();
        xor.process(&bits, &mut mid).unwrap();
        let mut reference = Vec::new();
        sha.process(&mid, &mut reference).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn instrumented_chain_times_every_stage_without_changing_output() {
        use ptrng_obs::{EventKind, LogLinearHistogram};
        use std::sync::Arc;

        let bits = biased_bits(512 * 8 * 4, 0.6, 5);
        let make = || {
            ConditioningChain::new(vec![
                Box::new(XorDecimateStage::new(2).unwrap()) as Box<dyn ConditioningStage>,
                Box::new(Sha256Stage::new(2).unwrap()),
            ])
        };
        let mut plain = make();
        let mut timed = make();
        assert_eq!(timed.stage_labels(), vec!["xor:2", "sha256:2"]);
        let histograms: Vec<Arc<LogLinearHistogram>> = (0..2)
            .map(|_| Arc::new(LogLinearHistogram::new()))
            .collect();
        timed.instrument(
            histograms
                .iter()
                .map(|h| Probe::new(Arc::clone(h), EventKind::StageApplied))
                .collect(),
        );

        let (mut expected, mut got) = (Vec::new(), Vec::new());
        for chunk in bits.chunks(1000) {
            plain.process(chunk, &mut expected).unwrap();
            timed.process(chunk, &mut got).unwrap();
        }
        assert_eq!(got, expected);
        for histogram in &histograms {
            assert_eq!(histogram.count(), bits.chunks(1000).count() as u64);
        }
    }

    #[test]
    fn identity_chain_is_a_pass_through() {
        let bits = biased_bits(1000, 0.5, 6);
        let mut chain = ConditioningChain::identity();
        assert!(chain.is_identity());
        assert_eq!(chain.len(), 0);
        assert_eq!(chain.label(), "identity");
        let mut out = Vec::new();
        chain.process(&bits, &mut out).unwrap();
        assert_eq!(out, bits);
        let ledger = EntropyLedger::source("s", 0.8).unwrap();
        assert_eq!(chain.transform(&ledger).unwrap(), ledger);
    }

    #[test]
    fn three_stage_chain_ping_pongs_correctly() {
        let bits = biased_bits(512 * 4 * 2 * 3, 0.55, 7);
        let mut chain = ConditioningChain::new(vec![
            Box::new(XorDecimateStage::new(2).unwrap()),
            Box::new(XorDecimateStage::new(3).unwrap()),
            Box::new(Sha256Stage::new(2).unwrap()),
        ]);
        let mut out = Vec::new();
        chain.process(&bits, &mut out).unwrap();

        let mut single = ConditioningChain::new(vec![
            Box::new(XorDecimateStage::new(6).unwrap()),
            Box::new(Sha256Stage::new(2).unwrap()),
        ]);
        let mut reference = Vec::new();
        single.process(&bits, &mut reference).unwrap();
        assert_eq!(out, reference, "xor:2 → xor:3 must equal xor:6");
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The acceptance property: the ledger of chained XOR stages matches the
            /// closed-form piling-up algebra of a single stage with the product factor.
            #[test]
            fn chained_xor_ledger_matches_closed_form(
                h in 0.05f64..1.0,
                k1 in 1usize..6,
                k2 in 1usize..6,
            ) {
                let source = EntropyLedger::source("prop", h).unwrap();
                let chained = ConditioningChain::new(vec![
                    Box::new(XorDecimateStage::new(k1).unwrap()),
                    Box::new(XorDecimateStage::new(k2).unwrap()),
                ])
                .transform(&source)
                .unwrap();
                let closed_form = xor_output_bias(source.bias(), k1 * k2).unwrap();
                prop_assert!((chained.bias() - closed_form).abs() < 1e-12 * closed_form.max(1.0));
                prop_assert!((chained.rate() - 1.0 / (k1 * k2) as f64).abs() < 1e-15);
                // Entropy accounting stays a probability and never decreases under XOR.
                prop_assert!(chained.min_entropy_per_bit() >= h - 1e-12);
                prop_assert!(chained.min_entropy_per_bit() <= 1.0);
            }

            /// The pool credit is conservative: monotone increasing in every child's
            /// claim, so feeding honest (dependent-jitter) bounds can never account
            /// more than any independence-assuming (optimistic) combination.
            #[test]
            fn pool_credit_is_below_every_optimistic_combination(
                hs in proptest::collection::vec(0.02f64..1.0, 2..6),
                bumps in proptest::collection::vec(0.0f64..1.0, 2..6),
            ) {
                let n = hs.len().min(bumps.len());
                let children: Vec<EntropyLedger> = hs[..n]
                    .iter()
                    .map(|&h| EntropyLedger::source("child", h).unwrap())
                    .collect();
                let honest = EntropyLedger::xor_mix("pool", &children).unwrap();

                // Inflate each claim toward 1 (the independence-assuming reading).
                let optimistic: Vec<EntropyLedger> = hs[..n]
                    .iter()
                    .zip(&bumps[..n])
                    .map(|(&h, &t)| EntropyLedger::source("child", h + (1.0 - h) * t).unwrap())
                    .collect();
                let inflated = EntropyLedger::xor_mix("pool", &optimistic).unwrap();
                prop_assert!(honest.min_entropy_per_bit() <= inflated.min_entropy_per_bit() + 1e-12);

                // Sanity: the mix is a valid claim, at least as good as the best child.
                let best = hs[..n].iter().cloned().fold(0.0f64, f64::max);
                prop_assert!(honest.min_entropy_per_bit() >= best - 1e-12);
                prop_assert!(honest.min_entropy_per_bit() <= 1.0);
                prop_assert!(honest.bias() >= 0.0 && honest.bias() < 0.5);
            }

            /// Quarantine monotonicity: dropping any child never increases the
            /// accounted credit.
            #[test]
            fn pool_credit_is_monotone_under_quarantine(
                hs in proptest::collection::vec(0.02f64..1.0, 2..6),
                drop_index in 0usize..6,
            ) {
                let children: Vec<EntropyLedger> = hs
                    .iter()
                    .map(|&h| EntropyLedger::source("child", h).unwrap())
                    .collect();
                let full = EntropyLedger::xor_mix("pool", &children).unwrap();
                let mut survivors = children.clone();
                survivors.remove(drop_index % children.len());
                let reduced = EntropyLedger::xor_mix("pool", &survivors).unwrap();
                prop_assert!(
                    reduced.min_entropy_per_bit() <= full.min_entropy_per_bit() + 1e-12,
                    "quarantine raised credit: {} -> {}",
                    full.min_entropy_per_bit(),
                    reduced.min_entropy_per_bit()
                );
            }

            /// Streaming through arbitrary chunk boundaries equals batch processing.
            #[test]
            fn streaming_is_chunking_invariant(
                bits in proptest::collection::vec(0u8..=1, 0..2048),
                chunk in 1usize..97,
                factor in 1usize..5,
            ) {
                let mut streamed = Vec::new();
                let mut stage = XorDecimateStage::new(factor).unwrap();
                for piece in bits.chunks(chunk) {
                    stage.process(piece, &mut streamed).unwrap();
                }
                let mut batch = Vec::new();
                XorDecimateStage::new(factor).unwrap().process(&bits, &mut batch).unwrap();
                prop_assert_eq!(&streamed, &batch);

                let mut streamed_vn = Vec::new();
                let mut vn = VonNeumannStage::new();
                for piece in bits.chunks(chunk) {
                    vn.process(piece, &mut streamed_vn).unwrap();
                }
                prop_assert_eq!(streamed_vn, von_neumann(&bits).unwrap());
            }
        }
    }
}
