//! The elementary ring-oscillator TRNG: sampler and digitizer.
//!
//! `Osc1` (the *sampled* oscillator) runs freely; a D flip-flop captures its logic level
//! on every `division`-th rising edge of `Osc2` (the *sampling* oscillator).  The
//! captured level is the raw random bit.  Entropy comes from the relative jitter
//! accumulated over one sampling interval; increasing `division` accumulates more jitter
//! per bit at the cost of throughput.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use ptrng_osc::jitter::JitterGenerator;
use ptrng_osc::phase::PhaseNoiseModel;

use crate::{Result, TrngError};

/// Configuration of an elementary RO-TRNG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EroTrngConfig {
    /// Phase-noise model of the sampled oscillator (`Osc1`).
    pub sampled: PhaseNoiseModel,
    /// Phase-noise model of the sampling oscillator (`Osc2`).
    pub sampling: PhaseNoiseModel,
    /// Frequency-division factor applied to the sampling oscillator (`≥ 1`); one bit is
    /// produced every `division` periods of `Osc2`.
    pub division: u32,
    /// Duty cycle of the sampled oscillator's square wave, in `(0, 1)`.
    pub duty_cycle: f64,
}

impl EroTrngConfig {
    /// A configuration mirroring the paper's experiment: two 103 MHz oscillators carrying
    /// the fitted relative phase noise, with the given division factor.
    pub fn date14_experiment(division: u32) -> Self {
        let relative = PhaseNoiseModel::date14_experiment();
        let per_osc = PhaseNoiseModel::new(
            relative.b_thermal() / 2.0,
            relative.b_flicker() / 2.0,
            relative.frequency(),
        )
        .expect("halved paper coefficients are valid");
        // A small deliberate frequency offset between the rings avoids pathological
        // phase locking of the ideal (noise-free) part of the simulation.
        let sampling = PhaseNoiseModel::new(
            per_osc.b_thermal(),
            per_osc.b_flicker(),
            relative.frequency() * 0.9993,
        )
        .expect("offset frequency is valid");
        Self {
            sampled: per_osc,
            sampling,
            division,
            duty_cycle: 0.5,
        }
    }
}

/// The elementary RO-TRNG simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EroTrng {
    config: EroTrngConfig,
    sampled: JitterGenerator,
    sampling: JitterGenerator,
}

impl EroTrng {
    /// Creates a generator from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when `division == 0` or the duty cycle is outside `(0, 1)`.
    pub fn new(config: EroTrngConfig) -> Result<Self> {
        if config.division == 0 {
            return Err(TrngError::InvalidParameter {
                name: "division",
                reason: "the division factor must be at least 1".to_string(),
            });
        }
        if !(config.duty_cycle > 0.0 && config.duty_cycle < 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "duty_cycle",
                reason: format!("must be in (0, 1), got {}", config.duty_cycle),
            });
        }
        Ok(Self {
            config,
            sampled: JitterGenerator::new(config.sampled),
            sampling: JitterGenerator::new(config.sampling),
        })
    }

    /// The configuration of the generator.
    pub fn config(&self) -> &EroTrngConfig {
        &self.config
    }

    /// Nominal bit rate in bits per second.
    pub fn bit_rate(&self) -> f64 {
        self.config.sampling.frequency() / self.config.division as f64
    }

    /// Generates `count` raw bits.
    ///
    /// The simulation generates `count·division` periods of the sampling oscillator and a
    /// matching record of the sampled oscillator, then captures the sampled oscillator's
    /// logic level at each divided sampling edge.
    ///
    /// # Errors
    ///
    /// Returns an error when `count == 0` or the underlying jitter generation fails.
    ///
    /// # Memory
    ///
    /// The period records are held in memory: roughly
    /// `16 bytes × count × division × (1 + f_sampled/f_sampling)`.
    pub fn generate_bits(&self, rng: &mut dyn RngCore, count: usize) -> Result<Vec<u8>> {
        if count == 0 {
            return Err(TrngError::InvalidParameter {
                name: "count",
                reason: "at least one bit must be requested".to_string(),
            });
        }
        let division = self.config.division as usize;
        let sampling_periods = (count * division).max(4);
        let sampling_edges = self.sampling.generate_edges(rng, 0.0, sampling_periods)?;
        let duration = sampling_edges
            .last_time()
            .expect("edge series contains at least the starting edge");
        let ratio = self.config.sampled.frequency() / self.config.sampling.frequency();
        let sampled_periods = ((sampling_periods as f64) * ratio * 1.02) as usize + 16;
        let sampled_edges = self.sampled.generate_edges(rng, 0.0, sampled_periods)?;
        if sampled_edges.last_time().unwrap_or(0.0) < duration {
            return Err(TrngError::InvalidParameter {
                name: "sampled",
                reason: "sampled-oscillator record ended before the sampling record".to_string(),
            });
        }

        let sampled_times = sampled_edges.times();
        let mut bits = Vec::with_capacity(count);
        for k in 1..=count {
            let edge_index = k * division;
            if edge_index >= sampling_edges.len() {
                break;
            }
            let t = sampling_edges.times()[edge_index];
            // Position of t inside the sampled oscillator's current period.
            let idx = sampled_times.partition_point(|&x| x <= t);
            if idx == 0 || idx >= sampled_times.len() {
                break;
            }
            let start = sampled_times[idx - 1];
            let end = sampled_times[idx];
            let fraction = (t - start) / (end - start);
            bits.push(u8::from(fraction < self.config.duty_cycle));
        }
        if bits.len() < count {
            return Err(TrngError::InvalidParameter {
                name: "count",
                reason: "internal record was too short to produce every requested bit".to_string(),
            });
        }
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jittery_config(division: u32) -> EroTrngConfig {
        // Strongly jittery oscillators so that even small divisions decorrelate the bits.
        let sampled = PhaseNoiseModel::new(5.0e5, 0.0, 103.0e6).unwrap();
        let sampling = PhaseNoiseModel::new(5.0e5, 0.0, 102.4e6).unwrap();
        EroTrngConfig {
            sampled,
            sampling,
            division,
            duty_cycle: 0.5,
        }
    }

    #[test]
    fn generates_the_requested_number_of_bits() {
        let trng = EroTrng::new(jittery_config(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let bits = trng.generate_bits(&mut rng, 5000).unwrap();
        assert_eq!(bits.len(), 5000);
        assert!(bits.iter().all(|&b| b <= 1));
    }

    #[test]
    fn bits_are_roughly_balanced_for_a_jittery_source() {
        let trng = EroTrng::new(jittery_config(8)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let bits = trng.generate_bits(&mut rng, 20_000).unwrap();
        let ones: usize = bits.iter().map(|&b| b as usize).sum();
        let p = ones as f64 / bits.len() as f64;
        assert!((p - 0.5).abs() < 0.05, "p(1) = {p}");
    }

    #[test]
    fn deterministic_under_a_seed() {
        let trng = EroTrng::new(jittery_config(4)).unwrap();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        assert_eq!(
            trng.generate_bits(&mut rng1, 1000).unwrap(),
            trng.generate_bits(&mut rng2, 1000).unwrap()
        );
    }

    #[test]
    fn larger_division_reduces_serial_correlation() {
        // With almost no jitter per sampling period, adjacent bits are strongly
        // correlated; accumulating more periods per bit (larger division) weakens the
        // correlation.  This is the qualitative motivation for jitter accumulation.
        let weak_jitter = |division| EroTrngConfig {
            sampled: PhaseNoiseModel::new(2.0e3, 0.0, 103.0e6).unwrap(),
            sampling: PhaseNoiseModel::new(2.0e3, 0.0, 102.9e6).unwrap(),
            division,
            duty_cycle: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let fast = EroTrng::new(weak_jitter(1)).unwrap();
        let slow = EroTrng::new(weak_jitter(64)).unwrap();
        let bits_fast: Vec<f64> = fast
            .generate_bits(&mut rng, 20_000)
            .unwrap()
            .iter()
            .map(|&b| b as f64)
            .collect();
        let bits_slow: Vec<f64> = slow
            .generate_bits(&mut rng, 5_000)
            .unwrap()
            .iter()
            .map(|&b| b as f64)
            .collect();
        let r_fast = ptrng_stats::autocorr::lag1_autocorrelation(&bits_fast)
            .unwrap()
            .abs();
        let r_slow = ptrng_stats::autocorr::lag1_autocorrelation(&bits_slow)
            .unwrap()
            .abs();
        assert!(
            r_slow < r_fast,
            "expected accumulation to reduce |lag-1 autocorrelation|: fast {r_fast}, slow {r_slow}"
        );
    }

    #[test]
    fn date14_configuration_produces_bits() {
        let trng = EroTrng::new(EroTrngConfig::date14_experiment(16)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let bits = trng.generate_bits(&mut rng, 2000).unwrap();
        assert_eq!(bits.len(), 2000);
        assert!((trng.bit_rate() - 103.0e6 * 0.9993 / 16.0).abs() < 1.0);
    }

    #[test]
    fn constructor_and_request_validation() {
        let mut config = jittery_config(4);
        config.division = 0;
        assert!(EroTrng::new(config).is_err());
        let mut config = jittery_config(4);
        config.duty_cycle = 1.0;
        assert!(EroTrng::new(config).is_err());
        let trng = EroTrng::new(jittery_config(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(trng.generate_bits(&mut rng, 0).is_err());
    }
}
