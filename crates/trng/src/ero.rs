//! The elementary ring-oscillator TRNG: sampler and digitizer.
//!
//! `Osc1` (the *sampled* oscillator) runs freely; a D flip-flop captures its logic level
//! on every `division`-th rising edge of `Osc2` (the *sampling* oscillator).  The
//! captured level is the raw random bit.  Entropy comes from the relative jitter
//! accumulated over one sampling interval; increasing `division` accumulates more jitter
//! per bit at the cost of throughput.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use ptrng_noise::white::GaussStream;
use ptrng_osc::jitter::{JitterGenerator, JitterSampler};
use ptrng_osc::phase::PhaseNoiseModel;

use crate::{Result, TrngError};

/// Configuration of an elementary RO-TRNG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EroTrngConfig {
    /// Phase-noise model of the sampled oscillator (`Osc1`).
    pub sampled: PhaseNoiseModel,
    /// Phase-noise model of the sampling oscillator (`Osc2`).
    pub sampling: PhaseNoiseModel,
    /// Frequency-division factor applied to the sampling oscillator (`≥ 1`); one bit is
    /// produced every `division` periods of `Osc2`.
    pub division: u32,
    /// Duty cycle of the sampled oscillator's square wave, in `(0, 1)`.
    pub duty_cycle: f64,
}

impl EroTrngConfig {
    /// A configuration mirroring the paper's experiment: two 103 MHz oscillators carrying
    /// the fitted relative phase noise, with the given division factor.
    pub fn date14_experiment(division: u32) -> Self {
        let relative = PhaseNoiseModel::date14_experiment();
        let per_osc = PhaseNoiseModel::new(
            relative.b_thermal() / 2.0,
            relative.b_flicker() / 2.0,
            relative.frequency(),
        )
        .expect("halved paper coefficients are valid");
        // A small deliberate frequency offset between the rings avoids pathological
        // phase locking of the ideal (noise-free) part of the simulation.
        let sampling = PhaseNoiseModel::new(
            per_osc.b_thermal(),
            per_osc.b_flicker(),
            relative.frequency() * 0.9993,
        )
        .expect("offset frequency is valid");
        Self {
            sampled: per_osc,
            sampling,
            division,
            duty_cycle: 0.5,
        }
    }
}

/// The elementary RO-TRNG simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EroTrng {
    config: EroTrngConfig,
    sampled: JitterGenerator,
    sampling: JitterGenerator,
}

impl EroTrng {
    /// Creates a generator from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when `division == 0` or the duty cycle is outside `(0, 1)`.
    pub fn new(config: EroTrngConfig) -> Result<Self> {
        if config.division == 0 {
            return Err(TrngError::InvalidParameter {
                name: "division",
                reason: "the division factor must be at least 1".to_string(),
            });
        }
        if !(config.duty_cycle > 0.0 && config.duty_cycle < 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "duty_cycle",
                reason: format!("must be in (0, 1), got {}", config.duty_cycle),
            });
        }
        Ok(Self {
            config,
            sampled: JitterGenerator::new(config.sampled),
            sampling: JitterGenerator::new(config.sampling),
        })
    }

    /// The configuration of the generator.
    pub fn config(&self) -> &EroTrngConfig {
        &self.config
    }

    /// Nominal bit rate in bits per second.
    pub fn bit_rate(&self) -> f64 {
        self.config.sampling.frequency() / self.config.division as f64
    }

    /// Creates a streaming sampler carrying the persistent phase state and scratch
    /// buffers of this generator (see [`EroSampler`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the underlying jitter synthesis rejects its parameters.
    pub fn sampler(&self) -> Result<EroSampler> {
        EroSampler::new(*self)
    }

    /// Fills `out` with raw bits through a transient [`EroSampler`].
    ///
    /// Convenience entry point: both oscillators restart phase-aligned at `t = 0`, and
    /// the sampler's scratch is allocated and dropped within the call.  Callers on a hot
    /// path should hold an [`EroSampler`] (via [`EroTrng::sampler`]) instead, which is
    /// allocation-free in steady state and keeps the oscillator phases continuous
    /// across calls.
    ///
    /// # Errors
    ///
    /// Returns an error when the underlying simulation fails.
    pub fn fill_bits(&self, rng: &mut dyn RngCore, out: &mut [u8]) -> Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        self.sampler()?.fill_bits(rng, out)
    }

    /// Generates `count` raw bits into a new vector.
    ///
    /// # Errors
    ///
    /// Returns an error when `count == 0` or the underlying simulation fails.
    #[deprecated(
        since = "0.1.0",
        note = "allocates per call; use `fill_bits` (or hold an `EroSampler`) instead"
    )]
    pub fn generate_bits(&self, rng: &mut dyn RngCore, count: usize) -> Result<Vec<u8>> {
        if count == 0 {
            return Err(TrngError::InvalidParameter {
                name: "count",
                reason: "at least one bit must be requested".to_string(),
            });
        }
        let mut bits = vec![0u8; count];
        self.fill_bits(rng, &mut bits)?;
        Ok(bits)
    }
}

/// Streaming bit sampler for an [`EroTrng`]: persistent oscillator phase plus reusable
/// scratch, so [`EroSampler::fill_bits`] performs no allocation in steady state.
///
/// Two internally-selected simulation strategies produce the same bit-process
/// distribution:
///
/// * **Telescoped** (both oscillators thermal-only) — the classical per-period walk is
///   collapsed using the independent-increment property of white-FM jitter: the
///   sampling oscillator advances one aggregated `N(D·T₀, D·σ²)` step per bit, and the
///   sampled oscillator block-skips to just short of the capture instant (aggregated
///   normal with an `8σ` safety margin) before resolving the final straddling edges
///   period-by-period.  This is exact in distribution — a sum of independent Gaussian
///   periods *is* the aggregated Gaussian — and costs `O(1)` draws per bit instead of
///   `O(division)`.
/// * **Record-based** (any flicker component) — correlated jitter cannot be aggregated,
///   so each call simulates edge records like the one-shot path, but into persistent
///   buffers via [`JitterSampler`] and with a linear merge walk (not a per-bit binary
///   search) for the capture comparisons.  As with the one-shot path, each call is an
///   independent realization restarting at `t = 0`.
#[derive(Debug, Clone)]
pub struct EroSampler {
    config: EroTrngConfig,
    mode: SamplerMode,
}

#[derive(Debug, Clone)]
enum SamplerMode {
    Telescoped(TelescopedState),
    Record(Box<RecordState>),
}

/// Phase state of the exact thermal-only streaming simulation.
#[derive(Debug, Clone)]
struct TelescopedState {
    gauss: GaussStream,
    /// Per-period jitter standard deviations.
    sigma_sampling: f64,
    sigma_sampled: f64,
    /// Time of the current (division-aligned) sampling edge.
    t: f64,
    /// Straddling edge pair of the sampled oscillator: `prev <= t < next` after
    /// advancing.
    prev: f64,
    next: f64,
    started: bool,
}

#[derive(Debug, Clone)]
struct RecordState {
    sampling: JitterSampler,
    sampled: JitterSampler,
    sampling_times: Vec<f64>,
    sampled_times: Vec<f64>,
}

impl EroSampler {
    fn new(trng: EroTrng) -> Result<Self> {
        let config = *trng.config();
        let thermal_only = config.sampled.b_flicker() == 0.0 && config.sampling.b_flicker() == 0.0;
        let mode = if thermal_only {
            SamplerMode::Telescoped(TelescopedState {
                gauss: GaussStream::new(),
                sigma_sampling: config.sampling.thermal_period_jitter(),
                sigma_sampled: config.sampled.thermal_period_jitter(),
                t: 0.0,
                prev: 0.0,
                next: 0.0,
                started: false,
            })
        } else {
            SamplerMode::Record(Box::new(RecordState {
                sampling: JitterSampler::new(JitterGenerator::new(config.sampling))
                    .map_err(TrngError::from)?,
                sampled: JitterSampler::new(JitterGenerator::new(config.sampled))
                    .map_err(TrngError::from)?,
                sampling_times: Vec::new(),
                sampled_times: Vec::new(),
            }))
        };
        Ok(Self { config, mode })
    }

    /// The configuration of the underlying generator.
    pub fn config(&self) -> &EroTrngConfig {
        &self.config
    }

    /// Fills `out` with raw bits (one `0`/`1` byte per bit).
    ///
    /// # Errors
    ///
    /// Returns an error when the underlying simulation fails (e.g. a generated period
    /// is not strictly positive, which requires jitter comparable to the period — a
    /// mis-parameterized model).
    /// Generic over the RNG so concrete callers get a fully monomorphized (inlined)
    /// draw path; `&mut dyn RngCore` works too.
    pub fn fill_bits<R: RngCore + ?Sized>(&mut self, rng: &mut R, out: &mut [u8]) -> Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        match &mut self.mode {
            SamplerMode::Telescoped(state) => state.fill_bits(&self.config, rng, out),
            SamplerMode::Record(state) => state.fill_bits(&self.config, rng, out),
        }
    }
}

impl TelescopedState {
    fn fill_bits<R: RngCore + ?Sized>(
        &mut self,
        config: &EroTrngConfig,
        rng: &mut R,
        out: &mut [u8],
    ) -> Result<()> {
        let t0_spl = config.sampling.period();
        let t0_smp = config.sampled.period();
        let division = config.division as f64;
        let duty = config.duty_cycle;
        let step_mean = division * t0_spl;
        let step_sigma = division.sqrt() * self.sigma_sampling;
        let sigma_smp = self.sigma_sampled;
        let inv_t0_smp = 1.0 / t0_smp;
        // Guard coefficient of the block skip: 5σ of the aggregated jitter per √period,
        // in periods.
        let guard_c = 5.0 * sigma_smp * inv_t0_smp;
        let mut gauss = self.gauss;
        let (mut t, mut prev, mut next) = (self.t, self.prev, self.next);
        let mut started = self.started;
        // The walk runs entirely on locals; state is committed only on success.  On an
        // error (non-positive period — a mis-parameterized model) the sampler resets to
        // its initial phase state, so a retrying caller gets a clean fresh realization
        // instead of a half-advanced walk that never existed.
        let walk = (|| -> Result<()> {
            if !started {
                // Both oscillators start phase-aligned at t = 0; resolve the sampled
                // oscillator's first period.
                let first = t0_smp + sigma_smp * gauss.next(rng);
                if first <= 0.0 {
                    return Err(non_positive_period_error());
                }
                next = first;
                started = true;
            }
            // Rebase the time origin so the absolute timestamps cannot grow without
            // bound (subtracting a common offset leaves every difference, and hence
            // every bit, unchanged up to one ulp).
            if prev > 1.0e9 * t0_smp {
                t -= prev;
                next -= prev;
                prev = 0.0;
            }
            for bit in out.iter_mut() {
                // One aggregated draw advances the sampling oscillator by `division`
                // periods: Σ of D iid N(T₀, σ²) periods is N(D·T₀, D·σ²).
                t += step_mean + step_sigma * gauss.next(rng);
                if t <= prev {
                    return Err(non_positive_period_error());
                }
                // Block-skip across sampled edges that cannot straddle t: aim `guard`
                // periods short of t, where the guard keeps the overshoot probability
                // below ~3e-7 per skip (5σ of the aggregated jitter); a rare overshoot
                // is handled explicitly, so this is a speed/robustness knob, not a
                // correctness bound.  One skip per bit suffices — what remains after
                // it is of the guard's order and is resolved edge-by-edge.
                let whole = if next <= t {
                    ((t - next) * inv_t0_smp) as usize
                } else {
                    0
                };
                let guard = (guard_c * (whole as f64).sqrt()).ceil() as usize + 1;
                if whole > guard + 1 {
                    let k = (whole - guard) as f64;
                    let skip = k * t0_smp + k.sqrt() * sigma_smp * gauss.next(rng);
                    if skip <= 0.0 {
                        return Err(non_positive_period_error());
                    }
                    next += skip;
                }
                if next > t && prev < next - 2.0 * t0_smp {
                    // Beyond the 5σ guard: the straddling pair was skipped;
                    // approximate the missing edge one nominal period back.
                    prev = next - t0_smp;
                }
                // Resolve the remaining sampled edges one period at a time.
                while next <= t {
                    let period = t0_smp + sigma_smp * gauss.next(rng);
                    if period <= 0.0 {
                        return Err(non_positive_period_error());
                    }
                    prev = next;
                    next += period;
                }
                // fraction < duty  ⟺  t - prev < duty·(next - prev), sparing a
                // division.
                *bit = u8::from(t - prev < duty * (next - prev));
            }
            Ok(())
        })();
        match walk {
            Ok(()) => {
                self.gauss = gauss;
                self.t = t;
                self.prev = prev;
                self.next = next;
                self.started = started;
                Ok(())
            }
            Err(e) => {
                self.gauss = GaussStream::new();
                self.t = 0.0;
                self.prev = 0.0;
                self.next = 0.0;
                self.started = false;
                Err(e)
            }
        }
    }
}

fn non_positive_period_error() -> TrngError {
    TrngError::InvalidParameter {
        name: "periods",
        reason: "a generated period was not strictly positive (jitter comparable to the \
                 period — a mis-parameterized model)"
            .to_string(),
    }
}

impl RecordState {
    fn fill_bits<R: RngCore + ?Sized>(
        &mut self,
        config: &EroTrngConfig,
        mut rng: &mut R,
        out: &mut [u8],
    ) -> Result<()> {
        let division = config.division as usize;
        let count = out.len();
        let sampling_periods = (count * division).max(4);
        self.sampling_times.resize(sampling_periods + 1, 0.0);
        self.sampling
            .fill_edge_times(&mut rng, 0.0, &mut self.sampling_times)?;
        let duration = *self
            .sampling_times
            .last()
            .expect("edge buffer holds at least the starting edge");
        let ratio = config.sampled.frequency() / config.sampling.frequency();
        let sampled_periods = ((sampling_periods as f64) * ratio * 1.02) as usize + 16;
        self.sampled_times.resize(sampled_periods + 1, 0.0);
        self.sampled
            .fill_edge_times(&mut rng, 0.0, &mut self.sampled_times)?;
        if *self.sampled_times.last().expect("non-empty") < duration {
            return Err(TrngError::InvalidParameter {
                name: "sampled",
                reason: "sampled-oscillator record ended before the sampling record".to_string(),
            });
        }

        // Both edge series are monotone: one linear merge walk resolves every capture
        // instant, instead of a per-bit binary search.
        let mut idx = 0usize;
        for (k, bit) in out.iter_mut().enumerate() {
            let edge_index = (k + 1) * division;
            let t = self.sampling_times[edge_index];
            while idx < self.sampled_times.len() && self.sampled_times[idx] <= t {
                idx += 1;
            }
            if idx == 0 || idx >= self.sampled_times.len() {
                return Err(TrngError::InvalidParameter {
                    name: "count",
                    reason: "internal record was too short to produce every requested bit"
                        .to_string(),
                });
            }
            let start = self.sampled_times[idx - 1];
            let end = self.sampled_times[idx];
            let fraction = (t - start) / (end - start);
            *bit = u8::from(fraction < config.duty_cycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jittery_config(division: u32) -> EroTrngConfig {
        // Strongly jittery oscillators so that even small divisions decorrelate the bits.
        let sampled = PhaseNoiseModel::new(5.0e5, 0.0, 103.0e6).unwrap();
        let sampling = PhaseNoiseModel::new(5.0e5, 0.0, 102.4e6).unwrap();
        EroTrngConfig {
            sampled,
            sampling,
            division,
            duty_cycle: 0.5,
        }
    }

    fn fill(trng: &EroTrng, seed: u64, count: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = vec![0u8; count];
        trng.fill_bits(&mut rng, &mut bits).unwrap();
        bits
    }

    #[test]
    fn generates_the_requested_number_of_bits() {
        let trng = EroTrng::new(jittery_config(4)).unwrap();
        let bits = fill(&trng, 1, 5000);
        assert_eq!(bits.len(), 5000);
        assert!(bits.iter().all(|&b| b <= 1));
    }

    #[test]
    fn bits_are_roughly_balanced_for_a_jittery_source() {
        let trng = EroTrng::new(jittery_config(8)).unwrap();
        let bits = fill(&trng, 2, 20_000);
        let ones: usize = bits.iter().map(|&b| b as usize).sum();
        let p = ones as f64 / bits.len() as f64;
        assert!((p - 0.5).abs() < 0.05, "p(1) = {p}");
    }

    #[test]
    fn deterministic_under_a_seed() {
        let trng = EroTrng::new(jittery_config(4)).unwrap();
        assert_eq!(fill(&trng, 3, 1000), fill(&trng, 3, 1000));
    }

    #[test]
    fn sampler_streams_bits_identically_to_one_shot_requests() {
        // A persistent sampler drains the RNG bit-by-bit: two chunked calls must equal
        // one combined call.
        let trng = EroTrng::new(jittery_config(4)).unwrap();
        let mut chunked = vec![0u8; 1000];
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = trng.sampler().unwrap();
        let (a, b) = chunked.split_at_mut(400);
        sampler.fill_bits(&mut rng, a).unwrap();
        sampler.fill_bits(&mut rng, b).unwrap();
        assert_eq!(chunked, fill(&trng, 7, 1000));
        assert_eq!(sampler.config(), trng.config());
        // Empty requests are a no-op.
        sampler.fill_bits(&mut rng, &mut []).unwrap();
    }

    #[test]
    fn telescoped_sampler_resets_cleanly_after_an_error() {
        // σ/T₀ = 0.25: a non-positive period (>4σ event) is certain within a million
        // draws, so the first large request errors; afterwards the sampler must be back
        // in its initial phase state, behaving exactly like a freshly-built one.
        let extreme = EroTrngConfig {
            sampled: PhaseNoiseModel::new(6.25e6, 0.0, 1.0e8).unwrap(),
            sampling: PhaseNoiseModel::new(6.25e6, 0.0, 0.993e8).unwrap(),
            division: 1,
            duty_cycle: 0.5,
        };
        let trng = EroTrng::new(extreme).unwrap();
        let mut sampler = trng.sampler().unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut big = vec![0u8; 1 << 20];
        assert!(sampler.fill_bits(&mut rng, &mut big).is_err());
        let mut fresh = trng.sampler().unwrap();
        let mut rng_a = StdRng::seed_from_u64(22);
        let mut rng_b = StdRng::seed_from_u64(22);
        let mut after_error = vec![0u8; 64];
        let mut from_fresh = vec![0u8; 64];
        let res_a = sampler.fill_bits(&mut rng_a, &mut after_error);
        let res_b = fresh.fill_bits(&mut rng_b, &mut from_fresh);
        assert_eq!(res_a.is_ok(), res_b.is_ok());
        assert_eq!(after_error, from_fresh);
    }

    #[test]
    fn telescoped_and_record_paths_agree_statistically() {
        // A vanishing flicker coefficient forces the record-based simulation while
        // leaving the physics indistinguishable from thermal-only; both strategies must
        // produce the same bit statistics.
        let thermal = jittery_config(8);
        let mut with_epsilon_flicker = thermal;
        with_epsilon_flicker.sampled = PhaseNoiseModel::new(
            thermal.sampled.b_thermal(),
            1e-30,
            thermal.sampled.frequency(),
        )
        .unwrap();
        let fast = EroTrng::new(thermal).unwrap();
        let record = EroTrng::new(with_epsilon_flicker).unwrap();
        let stats = |bits: &[u8]| {
            let series: Vec<f64> = bits.iter().map(|&b| b as f64).collect();
            let p = series.iter().sum::<f64>() / series.len() as f64;
            let r1 = ptrng_stats::autocorr::lag1_autocorrelation(&series).unwrap();
            (p, r1)
        };
        let (p_fast, r_fast) = stats(&fill(&fast, 11, 40_000));
        let (p_rec, r_rec) = stats(&fill(&record, 12, 40_000));
        assert!((p_fast - p_rec).abs() < 0.02, "bias {p_fast} vs {p_rec}");
        assert!(
            (r_fast - r_rec).abs() < 0.05,
            "lag-1 correlation {r_fast} vs {r_rec}"
        );
    }

    #[test]
    fn larger_division_reduces_serial_correlation() {
        // With almost no jitter per sampling period, adjacent bits are strongly
        // correlated; accumulating more periods per bit (larger division) weakens the
        // correlation.  This is the qualitative motivation for jitter accumulation.
        let weak_jitter = |division| EroTrngConfig {
            sampled: PhaseNoiseModel::new(2.0e3, 0.0, 103.0e6).unwrap(),
            sampling: PhaseNoiseModel::new(2.0e3, 0.0, 102.9e6).unwrap(),
            division,
            duty_cycle: 0.5,
        };
        let fast = EroTrng::new(weak_jitter(1)).unwrap();
        let slow = EroTrng::new(weak_jitter(64)).unwrap();
        let bits_fast: Vec<f64> = fill(&fast, 4, 20_000).iter().map(|&b| b as f64).collect();
        let bits_slow: Vec<f64> = fill(&slow, 4, 5_000).iter().map(|&b| b as f64).collect();
        let r_fast = ptrng_stats::autocorr::lag1_autocorrelation(&bits_fast)
            .unwrap()
            .abs();
        let r_slow = ptrng_stats::autocorr::lag1_autocorrelation(&bits_slow)
            .unwrap()
            .abs();
        assert!(
            r_slow < r_fast,
            "expected accumulation to reduce |lag-1 autocorrelation|: fast {r_fast}, slow {r_slow}"
        );
    }

    #[test]
    fn date14_configuration_produces_bits() {
        let trng = EroTrng::new(EroTrngConfig::date14_experiment(16)).unwrap();
        let bits = fill(&trng, 5, 2000);
        assert_eq!(bits.len(), 2000);
        assert!(bits.iter().all(|&b| b <= 1));
        assert!((trng.bit_rate() - 103.0e6 * 0.9993 / 16.0).abs() < 1.0);
    }

    /// The single compatibility gate for the deprecated shim: everything else in the
    /// workspace (internals, examples, benches) uses `fill_bits`/`EroSampler`.
    #[test]
    #[allow(deprecated)]
    fn deprecated_generate_bits_wraps_fill_bits() {
        let trng = EroTrng::new(jittery_config(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let bits = trng.generate_bits(&mut rng, 1000).unwrap();
        assert_eq!(bits, fill(&trng, 9, 1000));
        // Error path of the shim, gated here rather than in the validation test.
        assert!(trng.generate_bits(&mut rng, 0).is_err());
    }

    #[test]
    fn constructor_and_request_validation() {
        let mut config = jittery_config(4);
        config.division = 0;
        assert!(EroTrng::new(config).is_err());
        let mut config = jittery_config(4);
        config.duty_cycle = 1.0;
        assert!(EroTrng::new(config).is_err());
    }
}
