//! Empirical entropy estimators for raw bit sequences.
//!
//! These estimators quantify the randomness actually present in a generated sequence and
//! are used to compare the stochastic-model *bounds* of [`crate::stochastic`] against
//! simulated generator output.

use ptrng_ais::bits::{blocks_as_integers, ensure_bit_len, ensure_bits};

use crate::{Result, TrngError};

/// Binary Shannon entropy `h(p) = -p·log2(p) - (1-p)·log2(1-p)`.
///
/// Returns 0 for `p ∈ {0, 1}`.
///
/// # Errors
///
/// Returns an error when `p` is outside `[0, 1]`.
pub fn binary_entropy(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(TrngError::InvalidParameter {
            name: "p",
            reason: format!("a probability must lie in [0, 1], got {p}"),
        });
    }
    if p == 0.0 || p == 1.0 {
        return Ok(0.0);
    }
    Ok(-p * p.log2() - (1.0 - p) * (1.0 - p).log2())
}

/// Shannon entropy per bit estimated from the empirical bias of the sequence
/// (upper bound: ignores any serial dependence).
///
/// # Errors
///
/// Returns an error for an empty sequence or non-bit values.
pub fn shannon_entropy_from_bias(bits: &[u8]) -> Result<f64> {
    ensure_bit_len(bits, 1)?;
    let ones: usize = bits.iter().map(|&b| b as usize).sum();
    binary_entropy(ones as f64 / bits.len() as f64)
}

/// Shannon entropy per bit estimated from the distribution of non-overlapping
/// `block_bits`-bit blocks (captures dependences up to the block length).
///
/// # Errors
///
/// Returns an error when `block_bits` is outside `1..=16` or fewer than 8 complete
/// blocks are available.
pub fn block_entropy(bits: &[u8], block_bits: usize) -> Result<f64> {
    if block_bits == 0 || block_bits > 16 {
        return Err(TrngError::InvalidParameter {
            name: "block_bits",
            reason: format!("block width must be in 1..=16, got {block_bits}"),
        });
    }
    ensure_bit_len(bits, block_bits * 8)?;
    let blocks = blocks_as_integers(bits, block_bits)?;
    let mut counts = vec![0u64; 1 << block_bits];
    for b in &blocks {
        counts[*b as usize] += 1;
    }
    let total = blocks.len() as f64;
    let mut h = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    Ok(h / block_bits as f64)
}

/// Min-entropy per bit estimated from the most frequent `block_bits`-bit block.
///
/// # Errors
///
/// Same conditions as [`block_entropy`].
pub fn min_entropy(bits: &[u8], block_bits: usize) -> Result<f64> {
    if block_bits == 0 || block_bits > 16 {
        return Err(TrngError::InvalidParameter {
            name: "block_bits",
            reason: format!("block width must be in 1..=16, got {block_bits}"),
        });
    }
    ensure_bit_len(bits, block_bits * 8)?;
    let blocks = blocks_as_integers(bits, block_bits)?;
    let mut counts = vec![0u64; 1 << block_bits];
    for b in &blocks {
        counts[*b as usize] += 1;
    }
    let max = *counts.iter().max().expect("count vector is non-empty") as f64;
    let p_max = max / blocks.len() as f64;
    Ok(-p_max.log2() / block_bits as f64)
}

/// Entropy rate of the first-order Markov chain fitted to the sequence:
/// `H = Σ_s π(s)·h(p(1|s))`.
///
/// This captures exactly the kind of next-bit predictability introduced by serial
/// dependence between adjacent samples.
///
/// # Errors
///
/// Returns an error when fewer than 16 bits are provided, the sequence never leaves one
/// state, or values are not bits.
pub fn markov_entropy_rate(bits: &[u8]) -> Result<f64> {
    ensure_bits(bits)?;
    ensure_bit_len(bits, 16)?;
    let mut count = [0u64; 2];
    let mut ones_after = [0u64; 2];
    for w in bits.windows(2) {
        count[w[0] as usize] += 1;
        ones_after[w[0] as usize] += w[1] as u64;
    }
    if count[0] == 0 || count[1] == 0 {
        return Err(TrngError::InvalidParameter {
            name: "bits",
            reason: "the sequence never takes one of the two values".to_string(),
        });
    }
    let total = (count[0] + count[1]) as f64;
    let pi = [count[0] as f64 / total, count[1] as f64 / total];
    let mut h = 0.0;
    for s in 0..2 {
        let p1 = ones_after[s] as f64 / count[s] as f64;
        h += pi[s] * binary_entropy(p1)?;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn binary_entropy_reference_values() {
        assert_eq!(binary_entropy(0.0).unwrap(), 0.0);
        assert_eq!(binary_entropy(1.0).unwrap(), 0.0);
        assert!((binary_entropy(0.5).unwrap() - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.11).unwrap() - 0.4999).abs() < 1e-3);
        assert!(binary_entropy(-0.1).is_err());
    }

    #[test]
    fn uniform_bits_have_full_entropy_by_every_estimator() {
        let bits = random_bits(200_000, 51);
        assert!(shannon_entropy_from_bias(&bits).unwrap() > 0.9999);
        assert!(block_entropy(&bits, 8).unwrap() > 0.995);
        // The min-entropy estimator is biased low on finite samples (the maximum count
        // overshoots its expectation); 0.93 is the practical floor for 25 000 blocks.
        assert!(min_entropy(&bits, 8).unwrap() > 0.93);
        assert!(markov_entropy_rate(&bits).unwrap() > 0.9999);
    }

    #[test]
    fn biased_bits_have_reduced_entropy() {
        let mut rng = StdRng::seed_from_u64(52);
        let bits: Vec<u8> = (0..200_000).map(|_| u8::from(rng.gen_bool(0.75))).collect();
        let h = shannon_entropy_from_bias(&bits).unwrap();
        assert!((h - 0.8113).abs() < 0.01, "h = {h}");
        assert!(min_entropy(&bits, 8).unwrap() < h);
    }

    #[test]
    fn correlated_bits_fool_the_bias_estimator_but_not_the_markov_one() {
        // Sticky Markov chain: balanced overall, but very predictable.
        let mut rng = StdRng::seed_from_u64(53);
        let mut bits = Vec::with_capacity(200_000);
        let mut current: u8 = 0;
        for _ in 0..200_000 {
            bits.push(current);
            if !rng.gen_bool(0.9) {
                current ^= 1;
            }
        }
        let h_bias = shannon_entropy_from_bias(&bits).unwrap();
        let h_markov = markov_entropy_rate(&bits).unwrap();
        let h_block = block_entropy(&bits, 8).unwrap();
        assert!(
            h_bias > 0.99,
            "bias estimator sees a balanced sequence ({h_bias})"
        );
        assert!((h_markov - binary_entropy(0.9).unwrap()).abs() < 0.01);
        assert!(
            h_block < 0.75,
            "block estimator must see the dependence ({h_block})"
        );
    }

    #[test]
    fn min_entropy_is_a_lower_bound_on_shannon_block_entropy() {
        for seed in 54..58 {
            let bits = random_bits(50_000, seed);
            let h_min = min_entropy(&bits, 4).unwrap();
            let h_block = block_entropy(&bits, 4).unwrap();
            assert!(h_min <= h_block + 1e-9);
        }
    }

    #[test]
    fn error_paths() {
        assert!(shannon_entropy_from_bias(&[]).is_err());
        assert!(block_entropy(&random_bits(100, 1), 0).is_err());
        assert!(block_entropy(&random_bits(100, 1), 17).is_err());
        assert!(block_entropy(&random_bits(10, 1), 8).is_err());
        assert!(min_entropy(&random_bits(10, 1), 8).is_err());
        assert!(markov_entropy_rate(&[1; 100]).is_err());
        assert!(markov_entropy_rate(&[0, 1, 2]).is_err());
    }
}
