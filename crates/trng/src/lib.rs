//! Elementary ring-oscillator TRNG (eRO-TRNG) and its stochastic models.
//!
//! The generator studied by the paper (Fig. 4) samples the output of one free-running
//! ring oscillator with a D flip-flop clocked by a second ring oscillator (optionally
//! divided), producing a raw binary sequence whose entropy stems from the accumulated
//! relative jitter of the two rings.  This crate provides:
//!
//! * [`ero`] — the sampler/digitizer producing the raw binary sequence,
//! * [`postprocess`] — algebraic post-processing (XOR decimation, von Neumann, parity),
//! * [`conditioning`] — the streaming conditioning pipeline: composable stages
//!   (XOR decimation, von Neumann, a SHA-256 vetted conditioner) threading an
//!   end-to-end [`conditioning::EntropyLedger`] from the stochastic model's
//!   dependent-jitter bound to the emitted bits,
//! * [`sha256`] — a hand-rolled FIPS 180-4 SHA-256 backing the vetted conditioner,
//! * [`drbg`] — an SP 800-90A Hash_DRBG over that SHA-256: the expansion tier that
//!   decouples serving throughput from the physical source (seeded and reseeded
//!   from ledger-accounted conditioned output by the engine's `ExpandedTap`),
//! * [`entropy`] — empirical entropy estimators for bit sequences,
//! * [`stochastic`] — entropy-per-bit bounds: the classical thermal-only ("independent
//!   jitter") model and the flicker-aware correction motivated by the paper,
//! * [`online`] — the embedded online test sketched in the paper's conclusion: monitor
//!   the thermal-noise contribution to the jitter via the `σ²_N` counters.
//!
//! The full paper-math-to-code map lives in `docs/stochastic-model.md` of the
//! repository book; `docs/architecture.md` shows where the ledger travels at runtime.
//!
//! # Example
//!
//! The paper's warning, quantified: crediting the total measured jitter (independence
//! assumed) overstates the entropy that the thermal-only reading can actually back —
//! and the conditioning ledger is seeded from the honest bound:
//!
//! ```
//! use ptrng_trng::conditioning::EntropyLedger;
//! use ptrng_trng::stochastic::EntropyModel;
//!
//! # fn main() -> ptrng_trng::Result<()> {
//! let model = EntropyModel::date14_experiment();
//! let naive = model.entropy_bound_naive(20_000);
//! let honest = model.entropy_bound_thermal(20_000);
//! assert!(naive > honest, "independence overclaims: {naive:.4} vs {honest:.4}");
//!
//! let ledger = EntropyLedger::source("ero (date14, div 20000)", honest.max(1e-6))?;
//! assert!(ledger.min_entropy_per_bit() <= honest.max(1e-6));
//! assert!(ledger.to_json().contains("min_entropy_per_bit"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditioning;
pub mod drbg;
pub mod entropy;
pub mod ero;
pub mod online;
pub mod postprocess;
pub mod sha256;
pub mod stochastic;

use thiserror::Error;

/// Errors produced by the TRNG models.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum TrngError {
    /// A parameter was outside its valid domain.
    #[error("invalid parameter {name}: {reason}")]
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// An oscillator-model routine failed.
    #[error("oscillator model error: {0}")]
    Osc(#[from] ptrng_osc::OscError),
    /// A statistical routine failed.
    #[error("statistics error: {0}")]
    Stats(#[from] ptrng_stats::StatsError),
    /// A statistical-test routine failed.
    #[error("test battery error: {0}")]
    Ais(#[from] ptrng_ais::AisError),
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TrngError>;

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(TrngError::InvalidParameter {
            name,
            reason: format!("must be positive and finite, got {value}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: TrngError = ptrng_osc::OscError::InvalidParameter {
            name: "x",
            reason: "bad".to_string(),
        }
        .into();
        assert!(e.to_string().contains("oscillator model error"));
        let e: TrngError = ptrng_stats::StatsError::SeriesTooShort { len: 0, needed: 1 }.into();
        assert!(e.to_string().contains("statistics error"));
        let e: TrngError = ptrng_ais::AisError::SequenceTooShort { len: 0, needed: 1 }.into();
        assert!(e.to_string().contains("test battery error"));
    }

    #[test]
    fn check_positive_rejects_non_positive() {
        assert!(check_positive("x", 1.0).is_ok());
        assert!(check_positive("x", 0.0).is_err());
        assert!(check_positive("x", f64::NAN).is_err());
    }
}
