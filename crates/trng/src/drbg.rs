//! SP 800-90A §10.1 Hash_DRBG over the in-tree FIPS 180-4 SHA-256.
//!
//! The physical source tops out orders of magnitude below serving demand, so the
//! engine decouples the two the way SP 800-90C sketches: a slow **full-entropy**
//! stream seeds a deterministic bit generator whose output rate is bounded only
//! by the hash.  This module is the mechanism half of that split — the
//! *instantiate / reseed / generate* state machine of SP 800-90A §10.1.1,
//! hand-rolled and std-only like the rest of the workspace.  The policy half
//! (how many ledger-accounted bits a seed must carry, when a reseed is due, and
//! what happens when the source cannot fund one) lives in the engine's
//! `ExpandedTap`, which owns a [`HashDrbg`] and feeds it conditioned output.
//!
//! Spec mapping (SP 800-90A, SHA-256 instantiation):
//!
//! * `seedlen` = 440 bits ([`SEEDLEN_BYTES`]), working state `V`, `C` and
//!   `reseed_counter` ([`HashDrbg`]);
//! * `Hash_df` (§10.3.1) derives seeds ([`HashDrbg::instantiate`],
//!   [`HashDrbg::reseed`]);
//! * `Hashgen` (§10.1.1.4) expands output one digest per 32 bytes — a 55-byte
//!   message pads to exactly one SHA-256 block, so the hot loop is a single
//!   [`crate::sha256::compress_block`] per 32 output bytes;
//! * per-request cap 2^19 bits ([`MAX_REQUEST_BYTES`]) and the reseed interval
//!   (≤ 2^48, [`MAX_RESEED_INTERVAL`]) are enforced, not advisory;
//! * uninstantiate zeroizes the working state ([`HashDrbg::uninstantiate`],
//!   also on drop).
//!
//! Known-answer coverage lives in `tests/drbg_vectors.rs` against DRBGVS-format
//! vector files under `tests/data/drbg/`.
//!
//! # Example
//!
//! ```
//! use ptrng_trng::drbg::HashDrbg;
//!
//! # fn main() -> Result<(), ptrng_trng::drbg::DrbgError> {
//! let entropy = [0x5a; 32]; // ≥ 256 bits of accounted entropy in deployment
//! let nonce = [0xa5; 16];
//! let mut drbg = HashDrbg::instantiate(&entropy, &nonce, b"example")?;
//! let mut out = [0u8; 64];
//! drbg.generate(&mut out, &[])?;
//! assert_ne!(out, [0u8; 64]);
//! drbg.uninstantiate();
//! # Ok(())
//! # }
//! ```

use thiserror::Error;

use crate::sha256::{compress_block, Sha256, BLOCK_BYTES, DIGEST_BYTES, INITIAL_STATE};

/// `seedlen` for the SHA-256 instantiation: 440 bits (SP 800-90A Table 2).
pub const SEEDLEN_BYTES: usize = 55;

/// Per-request output cap: 2^19 bits (SP 800-90A Table 2), in bytes.
pub const MAX_REQUEST_BYTES: usize = (1 << 19) / 8;

/// Largest admissible `reseed_interval`: 2^48 generate calls (SP 800-90A Table 2).
pub const MAX_RESEED_INTERVAL: u64 = 1 << 48;

/// Security strength of the SHA-256 instantiation, in bits.
pub const SECURITY_STRENGTH_BITS: usize = 256;

/// Minimum entropy-input length: the security strength (§8.6.7), in bytes.
pub const MIN_ENTROPY_INPUT_BYTES: usize = SECURITY_STRENGTH_BITS / 8;

/// Minimum instantiation-nonce length: half the security strength (§8.6.7), in bytes.
pub const MIN_NONCE_BYTES: usize = SECURITY_STRENGTH_BITS / 16;

/// Errors of the Hash_DRBG state machine.
///
/// `ReseedRequired` is the one callers must treat as control flow, not failure:
/// the generator refuses to run past its reseed interval and the owner must fund
/// a [`HashDrbg::reseed`] with fresh accounted entropy (or give up, which is the
/// engine's `EntropyDeficit` refusal path — never silent degradation).
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[non_exhaustive]
pub enum DrbgError {
    /// The reseed interval elapsed; `generate` refuses until a reseed lands.
    #[error("reseed required: reseed counter {counter} exceeds the interval {interval}")]
    ReseedRequired {
        /// Current reseed counter (generate calls since the last (re)seed, +1).
        counter: u64,
        /// Configured reseed interval.
        interval: u64,
    },
    /// One generate call asked for more than 2^19 bits.
    #[error(
        "request of {requested} bytes exceeds the 2^19-bit per-request cap \
         ({MAX_REQUEST_BYTES} bytes)"
    )]
    RequestTooLarge {
        /// Bytes asked for in the offending call.
        requested: usize,
    },
    /// A parameter was outside its valid domain.
    #[error("invalid parameter {name}: {reason}")]
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
}

/// SP 800-90A §10.1.1 Hash_DRBG working state (SHA-256, `seedlen` 440).
///
/// Construct with [`HashDrbg::instantiate`]; the state zeroizes on
/// [`HashDrbg::uninstantiate`] and on drop.  The type deliberately implements
/// neither `Clone` (two copies of one DRBG state would silently replay output)
/// nor a state-revealing `Debug`.
pub struct HashDrbg {
    v: [u8; SEEDLEN_BYTES],
    c: [u8; SEEDLEN_BYTES],
    reseed_counter: u64,
    reseed_interval: u64,
}

impl std::fmt::Debug for HashDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // V and C are key material — only the counters are printable.
        f.debug_struct("HashDrbg")
            .field("reseed_counter", &self.reseed_counter)
            .field("reseed_interval", &self.reseed_interval)
            .finish_non_exhaustive()
    }
}

impl HashDrbg {
    /// §10.1.1.2 `Instantiate`: derives `V` and `C` from
    /// `entropy_input || nonce || personalization` via `Hash_df`.
    ///
    /// `entropy_input` must be at least [`MIN_ENTROPY_INPUT_BYTES`] and the nonce
    /// at least [`MIN_NONCE_BYTES`]; the *entropy content* of the input is the
    /// caller's contract (the engine funds it from the ledger).
    pub fn instantiate(
        entropy_input: &[u8],
        nonce: &[u8],
        personalization: &[u8],
    ) -> Result<Self, DrbgError> {
        check_min_len("entropy_input", entropy_input, MIN_ENTROPY_INPUT_BYTES)?;
        check_min_len("nonce", nonce, MIN_NONCE_BYTES)?;
        let mut drbg = Self {
            v: [0; SEEDLEN_BYTES],
            c: [0; SEEDLEN_BYTES],
            reseed_counter: 1,
            reseed_interval: MAX_RESEED_INTERVAL,
        };
        hash_df(&[entropy_input, nonce, personalization], &mut drbg.v);
        hash_df(&[&[0x00], &drbg.v], &mut drbg.c);
        Ok(drbg)
    }

    /// Lowers the reseed interval below the spec maximum (builder-style).
    pub fn with_reseed_interval(mut self, interval: u64) -> Result<Self, DrbgError> {
        if interval == 0 || interval > MAX_RESEED_INTERVAL {
            return Err(DrbgError::InvalidParameter {
                name: "reseed_interval",
                reason: format!("must be in 1..=2^48, got {interval}"),
            });
        }
        self.reseed_interval = interval;
        Ok(self)
    }

    /// §10.1.1.3 `Reseed`: folds fresh entropy (and optional additional input)
    /// into the state and resets the reseed counter.
    pub fn reseed(&mut self, entropy_input: &[u8], additional: &[u8]) -> Result<(), DrbgError> {
        check_min_len("entropy_input", entropy_input, MIN_ENTROPY_INPUT_BYTES)?;
        let mut seed = [0u8; SEEDLEN_BYTES];
        hash_df(&[&[0x01], &self.v, entropy_input, additional], &mut seed);
        self.v = seed;
        hash_df(&[&[0x00], &self.v], &mut self.c);
        self.reseed_counter = 1;
        Ok(())
    }

    /// §10.1.1.4 `Generate`: fills `out` with pseudorandom bytes.
    ///
    /// Refuses with [`DrbgError::RequestTooLarge`] past the 2^19-bit cap and
    /// with [`DrbgError::ReseedRequired`] once the reseed interval elapses —
    /// on that error `out` is untouched and the call may be retried after
    /// [`HashDrbg::reseed`].
    pub fn generate(&mut self, out: &mut [u8], additional: &[u8]) -> Result<(), DrbgError> {
        if out.len() > MAX_REQUEST_BYTES {
            return Err(DrbgError::RequestTooLarge {
                requested: out.len(),
            });
        }
        if self.reseed_counter > self.reseed_interval {
            return Err(DrbgError::ReseedRequired {
                counter: self.reseed_counter,
                interval: self.reseed_interval,
            });
        }
        if !additional.is_empty() {
            // w = Hash(0x02 || V || additional_input); V = (V + w) mod 2^seedlen.
            let mut hasher = Sha256::new();
            hasher.update(&[0x02]);
            hasher.update(&self.v);
            hasher.update(additional);
            let w = hasher.finalize();
            add_into(&mut self.v, &w);
        }
        self.hashgen(out);
        // H = Hash(0x03 || V); V = (V + H + C + reseed_counter) mod 2^seedlen.
        let mut hasher = Sha256::new();
        hasher.update(&[0x03]);
        hasher.update(&self.v);
        let h = hasher.finalize();
        add_into(&mut self.v, &h);
        let c = self.c;
        add_into(&mut self.v, &c);
        add_into(&mut self.v, &self.reseed_counter.to_be_bytes());
        self.reseed_counter += 1;
        Ok(())
    }

    /// Generate calls since the last (re)seed, plus one (§10.1.1 state).
    pub fn reseed_counter(&self) -> u64 {
        self.reseed_counter
    }

    /// Configured reseed interval.
    pub fn reseed_interval(&self) -> u64 {
        self.reseed_interval
    }

    /// §10.1.1 `Uninstantiate`: consumes the generator and zeroizes `V`/`C`.
    ///
    /// Dropping has the same effect; this form makes the intent explicit at the
    /// end of a generator's service life.
    pub fn uninstantiate(self) {
        // Drop does the zeroization.
    }

    /// §10.1.1.4 `Hashgen`: out = leftmost bytes of Hash(data) || Hash(data+1) || …
    /// with data starting at `V`.
    ///
    /// `data` is always exactly `seedlen` = 55 bytes, which pads to a single
    /// SHA-256 block — so the padded block is built once and only the 55 message
    /// bytes are incremented between compressions.
    fn hashgen(&self, out: &mut [u8]) {
        let mut block = [0u8; BLOCK_BYTES];
        block[..SEEDLEN_BYTES].copy_from_slice(&self.v);
        block[SEEDLEN_BYTES] = 0x80;
        block[56..].copy_from_slice(&((SEEDLEN_BYTES as u64) * 8).to_be_bytes());
        let mut chunks = out.chunks_exact_mut(DIGEST_BYTES);
        for chunk in &mut chunks {
            let mut state = INITIAL_STATE;
            compress_block(&mut state, &block);
            for (bytes, word) in chunk.chunks_exact_mut(4).zip(state) {
                bytes.copy_from_slice(&word.to_be_bytes());
            }
            increment_data(&mut block);
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let mut state = INITIAL_STATE;
            compress_block(&mut state, &block);
            let mut digest = [0u8; DIGEST_BYTES];
            for (bytes, word) in digest.chunks_exact_mut(4).zip(state) {
                bytes.copy_from_slice(&word.to_be_bytes());
            }
            let take = tail.len();
            tail.copy_from_slice(&digest[..take]);
        }
    }
}

impl Drop for HashDrbg {
    fn drop(&mut self) {
        self.v.fill(0);
        self.c.fill(0);
        self.reseed_counter = 0;
        // Best-effort zeroization without unsafe: the opaque use keeps the
        // compiler from eliding the clearing stores above.
        std::hint::black_box(&mut self.v);
        std::hint::black_box(&mut self.c);
    }
}

/// §10.3.1 `Hash_df`: out = leftmost bytes of
/// Hash(1 || bits || input) || Hash(2 || bits || input) || … where `input` is the
/// concatenation of `chunks` and `bits` the 32-bit big-endian output bit count.
fn hash_df(chunks: &[&[u8]], out: &mut [u8]) {
    debug_assert!(out.len() <= 255 * DIGEST_BYTES);
    let bits = (out.len() as u32) * 8;
    let mut hasher = Sha256::new();
    let mut counter: u8 = 1;
    let mut written = 0;
    while written < out.len() {
        hasher.update(&[counter]);
        hasher.update(&bits.to_be_bytes());
        for chunk in chunks {
            hasher.update(chunk);
        }
        let digest = hasher.finalize_reset();
        let take = (out.len() - written).min(DIGEST_BYTES);
        out[written..written + take].copy_from_slice(&digest[..take]);
        written += take;
        counter = counter.wrapping_add(1);
    }
}

/// Big-endian `acc = (acc + addend) mod 2^(8·SEEDLEN_BYTES)`; `addend` is
/// right-aligned (at most `SEEDLEN_BYTES` long).
fn add_into(acc: &mut [u8; SEEDLEN_BYTES], addend: &[u8]) {
    debug_assert!(addend.len() <= SEEDLEN_BYTES);
    let mut carry = 0u16;
    let mut addend_bytes = addend.iter().rev();
    for byte in acc.iter_mut().rev() {
        let sum = *byte as u16 + addend_bytes.next().copied().unwrap_or(0) as u16 + carry;
        *byte = sum as u8;
        carry = sum >> 8;
    }
}

/// Big-endian `data = (data + 1) mod 2^seedlen` over the 55 message bytes of the
/// pre-padded Hashgen block.
fn increment_data(block: &mut [u8; BLOCK_BYTES]) {
    for byte in block[..SEEDLEN_BYTES].iter_mut().rev() {
        let (sum, overflowed) = byte.overflowing_add(1);
        *byte = sum;
        if !overflowed {
            return;
        }
    }
}

fn check_min_len(name: &'static str, value: &[u8], min: usize) -> Result<(), DrbgError> {
    if value.len() < min {
        return Err(DrbgError::InvalidParameter {
            name,
            reason: format!("must be at least {min} bytes, got {}", value.len()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drbg() -> HashDrbg {
        HashDrbg::instantiate(&[0x11; 32], &[0x22; 16], b"unit").expect("valid instantiation")
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        let mut a = drbg();
        let mut b = drbg();
        let mut out_a = [0u8; 80];
        let mut out_b = [0u8; 80];
        a.generate(&mut out_a, &[]).expect("generate");
        b.generate(&mut out_b, &[]).expect("generate");
        assert_eq!(out_a, out_b);
        // The second call continues the stream rather than repeating it.
        a.generate(&mut out_b, &[]).expect("generate");
        assert_ne!(out_a, out_b);
    }

    #[test]
    fn instantiation_inputs_all_matter() {
        let base = drbg();
        let nonce = HashDrbg::instantiate(&[0x11; 32], &[0x23; 16], b"unit").expect("valid");
        let person = HashDrbg::instantiate(&[0x11; 32], &[0x22; 16], b"other").expect("valid");
        let mut outs = Vec::new();
        for mut d in [base, nonce, person] {
            let mut out = [0u8; 32];
            d.generate(&mut out, &[]).expect("generate");
            outs.push(out);
        }
        assert_ne!(outs[0], outs[1]);
        assert_ne!(outs[0], outs[2]);
        assert_ne!(outs[1], outs[2]);
    }

    #[test]
    fn additional_input_perturbs_the_stream() {
        let mut plain = drbg();
        let mut extra = drbg();
        let mut out_plain = [0u8; 32];
        let mut out_extra = [0u8; 32];
        plain.generate(&mut out_plain, &[]).expect("generate");
        extra
            .generate(&mut out_extra, b"additional")
            .expect("generate");
        assert_ne!(out_plain, out_extra);
    }

    #[test]
    fn reseed_resets_the_counter_and_forks_the_stream() {
        let mut reseeded = drbg();
        let mut straight = drbg();
        let mut sink = [0u8; 32];
        reseeded.generate(&mut sink, &[]).expect("generate");
        straight.generate(&mut sink, &[]).expect("generate");
        assert_eq!(reseeded.reseed_counter(), 2);
        reseeded.reseed(&[0x33; 32], &[]).expect("reseed");
        assert_eq!(reseeded.reseed_counter(), 1);
        let mut out_reseeded = [0u8; 32];
        let mut out_straight = [0u8; 32];
        reseeded.generate(&mut out_reseeded, &[]).expect("generate");
        straight.generate(&mut out_straight, &[]).expect("generate");
        assert_ne!(out_reseeded, out_straight);
    }

    #[test]
    fn reseed_interval_is_enforced() {
        let mut d = drbg().with_reseed_interval(2).expect("valid interval");
        let mut out = [0u8; 16];
        d.generate(&mut out, &[]).expect("first");
        d.generate(&mut out, &[]).expect("second");
        let err = d.generate(&mut out, &[]).expect_err("third must refuse");
        assert_eq!(
            err,
            DrbgError::ReseedRequired {
                counter: 3,
                interval: 2
            }
        );
        d.reseed(&[0x44; 32], &[]).expect("reseed");
        d.generate(&mut out, &[])
            .expect("serves again after reseed");
    }

    #[test]
    fn request_cap_is_enforced() {
        let mut d = drbg();
        let mut exact = vec![0u8; MAX_REQUEST_BYTES];
        d.generate(&mut exact, &[]).expect("cap itself is fine");
        let mut over = vec![0u8; MAX_REQUEST_BYTES + 1];
        assert_eq!(
            d.generate(&mut over, &[]).expect_err("over the cap"),
            DrbgError::RequestTooLarge {
                requested: MAX_REQUEST_BYTES + 1
            }
        );
    }

    #[test]
    fn short_inputs_are_rejected() {
        assert!(matches!(
            HashDrbg::instantiate(&[0; 31], &[0; 16], &[]),
            Err(DrbgError::InvalidParameter {
                name: "entropy_input",
                ..
            })
        ));
        assert!(matches!(
            HashDrbg::instantiate(&[0; 32], &[0; 15], &[]),
            Err(DrbgError::InvalidParameter { name: "nonce", .. })
        ));
        let mut d = drbg();
        assert!(d.reseed(&[0; 31], &[]).is_err());
        assert!(drbg().with_reseed_interval(0).is_err());
        assert!(drbg()
            .with_reseed_interval(MAX_RESEED_INTERVAL + 1)
            .is_err());
    }

    #[test]
    fn chunked_draws_match_one_shot() {
        // Hashgen's tail handling: any split of one generate request is a
        // different call pattern, but within one call the bytes must be the
        // leftmost prefix of the same digest stream.
        let mut whole = drbg();
        let mut out = [0u8; 100];
        whole.generate(&mut out, &[]).expect("generate");
        let mut prefix = drbg();
        let mut short = [0u8; 33];
        prefix.generate(&mut short, &[]).expect("generate");
        assert_eq!(short, out[..33]);
    }

    #[test]
    fn debug_does_not_leak_state() {
        let d = drbg();
        let printed = format!("{d:?}");
        assert!(printed.contains("reseed_counter"));
        assert!(!printed.contains("v:"), "V must not be printable");
    }

    #[test]
    fn add_into_carries_across_the_whole_width() {
        let mut acc = [0xffu8; SEEDLEN_BYTES];
        add_into(&mut acc, &[0x01]);
        assert_eq!(acc, [0u8; SEEDLEN_BYTES], "wraps mod 2^440");
        let mut acc = [0u8; SEEDLEN_BYTES];
        add_into(&mut acc, &[0xff; 32]);
        assert_eq!(acc[SEEDLEN_BYTES - 32..], [0xff; 32]);
        assert_eq!(acc[..SEEDLEN_BYTES - 32], [0; 23]);
    }
}
