//! Embedded online tests for the entropy source.
//!
//! The paper's conclusion proposes to embed the `σ²_N` measurement in the logic device and
//! use it as a fast, generator-specific online test (as required by AIS 31 for the higher
//! assurance classes): by fitting `σ²_N = a·N + b·N²` on a handful of depths, the device
//! can estimate the **thermal** jitter `σ = sqrt(a/2·f0³·…)` on line and raise an alarm
//! when it drops — e.g. under a frequency-injection or electromagnetic attack that locks
//! the two rings together.
//!
//! [`OnlineThermalTest`] implements that test on top of counter read-outs, and
//! [`total_failure_check`] wraps the SP 800-90B repetition-count test as the
//! complementary catastrophic-failure detector.

use serde::{Deserialize, Serialize};

use ptrng_ais::sp80090b::repetition_count_test;
use ptrng_ais::TestResult;
use ptrng_stats::descriptive::sample_variance;
use ptrng_stats::fit::sigma_n_fit;

use crate::{check_positive, Result, TrngError};

/// Configuration of the embedded thermal-jitter online test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTestConfig {
    /// Nominal frequency of the counted oscillator, in hertz.
    pub frequency: f64,
    /// Thermal period jitter measured at commissioning time, in seconds.
    pub reference_thermal_sigma: f64,
    /// Alarm threshold: the test fails when the estimated thermal jitter falls below
    /// `min_ratio × reference_thermal_sigma`.
    pub min_ratio: f64,
}

impl OnlineTestConfig {
    /// Creates a configuration, validating every field.
    ///
    /// # Errors
    ///
    /// Returns an error when the frequency or reference jitter is not positive, or the
    /// ratio is not in `(0, 1]`.
    pub fn new(frequency: f64, reference_thermal_sigma: f64, min_ratio: f64) -> Result<Self> {
        check_positive("frequency", frequency)?;
        check_positive("reference_thermal_sigma", reference_thermal_sigma)?;
        if !(min_ratio > 0.0 && min_ratio <= 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "min_ratio",
                reason: format!("must be in (0, 1], got {min_ratio}"),
            });
        }
        Ok(Self {
            frequency,
            reference_thermal_sigma,
            min_ratio,
        })
    }
}

/// Outcome of one evaluation of the online thermal test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTestOutcome {
    /// Estimated thermal phase-noise coefficient `b_th` in Hz.
    pub estimated_b_thermal: f64,
    /// Estimated thermal period jitter `σ = sqrt(b_th/f0³)` in seconds.
    pub estimated_thermal_sigma: f64,
    /// Ratio of the estimate to the commissioning reference.
    pub ratio_to_reference: f64,
    /// `true` when the estimate dropped below the alarm threshold.
    pub alarm: bool,
}

/// The embedded thermal-jitter online test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineThermalTest {
    config: OnlineTestConfig,
}

impl OnlineThermalTest {
    /// Creates the test.
    pub fn new(config: OnlineTestConfig) -> Self {
        Self { config }
    }

    /// The configuration of the test.
    pub fn config(&self) -> &OnlineTestConfig {
        &self.config
    }

    /// Evaluates the test from `(N, σ²_N)` points (e.g. produced by an on-chip counter
    /// sweep).
    ///
    /// # Errors
    ///
    /// Returns an error when fewer than two points are provided or the fit fails.
    pub fn evaluate_points(&self, depths: &[f64], sigma2_n: &[f64]) -> Result<OnlineTestOutcome> {
        let fit = sigma_n_fit(depths, sigma2_n, None)?;
        let f0 = self.config.frequency;
        let b_thermal = (fit.linear * f0.powi(3) / 2.0).max(0.0);
        let sigma = (b_thermal / f0.powi(3)).sqrt();
        let ratio = sigma / self.config.reference_thermal_sigma;
        Ok(OnlineTestOutcome {
            estimated_b_thermal: b_thermal,
            estimated_thermal_sigma: sigma,
            ratio_to_reference: ratio,
            alarm: ratio < self.config.min_ratio,
        })
    }

    /// Evaluates the test directly from raw counter read-outs: for every depth, the
    /// consecutive counter values `Q_i^N` are differenced and scaled by `1/f0` (Eq. 12)
    /// and their sample variance becomes the `σ²_N` point.
    ///
    /// # Errors
    ///
    /// Returns an error when fewer than two depths are usable (each needs at least three
    /// counter values).
    pub fn evaluate_counts(
        &self,
        counts_per_depth: &[(usize, Vec<u64>)],
    ) -> Result<OnlineTestOutcome> {
        let f0 = self.config.frequency;
        let mut depths = Vec::new();
        let mut variances = Vec::new();
        for (n, counts) in counts_per_depth {
            if *n == 0 || counts.len() < 3 {
                continue;
            }
            let sn: Vec<f64> = counts
                .windows(2)
                .map(|w| (w[1] as f64 - w[0] as f64) / f0)
                .collect();
            depths.push(*n as f64);
            variances.push(sample_variance(&sn)?);
        }
        if depths.len() < 2 {
            return Err(TrngError::InvalidParameter {
                name: "counts_per_depth",
                reason: "at least two usable depths are required".to_string(),
            });
        }
        self.evaluate_points(&depths, &variances)
    }
}

/// Total-failure check: wraps the SP 800-90B repetition-count test, which fires within a
/// few samples when the digitized output gets stuck (e.g. when the sampled oscillator
/// stops).
///
/// # Errors
///
/// Returns an error for an empty sequence or non-bit samples.
pub fn total_failure_check(bits: &[u8], min_entropy_per_bit: f64) -> Result<TestResult> {
    Ok(repetition_count_test(bits, min_entropy_per_bit)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrng_osc::model::AccumulationModel;
    use ptrng_osc::phase::PhaseNoiseModel;

    fn healthy_points(scale: f64) -> (Vec<f64>, Vec<f64>) {
        let acc = AccumulationModel::new(PhaseNoiseModel::date14_experiment());
        let depths: Vec<f64> = vec![1000.0, 2000.0, 5000.0, 10_000.0, 20_000.0];
        let sigma2: Vec<f64> = depths
            .iter()
            .map(|&n| acc.sigma2_n(n as usize) * scale)
            .collect();
        (depths, sigma2)
    }

    fn paper_test() -> OnlineThermalTest {
        let reference = PhaseNoiseModel::date14_experiment().thermal_period_jitter();
        OnlineThermalTest::new(OnlineTestConfig::new(103.0e6, reference, 0.5).unwrap())
    }

    #[test]
    fn healthy_source_passes_and_recovers_the_reference_sigma() {
        let test = paper_test();
        let (depths, sigma2) = healthy_points(1.0);
        let outcome = test.evaluate_points(&depths, &sigma2).unwrap();
        assert!(!outcome.alarm);
        assert!((outcome.ratio_to_reference - 1.0).abs() < 0.02);
        assert!((outcome.estimated_thermal_sigma - 15.89e-12).abs() < 0.5e-12);
        assert!((outcome.estimated_b_thermal - 276.04).abs() / 276.04 < 0.05);
    }

    #[test]
    fn attacked_source_raises_the_alarm() {
        // An attack that locks the rings suppresses the thermal part of the relative
        // jitter: scale the whole curve down by 100.
        let test = paper_test();
        let (depths, sigma2) = healthy_points(0.01);
        let outcome = test.evaluate_points(&depths, &sigma2).unwrap();
        assert!(outcome.alarm);
        assert!(outcome.ratio_to_reference < 0.2);
    }

    #[test]
    fn flicker_increase_alone_does_not_trigger_the_thermal_alarm() {
        // The online test isolates the thermal term: inflating only the quadratic part
        // must not silence or trigger the alarm spuriously.
        let test = paper_test();
        let acc = AccumulationModel::new(PhaseNoiseModel::date14_experiment());
        let depths: Vec<f64> = vec![1000.0, 2000.0, 5000.0, 10_000.0];
        let sigma2: Vec<f64> = depths
            .iter()
            .map(|&n| acc.thermal_component(n as usize) + 3.0 * acc.flicker_component(n as usize))
            .collect();
        let outcome = test.evaluate_points(&depths, &sigma2).unwrap();
        assert!(!outcome.alarm, "ratio {}", outcome.ratio_to_reference);
        assert!((outcome.ratio_to_reference - 1.0).abs() < 0.05);
    }

    #[test]
    fn counter_read_outs_feed_the_same_fit() {
        // Thermal-only source with an exaggerated jitter so the synthetic counter
        // differences are many counts wide and integer rounding is negligible.
        let f0 = 1.0e8;
        let b_th = 1.0e6;
        let model = PhaseNoiseModel::thermal_only(b_th, f0).unwrap();
        let reference = model.thermal_period_jitter();
        let test = OnlineThermalTest::new(OnlineTestConfig::new(f0, reference, 0.5).unwrap());
        let acc = AccumulationModel::new(model);
        let mut counts_per_depth = Vec::new();
        for &n in &[10_000usize, 20_000, 40_000] {
            // Counter differences alternating ±σ_N·f0 reproduce variance ≈ σ²_N·f0²
            // (sample variance of an alternating ±x series is ≈ x²).
            let sigma_counts = (acc.sigma2_n(n)).sqrt() * f0;
            let mut counts = vec![1_000_000u64];
            for i in 0..40 {
                let delta = if i % 2 == 0 {
                    sigma_counts
                } else {
                    -sigma_counts
                };
                let prev = *counts.last().expect("non-empty") as f64;
                counts.push((prev + delta).round() as u64);
            }
            counts_per_depth.push((n, counts));
        }
        let outcome = test.evaluate_counts(&counts_per_depth).unwrap();
        assert!(!outcome.alarm, "ratio {}", outcome.ratio_to_reference);
        assert!(
            outcome.ratio_to_reference > 0.8 && outcome.ratio_to_reference < 1.25,
            "ratio {}",
            outcome.ratio_to_reference
        );
    }

    #[test]
    fn evaluate_counts_requires_two_usable_depths() {
        let test = paper_test();
        assert!(test.evaluate_counts(&[(100, vec![1, 2, 3])]).is_err());
        assert!(test
            .evaluate_counts(&[(100, vec![1, 2]), (200, vec![1, 2, 3])])
            .is_err());
        assert!(test.evaluate_counts(&[(0, vec![1, 2, 3, 4])]).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(OnlineTestConfig::new(0.0, 1.0e-12, 0.5).is_err());
        assert!(OnlineTestConfig::new(1.0e8, 0.0, 0.5).is_err());
        assert!(OnlineTestConfig::new(1.0e8, 1.0e-12, 0.0).is_err());
        assert!(OnlineTestConfig::new(1.0e8, 1.0e-12, 1.5).is_err());
    }

    #[test]
    fn total_failure_check_detects_a_stuck_output() {
        let mut bits = vec![0u8, 1, 1, 0, 1, 0, 0, 1];
        bits.extend(std::iter::repeat_n(1, 64));
        let result = total_failure_check(&bits, 0.9).unwrap();
        assert!(!result.passed);
        let ok = total_failure_check(&[0, 1, 0, 1, 1, 0, 1, 0, 0, 1], 0.9).unwrap();
        assert!(ok.passed);
    }
}
