//! Stochastic entropy-per-bit models for the eRO-TRNG.
//!
//! The classical models (Baudet et al. 2011 and the works the paper's Section II cites)
//! assume the jitter accumulated between two samplings is Gaussian with **independent**
//! per-period increments and derive a lower bound on the Shannon entropy per raw bit as
//! a function of the quality factor `Q` — the accumulated jitter variance expressed in
//! squared periods of the sampled oscillator:
//!
//! ```text
//! H ≥ 1 − (4 / (π²·ln 2)) · exp(−4·π²·Q)
//! ```
//!
//! The paper shows that the *measured* accumulated variance contains a flicker-noise
//! contribution whose realizations are mutually dependent.  Plugging the total measured
//! variance into the bound therefore **over-estimates** the entropy; only the thermal
//! part may be credited.  [`EntropyModel`] exposes both readings so the over-estimation
//! can be quantified (the paper's security argument).

use serde::{Deserialize, Serialize};

use ptrng_osc::model::AccumulationModel;
use ptrng_osc::phase::PhaseNoiseModel;

use crate::{check_positive, Result, TrngError};

/// Entropy-per-bit model of an eRO-TRNG whose relative jitter follows a
/// [`PhaseNoiseModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntropyModel {
    relative: PhaseNoiseModel,
}

impl EntropyModel {
    /// Creates the model from the phase noise of the **relative** jitter between the
    /// sampled and the sampling oscillator.
    pub fn new(relative: PhaseNoiseModel) -> Self {
        Self { relative }
    }

    /// The model of the paper's experimental oscillator pair.
    pub fn date14_experiment() -> Self {
        Self::new(PhaseNoiseModel::date14_experiment())
    }

    /// The relative phase-noise model.
    pub fn relative(&self) -> &PhaseNoiseModel {
        &self.relative
    }

    /// Accumulated relative-jitter variance over `n` periods as a *naive* experimenter
    /// would infer it from a `σ²_N` measurement under the independence assumption
    /// (`σ²_N/2`, including the flicker contribution).
    pub fn accumulated_variance_naive(&self, n: usize) -> f64 {
        AccumulationModel::new(self.relative).sigma2_n(n) / 2.0
    }

    /// Accumulated relative-jitter variance over `n` periods crediting only the thermal
    /// (genuinely independent) contribution: `b_th·n/f0³`.
    pub fn accumulated_variance_thermal(&self, n: usize) -> f64 {
        AccumulationModel::new(self.relative).thermal_component(n) / 2.0
    }

    /// Quality factor `Q = V·f0²` for an accumulated variance `V` (dimensionless).
    pub fn quality_factor(&self, accumulated_variance: f64) -> f64 {
        accumulated_variance * self.relative.frequency() * self.relative.frequency()
    }

    /// Baudet-style lower bound on the Shannon entropy per raw bit for a quality factor
    /// `Q`, clamped to `[0, 1]`.
    pub fn entropy_lower_bound(quality_factor: f64) -> f64 {
        let h = 1.0
            - 4.0 / (std::f64::consts::PI.powi(2) * std::f64::consts::LN_2)
                * (-4.0 * std::f64::consts::PI.powi(2) * quality_factor).exp();
        h.clamp(0.0, 1.0)
    }

    /// Entropy per bit claimed by the **naive** model (total measured variance assumed to
    /// come from independent realizations) at accumulation depth `n`.
    pub fn entropy_bound_naive(&self, n: usize) -> f64 {
        Self::entropy_lower_bound(self.quality_factor(self.accumulated_variance_naive(n)))
    }

    /// Entropy per bit guaranteed by the **flicker-aware** model (only the thermal
    /// contribution credited) at accumulation depth `n`.
    pub fn entropy_bound_thermal(&self, n: usize) -> f64 {
        Self::entropy_lower_bound(self.quality_factor(self.accumulated_variance_thermal(n)))
    }

    /// Amount by which the naive model over-states the entropy at depth `n`
    /// (always ≥ 0; this is the security margin the paper warns about).
    pub fn entropy_overestimation(&self, n: usize) -> f64 {
        (self.entropy_bound_naive(n) - self.entropy_bound_thermal(n)).max(0.0)
    }

    /// Smallest accumulation depth `n` for which the flicker-aware (thermal-only) bound
    /// reaches `target` bits of entropy per raw bit.
    ///
    /// # Errors
    ///
    /// Returns an error when `target` is not in `(0, 1)` or the model has no thermal
    /// component at all.
    pub fn minimum_depth_for_entropy(&self, target: f64) -> Result<u64> {
        if !(target > 0.0 && target < 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "target",
                reason: format!("the entropy target must be in (0, 1), got {target}"),
            });
        }
        let b_th = check_positive("b_thermal", self.relative.b_thermal()).map_err(|_| {
            TrngError::InvalidParameter {
                name: "relative",
                reason: "the model has no thermal component".to_string(),
            }
        })?;
        // Invert H = 1 - c·exp(-4π²Q):  Q = ln(c/(1-H)) / (4π²)
        let c = 4.0 / (std::f64::consts::PI.powi(2) * std::f64::consts::LN_2);
        let q = (c / (1.0 - target)).ln() / (4.0 * std::f64::consts::PI.powi(2));
        // Q = V_th·f0² = b_th·n/f0  ⇒  n = Q·f0/b_th
        let n = q * self.relative.frequency() / b_th;
        Ok(n.ceil().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_bound_shape() {
        assert!(EntropyModel::entropy_lower_bound(0.0) < 0.45);
        assert!(EntropyModel::entropy_lower_bound(0.05) > 0.15);
        assert!(EntropyModel::entropy_lower_bound(0.2) > 0.99);
        assert!(EntropyModel::entropy_lower_bound(1.0) > 0.999_999);
        // Monotone in Q.
        let mut prev = 0.0;
        for i in 0..100 {
            let h = EntropyModel::entropy_lower_bound(i as f64 * 0.01);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn naive_bound_is_never_below_the_thermal_bound() {
        let model = EntropyModel::date14_experiment();
        for n in [10usize, 100, 1000, 5354, 50_000, 500_000] {
            let naive = model.entropy_bound_naive(n);
            let thermal = model.entropy_bound_thermal(n);
            assert!(naive + 1e-12 >= thermal, "n = {n}");
            assert!(model.entropy_overestimation(n) >= 0.0);
        }
    }

    #[test]
    fn overestimation_grows_with_depth_in_the_transition_region() {
        // Deep in the flicker-dominated regime the naive model credits far more variance
        // than the thermal-only model; the entropy gap is the paper's warning.
        let model = EntropyModel::date14_experiment();
        let shallow = model.entropy_overestimation(2_000);
        let deep = model.entropy_overestimation(20_000);
        assert!(deep > shallow, "shallow {shallow}, deep {deep}");
        assert!(deep > 0.05, "transition-regime overestimation {deep}");
    }

    #[test]
    fn both_bounds_converge_to_one_for_very_long_accumulation() {
        let model = EntropyModel::date14_experiment();
        assert!(model.entropy_bound_thermal(5_000_000) > 0.999);
        assert!(model.entropy_bound_naive(5_000_000) > 0.999);
    }

    #[test]
    fn quality_factor_matches_the_paper_quantities() {
        let model = EntropyModel::date14_experiment();
        // At N periods, thermal accumulated variance is b_th·N/f0³; normalized by the
        // period it equals (σ/T0)²·N with σ/T0 ≈ 1.6e-3.
        let n = 10_000;
        let q = model.quality_factor(model.accumulated_variance_thermal(n));
        let expected = (1.6e-3f64).powi(2) * n as f64;
        assert!(
            (q - expected).abs() / expected < 0.05,
            "q {q} vs {expected}"
        );
    }

    #[test]
    fn minimum_depth_inverts_the_thermal_bound() {
        let model = EntropyModel::date14_experiment();
        let n = model.minimum_depth_for_entropy(0.997).unwrap();
        let achieved = model.entropy_bound_thermal(n as usize);
        assert!(achieved >= 0.997, "achieved {achieved} at n = {n}");
        // One step below the threshold must not reach the target (up to rounding).
        if n > 2 {
            let below = model.entropy_bound_thermal((n / 2) as usize);
            assert!(below < 0.997);
        }
    }

    #[test]
    fn minimum_depth_validation() {
        let model = EntropyModel::date14_experiment();
        assert!(model.minimum_depth_for_entropy(0.0).is_err());
        assert!(model.minimum_depth_for_entropy(1.0).is_err());
        let no_thermal = EntropyModel::new(PhaseNoiseModel::new(0.0, 1.0e6, 1.0e8).unwrap());
        assert!(no_thermal.minimum_depth_for_entropy(0.5).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn bounds_are_probabilities_and_ordered(
                b_th in 1.0f64..1e4,
                b_fl in 0.0f64..1e7,
                n in 1usize..100_000,
            ) {
                let model = EntropyModel::new(PhaseNoiseModel::new(b_th, b_fl, 1.0e8).unwrap());
                let naive = model.entropy_bound_naive(n);
                let thermal = model.entropy_bound_thermal(n);
                prop_assert!((0.0..=1.0).contains(&naive));
                prop_assert!((0.0..=1.0).contains(&thermal));
                prop_assert!(naive + 1e-12 >= thermal);
            }
        }
    }
}
