//! Algebraic post-processing of the raw binary sequence.
//!
//! AIS 31 distinguishes arithmetic/algebraic post-processing (entropy compaction, e.g.
//! XOR decimation or the von Neumann corrector) from cryptographic post-processing.
//! Only the former is modelled here; it is what the paper's Fig. 1 block diagram calls
//! the post-processing stage.

use ptrng_ais::bits::ensure_bits;

use crate::{Result, TrngError};

/// XOR decimation: each output bit is the XOR (parity) of `factor` consecutive raw bits.
///
/// Entropy per output bit increases monotonically with `factor` at the cost of an
/// exactly proportional throughput loss.  A trailing partial block is discarded.
///
/// # Errors
///
/// Returns an error when `factor == 0` or the input contains non-bit values.
pub fn xor_decimate(bits: &[u8], factor: usize) -> Result<Vec<u8>> {
    ensure_bits(bits)?;
    if factor == 0 {
        return Err(TrngError::InvalidParameter {
            name: "factor",
            reason: "the decimation factor must be at least 1".to_string(),
        });
    }
    Ok(bits
        .chunks_exact(factor)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| acc ^ b))
        .collect())
}

/// Von Neumann corrector: consumes non-overlapping bit pairs, emits `0` for `01`, `1`
/// for `10`, and drops `00`/`11`.
///
/// The output of an independent-but-biased source is exactly unbiased; the price is a
/// data-dependent throughput of at most 25 %.
///
/// # Errors
///
/// Returns an error when the input contains non-bit values.
pub fn von_neumann(bits: &[u8]) -> Result<Vec<u8>> {
    ensure_bits(bits)?;
    Ok(bits
        .chunks_exact(2)
        .filter_map(|pair| match (pair[0], pair[1]) {
            (0, 1) => Some(0),
            (1, 0) => Some(1),
            _ => None,
        })
        .collect())
}

/// Allocation-free variant of [`xor_decimate`]: appends into a caller-provided buffer
/// (cleared first), so a generation hot path can reuse one scratch vector per batch.
///
/// # Errors
///
/// Same conditions as [`xor_decimate`].
pub fn xor_decimate_into(bits: &[u8], factor: usize, out: &mut Vec<u8>) -> Result<()> {
    ensure_bits(bits)?;
    if factor == 0 {
        return Err(TrngError::InvalidParameter {
            name: "factor",
            reason: "the decimation factor must be at least 1".to_string(),
        });
    }
    out.clear();
    out.extend(
        bits.chunks_exact(factor)
            .map(|chunk| chunk.iter().fold(0u8, |acc, &b| acc ^ b)),
    );
    Ok(())
}

/// Allocation-free variant of [`von_neumann`]: appends into a caller-provided buffer
/// (cleared first).
///
/// # Errors
///
/// Same conditions as [`von_neumann`].
pub fn von_neumann_into(bits: &[u8], out: &mut Vec<u8>) -> Result<()> {
    ensure_bits(bits)?;
    out.clear();
    out.extend(
        bits.chunks_exact(2)
            .filter_map(|pair| match (pair[0], pair[1]) {
                (0, 1) => Some(0u8),
                (1, 0) => Some(1u8),
                _ => None,
            }),
    );
    Ok(())
}

/// Parity of non-overlapping blocks of `block` bits (a generalized XOR decimation kept
/// for API symmetry with hardware descriptions that express the corrector as a parity
/// filter).
///
/// # Errors
///
/// Returns an error when `block == 0` or the input contains non-bit values.
pub fn block_parity(bits: &[u8], block: usize) -> Result<Vec<u8>> {
    xor_decimate(bits, block)
}

/// Theoretical bias of the XOR of `factor` independent bits that each have bias
/// `epsilon` (piling-up lemma): `2^{factor-1}·epsilon^{factor}`.
///
/// # Errors
///
/// Returns an error when `factor == 0` or `|epsilon| > 0.5`.
pub fn xor_output_bias(epsilon: f64, factor: usize) -> Result<f64> {
    if factor == 0 {
        return Err(TrngError::InvalidParameter {
            name: "factor",
            reason: "the decimation factor must be at least 1".to_string(),
        });
    }
    if epsilon.is_nan() || epsilon.abs() > 0.5 {
        return Err(TrngError::InvalidParameter {
            name: "epsilon",
            reason: format!("a bit bias cannot exceed 0.5 in magnitude, got {epsilon}"),
        });
    }
    Ok(2.0f64.powi(factor as i32 - 1) * epsilon.powi(factor as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn xor_decimation_parity() {
        let out = xor_decimate(&[1, 0, 1, 1, 1, 1, 0, 0, 1], 3).unwrap();
        assert_eq!(out, vec![0, 1, 1]);
        assert_eq!(xor_decimate(&[1, 0, 1], 1).unwrap(), vec![1, 0, 1]);
    }

    #[test]
    fn xor_decimation_reduces_bias() {
        let mut rng = StdRng::seed_from_u64(41);
        let biased: Vec<u8> = (0..200_000).map(|_| u8::from(rng.gen_bool(0.6))).collect();
        let out = xor_decimate(&biased, 4).unwrap();
        let p_in = biased.iter().map(|&b| b as f64).sum::<f64>() / biased.len() as f64;
        let p_out = out.iter().map(|&b| b as f64).sum::<f64>() / out.len() as f64;
        assert!((p_in - 0.6).abs() < 0.01);
        // Piling-up: output bias ≈ 2³·0.1⁴ = 8e-4.
        assert!((p_out - 0.5).abs() < 0.01, "p_out {p_out}");
        let predicted = xor_output_bias(0.1, 4).unwrap();
        assert!((predicted - 8.0e-4).abs() < 1e-12);
    }

    #[test]
    fn into_variants_match_the_allocating_forms() {
        let bits = [1u8, 0, 1, 1, 1, 1, 0, 0, 1, 0];
        let mut scratch = vec![9u8; 3];
        xor_decimate_into(&bits, 3, &mut scratch).unwrap();
        assert_eq!(scratch, xor_decimate(&bits, 3).unwrap());
        von_neumann_into(&bits, &mut scratch).unwrap();
        assert_eq!(scratch, von_neumann(&bits).unwrap());
        assert!(xor_decimate_into(&bits, 0, &mut scratch).is_err());
        assert!(von_neumann_into(&[2], &mut scratch).is_err());
    }

    #[test]
    fn von_neumann_removes_bias_entirely() {
        let mut rng = StdRng::seed_from_u64(42);
        let biased: Vec<u8> = (0..400_000).map(|_| u8::from(rng.gen_bool(0.7))).collect();
        let out = von_neumann(&biased).unwrap();
        // Throughput: 2·p·(1-p) = 0.42 pairs kept → about 21 % of the input bit count.
        assert!(
            out.len() > 70_000 && out.len() < 95_000,
            "len {}",
            out.len()
        );
        let p_out = out.iter().map(|&b| b as f64).sum::<f64>() / out.len() as f64;
        assert!((p_out - 0.5).abs() < 0.01, "p_out {p_out}");
    }

    #[test]
    fn von_neumann_mapping_is_exact() {
        assert_eq!(
            von_neumann(&[0, 1, 1, 0, 0, 0, 1, 1, 1, 0]).unwrap(),
            vec![0, 1, 1]
        );
        assert_eq!(von_neumann(&[0, 0, 1, 1]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn block_parity_is_xor_decimation() {
        let bits = [1u8, 1, 0, 0, 1, 0];
        assert_eq!(
            block_parity(&bits, 2).unwrap(),
            xor_decimate(&bits, 2).unwrap()
        );
    }

    #[test]
    fn error_paths() {
        assert!(xor_decimate(&[0, 1], 0).is_err());
        assert!(xor_decimate(&[0, 2], 2).is_err());
        assert!(von_neumann(&[0, 3]).is_err());
        assert!(xor_output_bias(0.6, 2).is_err());
        assert!(xor_output_bias(0.1, 0).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The `_into` variants equal the allocating forms for every input —
            /// including empty inputs, non-byte-aligned lengths and factor 1 — and a
            /// dirty scratch buffer from a previous call never leaks into the result.
            #[test]
            fn xor_decimate_into_matches_for_all_inputs(
                bits in proptest::collection::vec(0u8..=1, 0..512),
                factor in 1usize..9,
                garbage in proptest::collection::vec(0u8..=255, 0..32),
            ) {
                let mut scratch = garbage.clone();
                xor_decimate_into(&bits, factor, &mut scratch).unwrap();
                prop_assert_eq!(&scratch, &xor_decimate(&bits, factor).unwrap());
                prop_assert_eq!(scratch.len(), bits.len() / factor);
                if factor == 1 {
                    prop_assert_eq!(&scratch, &bits);
                }
                // Scratch reuse across calls: a second, shorter input fully
                // replaces the previous contents.
                let shorter = &bits[..bits.len() / 2];
                xor_decimate_into(shorter, factor, &mut scratch).unwrap();
                prop_assert_eq!(scratch, xor_decimate(shorter, factor).unwrap());
            }

            #[test]
            fn von_neumann_into_matches_for_all_inputs(
                bits in proptest::collection::vec(0u8..=1, 0..512),
                garbage in proptest::collection::vec(0u8..=255, 0..32),
            ) {
                let mut scratch = garbage.clone();
                von_neumann_into(&bits, &mut scratch).unwrap();
                let reference = von_neumann(&bits).unwrap();
                prop_assert_eq!(&scratch, &reference);
                // Output bits are bits, and at most one per pair is kept.
                prop_assert!(reference.iter().all(|&b| b <= 1));
                prop_assert!(reference.len() <= bits.len() / 2);
                // Scratch reuse across calls.
                von_neumann_into(&bits, &mut scratch).unwrap();
                prop_assert_eq!(scratch, reference);
            }

            /// Piling-up bias shrinks monotonically with the factor and stays in
            /// the valid bias domain.
            #[test]
            fn xor_output_bias_stays_in_domain(
                epsilon in 0.0f64..0.5,
                factor in 1usize..16,
            ) {
                let bias = xor_output_bias(epsilon, factor).unwrap();
                prop_assert!((0.0..0.5).contains(&bias));
                prop_assert!(bias <= epsilon.max(1e-300) + 1e-15);
            }
        }
    }
}
