//! SHA-256 (FIPS 180-4), hand-rolled for the vetted conditioning stage.
//!
//! The container building this workspace has no registry access, so the SP 800-90B
//! §3.1.5 vetted conditioner cannot pull in a crypto crate; this module implements
//! the full FIPS 180-4 algorithm (padding, message schedule, compression) and is
//! tested against the FIPS 180-4 / NIST CAVS example vectors.  The implementation
//! favours clarity over speed — the streaming [`Sha256::update`] path compresses
//! one 64-byte block at a time with no allocation, which is already far faster
//! than the simulated entropy sources feeding it.

/// FIPS 180-4 §4.2.2 round constants: the first 32 bits of the fractional parts of
/// the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// FIPS 180-4 §5.3.3 initial hash value: the first 32 bits of the fractional parts
/// of the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Digest size in bytes.
pub const DIGEST_BYTES: usize = 32;

/// Digest size in bits (the conditioner's output block width and, being an
/// unkeyed hash, also its narrowest internal width for SP 800-90B accounting).
pub const DIGEST_BITS: usize = 256;

/// Compression block size in bytes (512 bits).
pub const BLOCK_BYTES: usize = 64;

/// The FIPS 180-4 §5.3.3 initial hash value, exposed for single-block callers.
///
/// [`crate::drbg`]'s Hashgen loop hashes millions of identically-padded one-block
/// messages; seeding a state with `INITIAL_STATE` and calling [`compress_block`]
/// once skips the per-message buffer and padding work of the streaming hasher.
pub const INITIAL_STATE: [u32; 8] = H0;

/// FIPS 180-4 §6.2.2 compression of one already-padded 512-bit block into `state`.
///
/// This is the single-block fast path behind [`Sha256`]: a message of at most
/// 55 bytes pads to exactly one block (`msg || 0x80 || zeros || bit-length`), so
/// callers that hash many same-length short messages can build the padded block
/// once, mutate the message bytes in place and re-compress from [`INITIAL_STATE`].
pub fn compress_block(state: &mut [u32; 8], block: &[u8; BLOCK_BYTES]) {
    let mut w = [0u32; 64];
    for (t, chunk) in block.chunks_exact(4).enumerate() {
        w[t] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (word, add) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *word = word.wrapping_add(add);
    }
}

/// Incremental SHA-256 state: feed bytes with [`Sha256::update`], extract the
/// digest with [`Sha256::finalize`] or — to reuse the state for the next message
/// without reallocation — [`Sha256::finalize_reset`].
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    block: [u8; BLOCK_BYTES],
    block_len: usize,
    total_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            block: [0; BLOCK_BYTES],
            block_len: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs `data` into the running hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_bytes += data.len() as u64;
        let mut rest = data;
        if self.block_len > 0 {
            let take = rest.len().min(BLOCK_BYTES - self.block_len);
            self.block[self.block_len..self.block_len + take].copy_from_slice(&rest[..take]);
            self.block_len += take;
            rest = &rest[take..];
            if self.block_len < BLOCK_BYTES {
                // The buffered block is still partial (rest is exhausted); falling
                // through would overwrite it with the empty remainder.
                return;
            }
            let block = self.block;
            self.compress(&block);
            self.block_len = 0;
        }
        let mut chunks = rest.chunks_exact(BLOCK_BYTES);
        for chunk in &mut chunks {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let tail = chunks.remainder();
        self.block[..tail.len()].copy_from_slice(tail);
        self.block_len = tail.len();
    }

    /// Pads, compresses the final block(s) and returns the digest, consuming the
    /// hasher.
    pub fn finalize(mut self) -> [u8; DIGEST_BYTES] {
        self.finalize_reset()
    }

    /// Like [`Sha256::finalize`], but resets the hasher to the initial state so it
    /// can absorb the next message — the streaming conditioner's steady-state path.
    pub fn finalize_reset(&mut self) -> [u8; DIGEST_BYTES] {
        let bit_len = self.total_bytes.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0x00]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.block_len, 0);
        let mut digest = [0u8; DIGEST_BYTES];
        for (chunk, word) in digest.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        self.state = H0;
        self.block_len = 0;
        self.total_bytes = 0;
        digest
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_BYTES] {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// FIPS 180-4 §6.2.2 compression of one 512-bit block.
    fn compress(&mut self, block: &[u8; BLOCK_BYTES]) {
        compress_block(&mut self.state, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST CAVS example vectors.
    #[test]
    fn fips_180_4_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (message, expected) in cases {
            assert_eq!(
                hex(&Sha256::digest(message)),
                expected,
                "message {message:?}"
            );
        }
    }

    /// FIPS 180-4 long-message vector: one million repetitions of `a`.
    #[test]
    fn fips_180_4_million_a() {
        let mut hasher = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            hasher.update(&chunk);
        }
        assert_eq!(
            hex(&hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_for_every_split() {
        let message: Vec<u8> = (0u16..257).map(|i| (i % 251) as u8).collect();
        let reference = Sha256::digest(&message);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 200, message.len()] {
            let mut hasher = Sha256::new();
            hasher.update(&message[..split]);
            hasher.update(&message[split..]);
            assert_eq!(hasher.finalize(), reference, "split at {split}");
        }
    }

    #[test]
    fn single_block_fast_path_matches_streaming() {
        // 55 bytes is the longest message that pads to exactly one block — the
        // shape the DRBG Hashgen loop compresses millions of times.
        let message: Vec<u8> = (0..55u8).map(|i| i ^ 0x5a).collect();
        let mut block = [0u8; BLOCK_BYTES];
        block[..55].copy_from_slice(&message);
        block[55] = 0x80;
        block[56..].copy_from_slice(&(55u64 * 8).to_be_bytes());
        let mut state = INITIAL_STATE;
        compress_block(&mut state, &block);
        let mut digest = [0u8; DIGEST_BYTES];
        for (chunk, word) in digest.chunks_exact_mut(4).zip(state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        assert_eq!(digest, Sha256::digest(&message));
    }

    #[test]
    fn finalize_reset_starts_a_fresh_message() {
        let mut hasher = Sha256::new();
        hasher.update(b"abc");
        let first = hasher.finalize_reset();
        assert_eq!(first, Sha256::digest(b"abc"));
        hasher.update(b"abc");
        assert_eq!(hasher.finalize_reset(), first);
        // And an interleaved different message is unaffected by the history.
        hasher.update(b"");
        assert_eq!(hasher.finalize_reset(), Sha256::digest(b""));
    }
}
