//! Aggregation of the individual test suites into a single report.

use serde::{Deserialize, Serialize};

use crate::bits::ensure_bit_len;
use crate::{fips, procedure_a, procedure_b, sp80090b, Result, TestResult};

/// Which suites a battery run should include.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryConfig {
    /// Run AIS 31 Procedure A tests T1–T5 (T0 needs ≈ 3.1 Mbit and is opt-in).
    pub procedure_a: bool,
    /// Run the AIS 31 Procedure A disjointness test T0.
    pub procedure_a_t0: bool,
    /// Run AIS 31 Procedure B tests (reduced-size T8 unless 2.07 Mbit are available).
    pub procedure_b: bool,
    /// Run the FIPS 140-2 tests.
    pub fips: bool,
    /// Run the SP 800-90B continuous health tests with this claimed min-entropy, if set.
    pub sp80090b_min_entropy: Option<f64>,
}

impl Default for BatteryConfig {
    fn default() -> Self {
        Self {
            procedure_a: true,
            procedure_a_t0: false,
            procedure_b: true,
            fips: true,
            sp80090b_min_entropy: Some(0.997),
        }
    }
}

/// Aggregated report of a battery run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryReport {
    /// Number of bits analysed.
    pub bits_analysed: usize,
    /// Every individual test outcome.
    pub results: Vec<TestResult>,
}

impl BatteryReport {
    /// `true` when every individual test passed.
    pub fn all_passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// Names of the tests that failed.
    pub fn failures(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| !r.passed)
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Number of tests run.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Returns `true` when no test was run.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

/// Runs the configured suites over a raw bit sequence.
///
/// # Errors
///
/// Returns an error when the sequence is shorter than the most demanding enabled suite
/// requires (20 000 bits for Procedure A / FIPS, ≈ 3.1 Mbit for T0).
pub fn run_battery(bits: &[u8], config: &BatteryConfig) -> Result<BatteryReport> {
    ensure_bit_len(bits, 20_000)?;
    let mut results = Vec::new();
    if config.procedure_a_t0 {
        results.push(procedure_a::t0_disjointness(bits)?);
    }
    if config.procedure_a {
        results.extend(procedure_a::run_t1_to_t5(bits)?);
    }
    if config.procedure_b {
        results.extend(procedure_b::run_reduced(bits)?);
    }
    if config.fips {
        results.extend(fips::run_all(bits)?);
    }
    if let Some(h) = config.sp80090b_min_entropy {
        results.push(sp80090b::repetition_count_test(bits, h)?);
        results.push(sp80090b::adaptive_proportion_test(bits, h)?.result);
    }
    Ok(BatteryReport {
        bits_analysed: bits.len(),
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn default_battery_passes_on_good_bits() {
        let bits = random_bits(200_000, 31);
        let report = run_battery(&bits, &BatteryConfig::default()).unwrap();
        assert!(report.all_passed(), "failures: {:?}", report.failures());
        assert!(report.len() >= 11);
        assert!(!report.is_empty());
        assert_eq!(report.bits_analysed, 200_000);
    }

    #[test]
    fn battery_reports_failures_on_biased_bits() {
        let mut rng = StdRng::seed_from_u64(32);
        let bits: Vec<u8> = (0..200_000).map(|_| u8::from(rng.gen_bool(0.6))).collect();
        let report = run_battery(&bits, &BatteryConfig::default()).unwrap();
        assert!(!report.all_passed());
        let failures = report.failures();
        assert!(failures.iter().any(|name| name.contains("monobit")));
    }

    #[test]
    fn suites_can_be_disabled() {
        let bits = random_bits(40_000, 33);
        let config = BatteryConfig {
            procedure_a: false,
            procedure_a_t0: false,
            procedure_b: false,
            fips: true,
            sp80090b_min_entropy: None,
        };
        let report = run_battery(&bits, &config).unwrap();
        assert_eq!(report.len(), 4);
        assert!(report.results.iter().all(|r| r.name.starts_with("FIPS")));
    }

    #[test]
    fn t0_can_be_enabled_with_enough_bits() {
        let bits = random_bits(procedure_a::T0_BLOCK_WIDTH * procedure_a::T0_BLOCKS, 34);
        let config = BatteryConfig {
            procedure_a: false,
            procedure_a_t0: true,
            procedure_b: false,
            fips: false,
            sp80090b_min_entropy: None,
        };
        let report = run_battery(&bits, &config).unwrap();
        assert_eq!(report.len(), 1);
        assert!(report.all_passed());
    }

    #[test]
    fn battery_rejects_short_sequences() {
        assert!(run_battery(&random_bits(1000, 1), &BatteryConfig::default()).is_err());
    }
}
