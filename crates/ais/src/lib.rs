//! Statistical test batteries for raw random bit sequences.
//!
//! AIS 31 (the evaluation methodology the paper's Section II refers to) requires a P-TRNG
//! to pass statistical tests of its raw binary sequence, both at evaluation time and —
//! for the higher assurance classes — on line, with tests tailored to the generator's
//! stochastic model.  This crate provides:
//!
//! * [`procedure_a`] — AIS 31 Procedure A: disjointness (T0), monobit (T1), poker (T2),
//!   runs (T3), long-run (T4) and autocorrelation (T5) tests,
//! * [`procedure_b`] — AIS 31 Procedure B: uniform-distribution (T6), multinomial
//!   comparison (T7) and Coron entropy (T8) tests,
//! * [`fips`] — the FIPS 140-2 single-block variants (monobit, poker, runs, long run),
//! * [`sp80090b`] — NIST SP 800-90B style continuous health tests (repetition count,
//!   adaptive proportion),
//! * [`estimators`] — the SP 800-90B §6.3 non-IID min-entropy estimator battery
//!   (MCV, collision, Markov, compression, t-tuple, LRS, MultiMCW and lag
//!   prediction) that audits a stochastic model's entropy claim black-box,
//! * [`battery`] — aggregation of all of the above into a single report,
//! * [`bits`] — bit-sequence helpers shared by the tests.
//!
//! The numerical bounds follow the published test specifications; they are deterministic
//! pass/fail criteria, not p-values.  Where each battery sits in the runtime's health
//! layer is described in `docs/architecture.md` of the repository book.
//!
//! # Example
//!
//! Run the FIPS 140-2 battery on one 20 000-bit block:
//!
//! ```
//! use ptrng_ais::fips;
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! # fn main() -> Result<(), ptrng_ais::AisError> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let bits: Vec<u8> = (0..fips::FIPS_BLOCK_BITS).map(|_| rng.gen_range(0..=1)).collect();
//! let results = fips::run_all(&bits)?;
//! assert!(results.iter().all(|r| r.passed), "a fair coin passes the battery");
//!
//! // A stuck source fails immediately (and names the failing tests).
//! let stuck = vec![1u8; fips::FIPS_BLOCK_BITS];
//! assert!(fips::run_all(&stuck)?.iter().any(|r| !r.passed));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod bits;
pub mod estimators;
pub mod fips;
pub mod procedure_a;
pub mod procedure_b;
pub mod sp80090b;

use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Errors produced by the test battery.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum AisError {
    /// The bit sequence is too short for the requested test.
    #[error("bit sequence of length {len} is too short, {needed} bits are required")]
    SequenceTooShort {
        /// Provided number of bits.
        len: usize,
        /// Required number of bits.
        needed: usize,
    },
    /// A parameter was outside its valid domain.
    #[error("invalid parameter {name}: {reason}")]
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A sample value was not a bit (0 or 1).
    #[error("sample at index {index} is not a bit (got {value})")]
    NotABit {
        /// Index of the offending sample.
        index: usize,
        /// The offending value.
        value: u8,
    },
    /// An underlying statistical routine failed.
    #[error("statistics error: {0}")]
    Stats(#[from] ptrng_stats::StatsError),
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, AisError>;

/// Outcome of one individual statistical test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// Short identifier of the test (e.g. `"T1 monobit"`).
    pub name: String,
    /// Value of the test statistic.
    pub statistic: f64,
    /// `true` when the sequence passed the test.
    pub passed: bool,
    /// Human-readable description of the acceptance region.
    pub acceptance: String,
}

impl TestResult {
    /// Creates a test result.
    pub fn new(
        name: impl Into<String>,
        statistic: f64,
        passed: bool,
        acceptance: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            statistic,
            passed,
            acceptance: acceptance.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_result_constructor() {
        let r = TestResult::new("demo", 1.5, true, "1 < x < 2");
        assert_eq!(r.name, "demo");
        assert!(r.passed);
        assert_eq!(r.acceptance, "1 < x < 2");
    }

    #[test]
    fn errors_have_readable_messages() {
        let e = AisError::SequenceTooShort { len: 5, needed: 10 };
        assert!(e.to_string().contains("too short"));
        let e = AisError::NotABit { index: 3, value: 7 };
        assert!(e.to_string().contains("not a bit"));
    }
}
