//! AIS 31 Procedure A tests (T0–T5).
//!
//! Procedure A is applied to the internal random numbers of the generator; tests T1–T5
//! each consume a 20 000-bit block, and T0 checks disjointness of 2¹⁶ consecutive 48-bit
//! blocks.  The acceptance bounds are those of the AIS 20/31 specification (Schindler &
//! Killmann); they correspond to a per-test false-alarm probability around 10⁻⁶.

use std::collections::HashSet;

use crate::bits::{blocks_as_integers, count_ones, ensure_bit_len, run_lengths};
use crate::{AisError, Result, TestResult};

/// Number of bits consumed by each of the tests T1–T5.
pub const BLOCK_BITS: usize = 20_000;

/// Block width (bits) of the disjointness test T0.
pub const T0_BLOCK_WIDTH: usize = 48;

/// Number of blocks examined by the standard disjointness test T0.
pub const T0_BLOCKS: usize = 1 << 16;

/// T0 disjointness test with the standard parameters (2¹⁶ blocks of 48 bits).
///
/// # Errors
///
/// Returns an error when fewer than `48·2¹⁶` bits are provided.
pub fn t0_disjointness(bits: &[u8]) -> Result<TestResult> {
    t0_disjointness_with(bits, T0_BLOCK_WIDTH, T0_BLOCKS)
}

/// T0 disjointness test with explicit parameters (for unit tests and reduced-size runs).
///
/// # Errors
///
/// Returns an error for invalid parameters or an insufficient number of bits.
pub fn t0_disjointness_with(bits: &[u8], block_width: usize, blocks: usize) -> Result<TestResult> {
    if block_width == 0 || block_width > 64 {
        return Err(AisError::InvalidParameter {
            name: "block_width",
            reason: format!("block width must be in 1..=64, got {block_width}"),
        });
    }
    if blocks < 2 {
        return Err(AisError::InvalidParameter {
            name: "blocks",
            reason: "at least two blocks are required".to_string(),
        });
    }
    ensure_bit_len(bits, block_width * blocks)?;
    let mut seen: HashSet<u64> = HashSet::with_capacity(blocks);
    let mut collisions = 0usize;
    for i in 0..blocks {
        let chunk = &bits[i * block_width..(i + 1) * block_width];
        let value = chunk.iter().fold(0u64, |acc, &b| (acc << 1) | b as u64);
        if !seen.insert(value) {
            collisions += 1;
        }
    }
    Ok(TestResult::new(
        "T0 disjointness",
        collisions as f64,
        collisions == 0,
        "no repeated block",
    ))
}

/// T1 monobit test: the number of ones in 20 000 bits must lie in `(9654, 10346)`.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn t1_monobit(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, BLOCK_BITS)?;
    let ones = count_ones(&bits[..BLOCK_BITS])? as f64;
    Ok(TestResult::new(
        "T1 monobit",
        ones,
        ones > 9654.0 && ones < 10346.0,
        "9654 < ones < 10346",
    ))
}

/// T2 poker test: χ²-like statistic over 5000 non-overlapping 4-bit blocks, accepted in
/// `(1.03, 57.4)`.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn t2_poker(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, BLOCK_BITS)?;
    let blocks = blocks_as_integers(&bits[..BLOCK_BITS], 4)?;
    let mut counts = [0u64; 16];
    for b in blocks {
        counts[b as usize] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c * c) as f64).sum();
    let statistic = 16.0 / 5000.0 * sum_sq - 5000.0;
    Ok(TestResult::new(
        "T2 poker",
        statistic,
        statistic > 1.03 && statistic < 57.4,
        "1.03 < X < 57.4",
    ))
}

/// Acceptance intervals of the T3 runs test, indexed by run length 1..=6 (6 collects all
/// longer runs).  The same interval applies to runs of zeros and runs of ones.
pub const T3_BOUNDS: [(u64, u64); 6] = [
    (2267, 2733),
    (1079, 1421),
    (502, 748),
    (223, 402),
    (90, 223),
    (90, 233),
];

/// T3 runs test: the number of runs of each length (1–5, and ≥6) of each bit value must
/// fall inside the specification intervals.
///
/// The returned statistic is the number of violated intervals (0 when the test passes).
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn t3_runs(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, BLOCK_BITS)?;
    let window = &bits[..BLOCK_BITS];
    // Count runs separately for zeros and ones.
    let mut counts = [[0u64; 6]; 2];
    let runs = run_lengths(window)?;
    let mut value = window[0] as usize;
    for len in runs {
        let idx = len.min(6) - 1;
        counts[value][idx] += 1;
        value ^= 1;
    }
    let mut violations = 0u64;
    for value_counts in &counts {
        for (idx, &(lo, hi)) in T3_BOUNDS.iter().enumerate() {
            let c = value_counts[idx];
            if c < lo || c > hi {
                violations += 1;
            }
        }
    }
    Ok(TestResult::new(
        "T3 runs",
        violations as f64,
        violations == 0,
        "all 12 run-length counts inside the specification intervals",
    ))
}

/// T4 long-run test: no run of length 34 or more may occur in 20 000 bits.
///
/// The statistic is the length of the longest run observed.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn t4_long_run(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, BLOCK_BITS)?;
    let longest = run_lengths(&bits[..BLOCK_BITS])?
        .into_iter()
        .max()
        .unwrap_or(0);
    Ok(TestResult::new(
        "T4 long run",
        longest as f64,
        longest < 34,
        "longest run < 34",
    ))
}

/// T5 autocorrelation test.
///
/// The shift `τ* ∈ [1, 5000]` maximizing the deviation of
/// `Z_τ = Σ_{i=0}^{4999} b_i ⊕ b_{i+τ}` from 2500 is selected on the first half of the
/// block; the test statistic is then recomputed with `τ*` on the second half and must lie
/// in `(2326, 2674)`.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn t5_autocorrelation(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, BLOCK_BITS)?;
    let window = &bits[..BLOCK_BITS];
    let half = BLOCK_BITS / 2;
    let mut best_tau = 1usize;
    let mut best_dev = -1.0f64;
    for tau in 1..=5000usize {
        let z: u64 = (0..5000)
            .map(|i| (window[i] ^ window[i + tau]) as u64)
            .sum();
        let dev = (z as f64 - 2500.0).abs();
        if dev > best_dev {
            best_dev = dev;
            best_tau = tau;
        }
    }
    let z_star: u64 = (0..5000)
        .map(|i| (window[half + i] ^ window[half + i + best_tau]) as u64)
        .sum();
    let statistic = z_star as f64;
    Ok(TestResult::new(
        format!("T5 autocorrelation (tau = {best_tau})"),
        statistic,
        statistic > 2326.0 && statistic < 2674.0,
        "2326 < Z < 2674",
    ))
}

/// Runs T1–T5 on one 20 000-bit block and returns the individual results.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn run_t1_to_t5(bits: &[u8]) -> Result<Vec<TestResult>> {
    Ok(vec![
        t1_monobit(bits)?,
        t2_poker(bits)?,
        t3_runs(bits)?,
        t4_long_run(bits)?,
        t5_autocorrelation(bits)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    fn biased_bits(len: usize, p_one: f64, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| u8::from(rng.gen_bool(p_one))).collect()
    }

    #[test]
    fn good_random_bits_pass_t1_to_t5() {
        let bits = random_bits(BLOCK_BITS, 1);
        for result in run_t1_to_t5(&bits).unwrap() {
            assert!(
                result.passed,
                "{} failed: {}",
                result.name, result.statistic
            );
        }
    }

    #[test]
    fn t1_rejects_biased_bits() {
        let bits = biased_bits(BLOCK_BITS, 0.55, 2);
        assert!(!t1_monobit(&bits).unwrap().passed);
    }

    #[test]
    fn t2_rejects_structured_blocks() {
        // Repeating the nibble pattern 0xA gives a degenerate poker distribution.
        let bits: Vec<u8> = (0..BLOCK_BITS)
            .map(|i| (0xAu8 >> (3 - i % 4)) & 1)
            .collect();
        assert!(!t2_poker(&bits).unwrap().passed);
    }

    #[test]
    fn t3_rejects_alternating_bits() {
        // Strict alternation produces 10 000 runs of length one for each value.
        let bits: Vec<u8> = (0..BLOCK_BITS).map(|i| (i % 2) as u8).collect();
        assert!(!t3_runs(&bits).unwrap().passed);
    }

    #[test]
    fn t4_rejects_a_long_run() {
        let mut bits = random_bits(BLOCK_BITS, 3);
        for bit in bits.iter_mut().skip(500).take(40) {
            *bit = 1;
        }
        let result = t4_long_run(&bits).unwrap();
        assert!(!result.passed);
        assert!(result.statistic >= 40.0);
    }

    #[test]
    fn t5_rejects_periodic_bits() {
        // Period-37 sequence: the autocorrelation at τ = 37 collapses to zero.
        let base = random_bits(37, 4);
        let bits: Vec<u8> = (0..BLOCK_BITS).map(|i| base[i % 37]).collect();
        assert!(!t5_autocorrelation(&bits).unwrap().passed);
    }

    #[test]
    fn t0_detects_repeated_blocks() {
        // Reduced-size variant: 256 blocks of 16 bits from a counter are disjoint...
        let mut bits = Vec::new();
        for i in 0..256u32 {
            for shift in (0..16).rev() {
                bits.push(((i >> shift) & 1) as u8);
            }
        }
        assert!(t0_disjointness_with(&bits, 16, 256).unwrap().passed);
        // ...but repeating one block breaks disjointness.
        let first_block: Vec<u8> = bits[..16].to_vec();
        bits.splice(16..32, first_block);
        let result = t0_disjointness_with(&bits, 16, 256).unwrap();
        assert!(!result.passed);
        assert_eq!(result.statistic, 1.0);
    }

    #[test]
    fn error_paths() {
        assert!(t1_monobit(&[0, 1]).is_err());
        assert!(t2_poker(&[1; 100]).is_err());
        assert!(t0_disjointness_with(&[0, 1, 0, 1], 2, 1).is_err());
        assert!(t0_disjointness(&[0; 100]).is_err());
        let mut bits = vec![0u8; BLOCK_BITS];
        bits[5] = 3;
        assert!(t1_monobit(&bits).is_err());
    }
}
