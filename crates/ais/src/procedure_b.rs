//! AIS 31 Procedure B tests (T6–T8), applied to the raw (das) random bit sequence.
//!
//! * **T6 uniform distribution** — bounds the one-bit bias and the dependence of a bit on
//!   its predecessor.
//! * **T7 comparative multinomial test** — χ² homogeneity of the next-bit distribution
//!   conditioned on the previous bit.
//! * **T8 entropy test (Coron)** — Coron's universal entropy estimator over 8-bit blocks
//!   with the specification threshold 7.976 bit/byte.
//!
//! The block sizes and thresholds follow the AIS 20/31 specification; parameterized
//! variants are provided so reduced-size runs (unit tests, quick health checks) can reuse
//! the same code.

use ptrng_stats::special::chi_squared_sf;

use crate::bits::{blocks_as_integers, ensure_bit_len};
use crate::{AisError, Result, TestResult};

/// Bits consumed by the standard T6a test.
pub const T6_BITS: usize = 100_000;

/// Coron-test parameters of the standard T8 run.
pub const T8_BLOCK_BITS: usize = 8;
/// Number of initialization blocks of the standard T8 run.
pub const T8_INIT_BLOCKS: usize = 2_560;
/// Number of evaluated blocks of the standard T8 run.
pub const T8_TEST_BLOCKS: usize = 256_000;
/// Acceptance threshold of the standard T8 run (bits of entropy per 8-bit block).
pub const T8_THRESHOLD: f64 = 7.976;

/// T6a: the empirical probability of a one over `bits.len()` samples (at least
/// [`T6_BITS`] for the standard test) must satisfy `|p̂ − 0.5| < 0.025`.
///
/// # Errors
///
/// Returns an error when fewer than `needed` bits are provided.
pub fn t6_uniform_bias(bits: &[u8], needed: usize) -> Result<TestResult> {
    ensure_bit_len(bits, needed.max(2))?;
    let window = &bits[..needed.max(2)];
    let ones: usize = window.iter().map(|&b| b as usize).sum();
    let p = ones as f64 / window.len() as f64;
    Ok(TestResult::new(
        "T6a uniform distribution (bias)",
        p,
        (p - 0.5).abs() < 0.025,
        "|p(1) - 0.5| < 0.025",
    ))
}

/// T6b: the dependence of a bit on its predecessor,
/// `|p̂(1 | previous = 1) − p̂(1 | previous = 0)| < 0.02`.
///
/// # Errors
///
/// Returns an error when fewer than `needed` bits are provided or one of the conditional
/// sample sets is empty.
pub fn t6_conditional_bias(bits: &[u8], needed: usize) -> Result<TestResult> {
    ensure_bit_len(bits, needed.max(3))?;
    let window = &bits[..needed.max(3)];
    let mut count = [0u64; 2];
    let mut ones_after = [0u64; 2];
    for w in window.windows(2) {
        let prev = w[0] as usize;
        count[prev] += 1;
        ones_after[prev] += w[1] as u64;
    }
    if count[0] == 0 || count[1] == 0 {
        return Err(AisError::InvalidParameter {
            name: "bits",
            reason: "the sequence never takes one of the two values".to_string(),
        });
    }
    let p1_given_1 = ones_after[1] as f64 / count[1] as f64;
    let p1_given_0 = ones_after[0] as f64 / count[0] as f64;
    let statistic = (p1_given_1 - p1_given_0).abs();
    Ok(TestResult::new(
        "T6b uniform distribution (conditional)",
        statistic,
        statistic < 0.02,
        "|p(1|1) - p(1|0)| < 0.02",
    ))
}

/// T7: χ² homogeneity test comparing the next-bit distributions observed after a zero and
/// after a one.  The statistic is compared against the 10⁻⁶ quantile of χ²(1)
/// (≈ 23.9); large values indicate that the transition probabilities differ.
///
/// # Errors
///
/// Returns an error when fewer than `needed` bits are provided or a conditional sample
/// set is empty.
pub fn t7_transition_homogeneity(bits: &[u8], needed: usize) -> Result<TestResult> {
    ensure_bit_len(bits, needed.max(16))?;
    let window = &bits[..needed.max(16)];
    // Contingency table rows: previous bit, columns: next bit.
    let mut table = [[0f64; 2]; 2];
    for w in window.windows(2) {
        table[w[0] as usize][w[1] as usize] += 1.0;
    }
    let row: [f64; 2] = [table[0][0] + table[0][1], table[1][0] + table[1][1]];
    let col: [f64; 2] = [table[0][0] + table[1][0], table[0][1] + table[1][1]];
    let total = row[0] + row[1];
    if row[0] == 0.0 || row[1] == 0.0 || col[0] == 0.0 || col[1] == 0.0 {
        return Err(AisError::InvalidParameter {
            name: "bits",
            reason: "degenerate transition table".to_string(),
        });
    }
    let mut statistic = 0.0;
    for r in 0..2 {
        for c in 0..2 {
            let expected = row[r] * col[c] / total;
            let diff = table[r][c] - expected;
            statistic += diff * diff / expected;
        }
    }
    const THRESHOLD: f64 = 23.9; // χ²(1) quantile at 1 - 1e-6
    Ok(TestResult::new(
        "T7 transition homogeneity",
        statistic,
        statistic < THRESHOLD,
        "chi-squared(1) statistic < 23.9",
    ))
}

/// T8: Coron's entropy estimator with the standard AIS 31 parameters
/// (8-bit blocks, 2560 initialization blocks, 256 000 test blocks, threshold 7.976).
///
/// # Errors
///
/// Returns an error when fewer than `8·(2560 + 256000)` bits are provided.
pub fn t8_entropy(bits: &[u8]) -> Result<TestResult> {
    t8_entropy_with(
        bits,
        T8_BLOCK_BITS,
        T8_INIT_BLOCKS,
        T8_TEST_BLOCKS,
        T8_THRESHOLD,
    )
}

/// Coron's entropy estimator with explicit parameters.
///
/// For each of the `test_blocks` blocks following the `init_blocks` warm-up blocks, the
/// distance `A_n` to the previous occurrence of the same block value is accumulated as
/// `g(A_n) = (1/ln 2)·Σ_{k=1}^{A_n−1} 1/k`; the statistic is the mean of `g` and
/// estimates the per-block entropy of a stationary source.
///
/// # Errors
///
/// Returns an error for invalid parameters or an insufficient number of bits.
pub fn t8_entropy_with(
    bits: &[u8],
    block_bits: usize,
    init_blocks: usize,
    test_blocks: usize,
    threshold: f64,
) -> Result<TestResult> {
    if block_bits == 0 || block_bits > 16 {
        return Err(AisError::InvalidParameter {
            name: "block_bits",
            reason: format!("block width must be in 1..=16, got {block_bits}"),
        });
    }
    if init_blocks == 0 || test_blocks == 0 {
        return Err(AisError::InvalidParameter {
            name: "init_blocks/test_blocks",
            reason: "both the initialization and test segments must be non-empty".to_string(),
        });
    }
    let total_blocks = init_blocks + test_blocks;
    ensure_bit_len(bits, block_bits * total_blocks)?;
    let blocks = blocks_as_integers(&bits[..block_bits * total_blocks], block_bits)?;

    // last_seen[v] = index (1-based) of the most recent occurrence of value v.
    let mut last_seen = vec![0usize; 1 << block_bits];
    for (i, &v) in blocks[..init_blocks].iter().enumerate() {
        last_seen[v as usize] = i + 1;
    }
    // Precompute g(d) lazily via the harmonic series.
    let mut g_cache: Vec<f64> = vec![0.0; 2];
    let mut sum = 0.0;
    for (n, &v) in blocks[init_blocks..].iter().enumerate() {
        let index = init_blocks + n + 1;
        let prev = last_seen[v as usize];
        let distance = if prev == 0 { index } else { index - prev };
        while g_cache.len() <= distance {
            let k = g_cache.len() - 1;
            let prev_g = g_cache[k];
            g_cache.push(prev_g + 1.0 / k as f64);
        }
        sum += g_cache[distance] / std::f64::consts::LN_2;
        last_seen[v as usize] = index;
    }
    let statistic = sum / test_blocks as f64;
    Ok(TestResult::new(
        "T8 entropy (Coron)",
        statistic,
        statistic > threshold,
        format!("f > {threshold}"),
    ))
}

/// Runs T6, T7 and a reduced-size T8 on the provided bits, sizing every test to the
/// available data (intended for quick health checks; the standard full-size procedure is
/// available through the individual functions).
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn run_reduced(bits: &[u8]) -> Result<Vec<TestResult>> {
    ensure_bit_len(bits, 20_000)?;
    let n = bits.len();
    let t8_blocks = (n / 8).min(T8_INIT_BLOCKS + T8_TEST_BLOCKS);
    let init = (t8_blocks / 100).max(16);
    let test = t8_blocks - init;
    Ok(vec![
        t6_uniform_bias(bits, n.min(T6_BITS))?,
        t6_conditional_bias(bits, n.min(T6_BITS))?,
        t7_transition_homogeneity(bits, n.min(T6_BITS))?,
        t8_entropy_with(bits, 8, init, test, T8_THRESHOLD)?,
    ])
}

/// Computes the p-value of the T7 statistic (χ² with one degree of freedom).
///
/// # Errors
///
/// Returns an error when the statistic is negative.
pub fn t7_p_value(statistic: f64) -> Result<f64> {
    Ok(chi_squared_sf(statistic, 1)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    fn biased_bits(len: usize, p_one: f64, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| u8::from(rng.gen_bool(p_one))).collect()
    }

    fn markov_bits(len: usize, p_stay: f64, seed: u64) -> Vec<u8> {
        // A sticky Markov chain: the next bit repeats the previous one with prob p_stay.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = Vec::with_capacity(len);
        let mut current: u8 = rng.gen_range(0..=1);
        for _ in 0..len {
            bits.push(current);
            if !rng.gen_bool(p_stay) {
                current ^= 1;
            }
        }
        bits
    }

    #[test]
    fn good_bits_pass_t6_and_t7() {
        let bits = random_bits(100_000, 1);
        assert!(t6_uniform_bias(&bits, T6_BITS).unwrap().passed);
        assert!(t6_conditional_bias(&bits, T6_BITS).unwrap().passed);
        assert!(t7_transition_homogeneity(&bits, T6_BITS).unwrap().passed);
    }

    #[test]
    fn biased_bits_fail_t6a() {
        let bits = biased_bits(100_000, 0.55, 2);
        assert!(!t6_uniform_bias(&bits, T6_BITS).unwrap().passed);
    }

    #[test]
    fn markov_bits_fail_t6b_and_t7() {
        let bits = markov_bits(100_000, 0.6, 3);
        assert!(!t6_conditional_bias(&bits, T6_BITS).unwrap().passed);
        assert!(!t7_transition_homogeneity(&bits, T6_BITS).unwrap().passed);
    }

    #[test]
    fn t7_p_value_is_small_for_large_statistics() {
        assert!(t7_p_value(30.0).unwrap() < 1e-6);
        assert!(t7_p_value(0.5).unwrap() > 0.4);
    }

    #[test]
    fn coron_estimator_approaches_block_entropy_for_uniform_bits() {
        let bits = random_bits(8 * 40_000, 4);
        let result = t8_entropy_with(&bits, 8, 1_000, 38_000, T8_THRESHOLD).unwrap();
        assert!(
            result.statistic > 7.9 && result.statistic < 8.1,
            "statistic {}",
            result.statistic
        );
        assert!(result.passed);
    }

    #[test]
    fn coron_estimator_detects_low_entropy() {
        // Heavily biased bits: per-byte entropy far below 7.976.
        let bits = biased_bits(8 * 40_000, 0.75, 5);
        let result = t8_entropy_with(&bits, 8, 1_000, 38_000, T8_THRESHOLD).unwrap();
        assert!(!result.passed);
        assert!(result.statistic < 7.5, "statistic {}", result.statistic);
    }

    #[test]
    fn coron_estimator_on_smaller_blocks() {
        // 4-bit blocks of uniform bits have ≈ 4 bits of entropy each.
        let bits = random_bits(4 * 30_000, 6);
        let result = t8_entropy_with(&bits, 4, 500, 29_000, 3.9).unwrap();
        assert!(result.statistic > 3.9 && result.statistic < 4.1);
    }

    #[test]
    fn reduced_procedure_runs_all_tests() {
        let bits = random_bits(200_000, 7);
        let results = run_reduced(&bits).unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.passed));
    }

    #[test]
    fn error_paths() {
        assert!(t6_uniform_bias(&[1, 0], 100).is_err());
        assert!(t6_conditional_bias(&[1; 100], 50).is_err());
        assert!(t8_entropy_with(&[0, 1], 0, 1, 1, 1.0).is_err());
        assert!(t8_entropy_with(&[0, 1], 8, 0, 1, 1.0).is_err());
        assert!(t8_entropy_with(&random_bits(100, 1), 8, 100, 100, 1.0).is_err());
        assert!(t8_entropy(&random_bits(1000, 1)).is_err());
        assert!(run_reduced(&random_bits(100, 1)).is_err());
    }
}
