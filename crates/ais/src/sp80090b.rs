//! NIST SP 800-90B style continuous health tests.
//!
//! These are the lightweight tests an entropy source runs permanently on its raw output:
//!
//! * **repetition count test** — catches a source that gets stuck on one value,
//! * **adaptive proportion test** — catches a large loss of entropy (one value becoming
//!   far too frequent) over a sliding window.
//!
//! Both are parameterized by the claimed min-entropy per sample `H` and a false-positive
//! exponent (the cutoffs are chosen so that a healthy source fails with probability about
//! `2^-20` per window, the SP 800-90B recommendation).
//!
//! The module also hosts the §3.1.5 **vetted-conditioner output entropy** accounting
//! ([`conditioned_output_entropy`]): how much min-entropy may be credited to the output
//! of a vetted cryptographic conditioning function (e.g. SHA-256) given the accounted
//! entropy of its input — the arithmetic the conditioning-pipeline entropy ledger uses.

use serde::{Deserialize, Serialize};

use crate::bits::ensure_bits;
use crate::{AisError, Result, TestResult};

/// Cutoff of the repetition count test: `C = 1 + ⌈20 / H⌉` for a false-positive
/// probability of `2⁻²⁰` per sample (the SP 800-90B example calibration).
///
/// # Errors
///
/// Returns an error when `min_entropy_per_sample` is not in `(0, 1]` (for binary
/// samples).
pub fn repetition_count_cutoff(min_entropy_per_sample: f64) -> Result<u64> {
    repetition_count_cutoff_with(min_entropy_per_sample, 20.0)
}

/// [`repetition_count_cutoff`] with a configurable false-positive exponent `e`:
/// `C = 1 + ⌈e / H⌉` targets a false alarm probability of about `2⁻ᵉ` per sample.
/// High-throughput consumers (streaming many mebibits) want `e` well above the spec's
/// example value of 20, or false repetition-count alarms become routine.
///
/// # Errors
///
/// Returns an error when the entropy claim is not in `(0, 1]` or the exponent is not
/// finite and at least 1.
pub fn repetition_count_cutoff_with(
    min_entropy_per_sample: f64,
    false_positive_exponent: f64,
) -> Result<u64> {
    check_entropy(min_entropy_per_sample)?;
    check_exponent(false_positive_exponent)?;
    Ok(1 + (false_positive_exponent / min_entropy_per_sample).ceil() as u64)
}

/// Runs the repetition count test over a full bit sequence.
///
/// The statistic is the longest run of identical bits; the test fails as soon as a run
/// reaches the cutoff.
///
/// # Errors
///
/// Returns an error for an empty sequence, non-bit samples, or an invalid entropy claim.
pub fn repetition_count_test(bits: &[u8], min_entropy_per_sample: f64) -> Result<TestResult> {
    ensure_bits(bits)?;
    if bits.is_empty() {
        return Err(AisError::SequenceTooShort { len: 0, needed: 1 });
    }
    let cutoff = repetition_count_cutoff(min_entropy_per_sample)?;
    let mut longest = 1u64;
    let mut current = 1u64;
    for w in bits.windows(2) {
        if w[0] == w[1] {
            current += 1;
            longest = longest.max(current);
        } else {
            current = 1;
        }
    }
    Ok(TestResult::new(
        "SP800-90B repetition count",
        longest as f64,
        longest < cutoff,
        format!("longest run < {cutoff}"),
    ))
}

/// Window size of the adaptive proportion test for binary sources.
pub const ADAPTIVE_PROPORTION_WINDOW: usize = 1024;

/// Cutoff of the adaptive proportion test for binary sources, derived from the binomial
/// tail so a healthy source with min-entropy `H` fails with probability ≈ `2⁻²⁰` per
/// window.
///
/// # Errors
///
/// Returns an error when `min_entropy_per_sample` is not in `(0, 1]`.
pub fn adaptive_proportion_cutoff(min_entropy_per_sample: f64) -> Result<u64> {
    adaptive_proportion_cutoff_with(min_entropy_per_sample, 20.0)
}

/// [`adaptive_proportion_cutoff`] with a configurable false-positive exponent `e`:
/// the cutoff targets a false alarm probability of about `2⁻ᵉ` per window.
///
/// # Errors
///
/// Returns an error when the entropy claim is not in `(0, 1]` or the exponent is not
/// finite and at least 1.
pub fn adaptive_proportion_cutoff_with(
    min_entropy_per_sample: f64,
    false_positive_exponent: f64,
) -> Result<u64> {
    check_entropy(min_entropy_per_sample)?;
    check_exponent(false_positive_exponent)?;
    // The most likely value has probability at most p = 2^{-H}.  Use a normal
    // approximation of Binomial(W, p) with a one-sided z-bound of
    // z = sqrt(2·ln2·e), a (slightly conservative) upper bound on the normal
    // quantile at tail mass 2^-e.
    let p = 2.0f64.powf(-min_entropy_per_sample);
    let w = ADAPTIVE_PROPORTION_WINDOW as f64;
    let mean = w * p;
    let std = (w * p * (1.0 - p)).sqrt();
    let z = (2.0 * std::f64::consts::LN_2 * false_positive_exponent).sqrt();
    Ok((mean + z * std).ceil().min(w) as u64)
}

/// Outcome of the adaptive proportion test over every disjoint window of the sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveProportionOutcome {
    /// Per-window counts of the window's first sample value.
    pub window_counts: Vec<u64>,
    /// The cutoff applied to each window.
    pub cutoff: u64,
    /// Aggregated verdict.
    pub result: TestResult,
}

/// Runs the adaptive proportion test: in every disjoint 1024-bit window, the number of
/// occurrences of the window's first sample must stay below the cutoff.
///
/// # Errors
///
/// Returns an error when fewer than one full window of bits is provided or the entropy
/// claim is invalid.
pub fn adaptive_proportion_test(
    bits: &[u8],
    min_entropy_per_sample: f64,
) -> Result<AdaptiveProportionOutcome> {
    ensure_bits(bits)?;
    if bits.len() < ADAPTIVE_PROPORTION_WINDOW {
        return Err(AisError::SequenceTooShort {
            len: bits.len(),
            needed: ADAPTIVE_PROPORTION_WINDOW,
        });
    }
    let cutoff = adaptive_proportion_cutoff(min_entropy_per_sample)?;
    let mut window_counts = Vec::new();
    let mut worst = 0u64;
    for window in bits.chunks_exact(ADAPTIVE_PROPORTION_WINDOW) {
        let target = window[0];
        let count = window.iter().filter(|&&b| b == target).count() as u64;
        worst = worst.max(count);
        window_counts.push(count);
    }
    let passed = worst < cutoff;
    Ok(AdaptiveProportionOutcome {
        window_counts,
        cutoff,
        result: TestResult::new(
            "SP800-90B adaptive proportion",
            worst as f64,
            passed,
            format!("max per-window count < {cutoff}"),
        ),
    })
}

/// Min-entropy of the output of a **vetted conditioning function** (SP 800-90B
/// §3.1.5.1.2), in bits per conditioned output block.
///
/// The formula bounds the probability of the most likely `n_out`-bit output when
/// `n_in` input bits carrying `h_in` bits of min-entropy are compressed through a
/// vetted conditioner (e.g. SHA-256) whose narrowest internal width is `nw` bits:
///
/// ```text
/// n     = min(n_out, nw)
/// P_hi  = 2^{−h_in}                      (most likely input)
/// P_lo  = (1 − P_hi) / (2^{n_in} − 1)    (all other inputs, worst case)
/// ψ     = 2^{n_in − n}·P_lo + P_hi
/// U     = 2^{n_in − n} + sqrt(2·n·2^{n_in − n}·ln 2)
/// ω     = U·P_lo
/// h_out = −log2(max(ψ, ω))
/// ```
///
/// The computation runs in `log2` space so deep conditioners (`n_in` of thousands
/// of bits) neither overflow nor lose the tail.  The result is clamped to
/// `[0, n_out]`; it never exceeds `h_in` (conditioning cannot create entropy).
///
/// # Errors
///
/// Returns an error when any width is not positive, or `h_in` is not in
/// `(0, n_in]`.
pub fn conditioned_output_entropy(n_in: f64, n_out: f64, nw: f64, h_in: f64) -> Result<f64> {
    for (name, value) in [("n_in", n_in), ("n_out", n_out), ("nw", nw)] {
        if !(value.is_finite() && value > 0.0) {
            return Err(AisError::InvalidParameter {
                name,
                reason: format!("must be positive and finite, got {value}"),
            });
        }
    }
    if !(h_in > 0.0 && h_in <= n_in) {
        return Err(AisError::InvalidParameter {
            name: "h_in",
            reason: format!("input min-entropy must be in (0, n_in = {n_in}], got {h_in}"),
        });
    }
    let n = n_out.min(nw);
    // log2(1 − 2^{−h_in}) without cancellation: 1 − e^{−h·ln2} = −expm1(−h·ln2).
    let log2_one_minus_p_hi = (-(-h_in * std::f64::consts::LN_2).exp_m1()).log2();
    // log2(2^{n_in} − 1) ≈ n_in + log2(1 − 2^{−n_in}); the correction underflows to
    // zero for n_in ≳ 50, which is exactly the regime where it is negligible.
    let log2_denominator = n_in + (-(-n_in * std::f64::consts::LN_2).exp_m1()).log2();
    let log2_p_lo = log2_one_minus_p_hi - log2_denominator;
    // log2(a + b) given log2 a and log2 b.
    let log2_add = |a: f64, b: f64| {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        hi + (1.0 + 2.0f64.powf(lo - hi)).log2()
    };
    let log2_psi = log2_add((n_in - n) + log2_p_lo, -h_in);
    let log2_u = log2_add(
        n_in - n,
        0.5 * (n_in - n) + 0.5 * (2.0 * n * std::f64::consts::LN_2).log2(),
    );
    let log2_omega = log2_u + log2_p_lo;
    Ok((-log2_psi.max(log2_omega)).clamp(0.0, n_out))
}

fn check_exponent(false_positive_exponent: f64) -> Result<()> {
    if !(false_positive_exponent.is_finite() && false_positive_exponent >= 1.0) {
        return Err(AisError::InvalidParameter {
            name: "false_positive_exponent",
            reason: format!("must be finite and at least 1, got {false_positive_exponent}"),
        });
    }
    Ok(())
}

fn check_entropy(min_entropy_per_sample: f64) -> Result<()> {
    if !(min_entropy_per_sample > 0.0 && min_entropy_per_sample <= 1.0) {
        return Err(AisError::InvalidParameter {
            name: "min_entropy_per_sample",
            reason: format!("must be in (0, 1] for binary samples, got {min_entropy_per_sample}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn cutoffs_match_the_specification_shape() {
        assert_eq!(repetition_count_cutoff(1.0).unwrap(), 21);
        assert_eq!(repetition_count_cutoff(0.5).unwrap(), 41);
        // Lower claimed entropy means a more permissive adaptive-proportion cutoff.
        let strict = adaptive_proportion_cutoff(1.0).unwrap();
        let loose = adaptive_proportion_cutoff(0.3).unwrap();
        assert!(strict < loose);
        assert!(strict > 512 && strict < 600, "cutoff {strict}");
    }

    #[test]
    fn healthy_bits_pass_both_tests() {
        let bits = random_bits(64 * ADAPTIVE_PROPORTION_WINDOW, 21);
        assert!(repetition_count_test(&bits, 1.0).unwrap().passed);
        let outcome = adaptive_proportion_test(&bits, 1.0).unwrap();
        assert!(outcome.result.passed);
        assert_eq!(outcome.window_counts.len(), 64);
    }

    #[test]
    fn stuck_source_fails_the_repetition_count_test() {
        let mut bits = random_bits(10_000, 22);
        for bit in bits.iter_mut().skip(4000).take(30) {
            *bit = 1;
        }
        assert!(!repetition_count_test(&bits, 1.0).unwrap().passed);
    }

    #[test]
    fn biased_source_fails_the_adaptive_proportion_test() {
        let mut rng = StdRng::seed_from_u64(23);
        let bits: Vec<u8> = (0..16 * ADAPTIVE_PROPORTION_WINDOW)
            .map(|_| u8::from(rng.gen_bool(0.75)))
            .collect();
        let outcome = adaptive_proportion_test(&bits, 1.0).unwrap();
        assert!(!outcome.result.passed);
    }

    #[test]
    fn biased_source_passes_with_a_matching_entropy_claim() {
        // The same biased source is acceptable if the claimed min-entropy matches it:
        // p = 0.75 → min-entropy ≈ 0.415 bits/sample.
        let mut rng = StdRng::seed_from_u64(24);
        let bits: Vec<u8> = (0..16 * ADAPTIVE_PROPORTION_WINDOW)
            .map(|_| u8::from(rng.gen_bool(0.75)))
            .collect();
        let outcome = adaptive_proportion_test(&bits, 0.41).unwrap();
        assert!(outcome.result.passed);
    }

    #[test]
    fn conditioned_entropy_caps_at_the_narrow_width() {
        // Full-entropy input through SHA-256: output is (essentially) full entropy.
        let h = conditioned_output_entropy(512.0, 256.0, 256.0, 512.0).unwrap();
        assert!(h > 255.9 && h <= 256.0, "h = {h}");
        // Twice the output width of input entropy is the SP 800-90C full-entropy
        // regime; the accounted output must be ≈ n_out.
        let h = conditioned_output_entropy(1024.0, 256.0, 256.0, 512.0).unwrap();
        assert!(h > 255.0, "h = {h}");
    }

    #[test]
    fn conditioning_cannot_create_entropy() {
        for &h_in in &[1.0, 10.0, 37.9, 100.0, 255.0] {
            let h_out = conditioned_output_entropy(512.0, 256.0, 256.0, h_in).unwrap();
            assert!(h_out <= h_in + 1e-9, "h_in {h_in} → h_out {h_out}");
            assert!(h_out > 0.0);
        }
    }

    #[test]
    fn conditioned_entropy_is_monotone_in_input_entropy() {
        let mut prev = 0.0;
        for i in 1..=50 {
            let h_in = 512.0 * i as f64 / 50.0;
            let h_out = conditioned_output_entropy(512.0, 256.0, 256.0, h_in).unwrap();
            assert!(h_out + 1e-9 >= prev, "h_in {h_in}: {h_out} < {prev}");
            prev = h_out;
        }
        assert!(prev > 255.9);
    }

    #[test]
    fn deep_conditioners_stay_finite() {
        // n_in of several thousand bits must not overflow the log2-space evaluation.
        let h = conditioned_output_entropy(16_384.0, 256.0, 256.0, 16_000.0).unwrap();
        assert!(h > 255.9 && h <= 256.0, "h = {h}");
        let h = conditioned_output_entropy(16_384.0, 256.0, 256.0, 10.0).unwrap();
        assert!(h > 0.0 && h <= 10.0, "h = {h}");
    }

    #[test]
    fn conditioned_entropy_validation() {
        assert!(conditioned_output_entropy(0.0, 256.0, 256.0, 1.0).is_err());
        assert!(conditioned_output_entropy(512.0, 0.0, 256.0, 1.0).is_err());
        assert!(conditioned_output_entropy(512.0, 256.0, 0.0, 1.0).is_err());
        assert!(conditioned_output_entropy(512.0, 256.0, 256.0, 0.0).is_err());
        assert!(conditioned_output_entropy(512.0, 256.0, 256.0, 513.0).is_err());
        assert!(conditioned_output_entropy(512.0, 256.0, 256.0, f64::NAN).is_err());
    }

    #[test]
    fn error_paths() {
        assert!(repetition_count_cutoff(0.0).is_err());
        assert!(repetition_count_cutoff(1.5).is_err());
        assert!(repetition_count_test(&[], 1.0).is_err());
        assert!(adaptive_proportion_test(&random_bits(100, 1), 1.0).is_err());
        assert!(repetition_count_test(&[0, 1, 2], 1.0).is_err());
    }
}
