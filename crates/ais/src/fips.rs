//! FIPS 140-2 style single-block tests on a 20 000-bit sample.
//!
//! These are the classical power-up tests many hardware RNGs still embed.  They overlap
//! with AIS 31 Procedure A but use the FIPS 140-2 acceptance regions, which are slightly
//! different; keeping both lets the battery report either compliance view.

use crate::bits::{blocks_as_integers, count_ones, ensure_bit_len, run_lengths};
use crate::{Result, TestResult};

/// Number of bits consumed by each FIPS test.
pub const FIPS_BLOCK_BITS: usize = 20_000;

/// FIPS monobit test: the number of ones must lie in `(9725, 10275)`.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn monobit(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, FIPS_BLOCK_BITS)?;
    let ones = count_ones(&bits[..FIPS_BLOCK_BITS])? as f64;
    Ok(TestResult::new(
        "FIPS monobit",
        ones,
        ones > 9725.0 && ones < 10275.0,
        "9725 < ones < 10275",
    ))
}

/// FIPS poker test: statistic over 5000 4-bit blocks accepted in `(2.16, 46.17)`.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn poker(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, FIPS_BLOCK_BITS)?;
    let blocks = blocks_as_integers(&bits[..FIPS_BLOCK_BITS], 4)?;
    let mut counts = [0u64; 16];
    for b in blocks {
        counts[b as usize] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c * c) as f64).sum();
    let statistic = 16.0 / 5000.0 * sum_sq - 5000.0;
    Ok(TestResult::new(
        "FIPS poker",
        statistic,
        statistic > 2.16 && statistic < 46.17,
        "2.16 < X < 46.17",
    ))
}

/// Acceptance intervals of the FIPS runs test for run lengths 1–5 and ≥6.
pub const FIPS_RUN_BOUNDS: [(u64, u64); 6] = [
    (2343, 2657),
    (1135, 1365),
    (542, 708),
    (251, 373),
    (111, 201),
    (111, 201),
];

/// FIPS runs test.
///
/// The statistic is the number of violated intervals (0 when the test passes).
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn runs(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, FIPS_BLOCK_BITS)?;
    let window = &bits[..FIPS_BLOCK_BITS];
    let mut counts = [[0u64; 6]; 2];
    let run_list = run_lengths(window)?;
    let mut value = window[0] as usize;
    for len in run_list {
        counts[value][len.min(6) - 1] += 1;
        value ^= 1;
    }
    let mut violations = 0u64;
    for value_counts in &counts {
        for (idx, &(lo, hi)) in FIPS_RUN_BOUNDS.iter().enumerate() {
            let c = value_counts[idx];
            if c < lo || c > hi {
                violations += 1;
            }
        }
    }
    Ok(TestResult::new(
        "FIPS runs",
        violations as f64,
        violations == 0,
        "all 12 run-length counts inside the FIPS intervals",
    ))
}

/// FIPS long-run test: no run of 26 or more identical bits.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn long_run(bits: &[u8]) -> Result<TestResult> {
    ensure_bit_len(bits, FIPS_BLOCK_BITS)?;
    let longest = run_lengths(&bits[..FIPS_BLOCK_BITS])?
        .into_iter()
        .max()
        .unwrap_or(0);
    Ok(TestResult::new(
        "FIPS long run",
        longest as f64,
        longest < 26,
        "longest run < 26",
    ))
}

/// Runs the four FIPS tests on one block.
///
/// # Errors
///
/// Returns an error when fewer than 20 000 bits are provided.
pub fn run_all(bits: &[u8]) -> Result<Vec<TestResult>> {
    Ok(vec![
        monobit(bits)?,
        poker(bits)?,
        runs(bits)?,
        long_run(bits)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn random_bits_pass_all_fips_tests() {
        let bits = random_bits(FIPS_BLOCK_BITS, 11);
        for result in run_all(&bits).unwrap() {
            assert!(
                result.passed,
                "{} failed ({})",
                result.name, result.statistic
            );
        }
    }

    #[test]
    fn constant_bits_fail_every_test() {
        let bits = vec![1u8; FIPS_BLOCK_BITS];
        let results = run_all(&bits).unwrap();
        assert!(results.iter().all(|r| !r.passed));
    }

    #[test]
    fn fips_bounds_are_tighter_than_ais_t1() {
        // A bias that squeaks past AIS T1 (9654) can still fail the FIPS monobit bound.
        let mut bits = random_bits(FIPS_BLOCK_BITS, 12);
        // Force exactly 9700 ones.
        let mut ones: usize = bits.iter().map(|&b| b as usize).sum();
        let mut i = 0;
        while ones > 9700 {
            if bits[i] == 1 {
                bits[i] = 0;
                ones -= 1;
            }
            i += 1;
        }
        while ones < 9700 {
            if bits[i] == 0 {
                bits[i] = 1;
                ones += 1;
            }
            i += 1;
        }
        assert!(crate::procedure_a::t1_monobit(&bits).unwrap().passed);
        assert!(!monobit(&bits).unwrap().passed);
    }

    #[test]
    fn long_run_boundary() {
        let mut bits = random_bits(FIPS_BLOCK_BITS, 13);
        for bit in bits.iter_mut().skip(100).take(26) {
            *bit = 0;
        }
        // Make sure the surrounding bits do not extend the run.
        bits[99] = 1;
        bits[126] = 1;
        assert!(!long_run(&bits).unwrap().passed);
    }

    #[test]
    fn too_short_sequences_are_rejected() {
        assert!(monobit(&[0, 1, 0]).is_err());
        assert!(run_all(&[1; 1000]).is_err());
    }
}
