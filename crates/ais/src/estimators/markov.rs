//! Markov estimate (SP 800-90B §6.3.3).
//!
//! Models the bit sequence as a first-order binary Markov chain, estimates the
//! initial and transition probabilities from the observed counts, and bounds the
//! probability of the most likely 128-sample path.  Six candidate paths exhaust the
//! maximum for a two-state chain: the two constant runs, the two alternating
//! phases, and the two one-switch paths.
//!
//! This is the first estimator in the battery that *sees dependence*: a source whose
//! jitter realizations are correlated (the paper's flicker regime) shows inflated
//! `P_{00}`/`P_{11}` transition probabilities, and the most likely path probability
//! grows accordingly — exactly the effect an independence-assuming model misses.

use crate::bits::ensure_bits;
use crate::Result;

use super::{ensure_min_len, EstimatorResult};

/// Path length over which the most likely sequence probability is evaluated.
const PATH_SAMPLES: u32 = 128;

/// Runs the Markov estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error for sequences shorter than 2 bits or containing non-bit values.
pub fn markov_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    ensure_bits(bits)?;
    ensure_min_len(bits, 2)?;
    let ones: usize = bits.iter().map(|&b| b as usize).sum();
    let mut pairs = [[0u64; 2]; 2];
    for w in bits.windows(2) {
        pairs[w[0] as usize][w[1] as usize] += 1;
    }
    Ok(markov_result_from_counts(ones, bits.len(), pairs))
}

/// The estimate from maintained ones and transition-pair counts — the
/// sliding-window audit updates both in O(delta) per slide and calls this,
/// byte-for-byte the same arithmetic as [`markov_estimate`] on the materialized
/// window.
pub(crate) fn markov_result_from_counts(
    ones: usize,
    n: usize,
    pairs: [[u64; 2]; 2],
) -> EstimatorResult {
    debug_assert!(n >= 2 && ones <= n);
    let p1 = ones as f64 / n as f64;
    let p0 = 1.0 - p1;
    let from0 = pairs[0][0] + pairs[0][1];
    let from1 = pairs[1][0] + pairs[1][1];
    // A state never left from contributes probability-0 transitions; the candidate
    // paths through it then score 0, which is the correct degenerate reading.
    let t = |row: u64, count: u64| {
        if row == 0 {
            0.0
        } else {
            count as f64 / row as f64
        }
    };
    let p00 = t(from0, pairs[0][0]);
    let p01 = t(from0, pairs[0][1]);
    let p10 = t(from1, pairs[1][0]);
    let p11 = t(from1, pairs[1][1]);

    // log2-probability of the six candidate most-likely 128-sample paths; log space
    // keeps 127 multiplications of sub-unity probabilities from underflowing.
    let log2 = |p: f64| if p > 0.0 { p.log2() } else { f64::NEG_INFINITY };
    let half = (PATH_SAMPLES / 2) as f64; // 64 alternations...
    let half_less = half - 1.0; // ...and 63 back-transitions.
    let path = (PATH_SAMPLES - 1) as f64;
    let candidates = [
        ("0…0", log2(p0) + path * log2(p00)),
        ("0101…", log2(p0) + half * log2(p01) + half_less * log2(p10)),
        ("011…1", log2(p0) + log2(p01) + (path - 1.0) * log2(p11)),
        ("100…0", log2(p1) + log2(p10) + (path - 1.0) * log2(p00)),
        ("1010…", log2(p1) + half * log2(p10) + half_less * log2(p01)),
        ("1…1", log2(p1) + path * log2(p11)),
    ];
    let (label, log2_p_max) = candidates
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("six candidates");
    let h = (-log2_p_max / PATH_SAMPLES as f64).clamp(0.0, 1.0);
    EstimatorResult::new(
        "markov",
        h,
        format!(
            "P0 {p0:.4}, P00 {p00:.4}, P11 {p11:.4}, max path {label} \
             (log2 p {log2_p_max:.2})"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ideal_bits_assess_near_one() {
        let mut rng = StdRng::seed_from_u64(21);
        let bits: Vec<u8> = (0..1 << 15).map(|_| rng.gen_range(0..=1)).collect();
        let h = markov_estimate(&bits).unwrap().h_per_bit;
        assert!(h > 0.97, "ideal assessed {h}");
    }

    #[test]
    fn sticky_chain_is_caught() {
        // P(stay) = 0.9: per-step min-entropy is −log2(0.9) ≈ 0.152 in the limit.
        let mut rng = StdRng::seed_from_u64(22);
        let mut bits = vec![0u8];
        for _ in 1..1 << 15 {
            let prev = *bits.last().unwrap();
            bits.push(if rng.gen_bool(0.9) { prev } else { 1 - prev });
        }
        let h = markov_estimate(&bits).unwrap().h_per_bit;
        assert!(h < 0.25, "sticky chain assessed {h}");
        assert!(h > 0.1, "sticky chain assessed {h}");
    }

    #[test]
    fn alternating_bits_assess_near_zero() {
        let bits: Vec<u8> = (0..4096).map(|i| (i % 2) as u8).collect();
        let result = markov_estimate(&bits).unwrap();
        assert!(result.h_per_bit < 0.02, "{}", result.detail);
        assert!(result.detail.contains("0101") || result.detail.contains("1010"));
    }

    #[test]
    fn hand_computed_small_case() {
        // 0,0,1,0,0,1,0,0,1,…: P0 = 2/3, P00 = 1/2, P01 = 1/2, P10 = 1.
        let bits: Vec<u8> = (0..999).map(|i| u8::from(i % 3 == 2)).collect();
        let result = markov_estimate(&bits).unwrap();
        // Best path alternates 64×(01) at (1/2·1)^… : log2 = log2(2/3) + 64·log2(1/2).
        // The constant-zero path scores log2(2/3) + 127·log2(1/2) — worse.  The
        // 0101… path: log2(2/3) + 64·log2(1/2) + 63·log2(1) = −64.585.
        let expected = (-((2.0f64 / 3.0).log2() + 64.0 * (0.5f64).log2())) / 128.0;
        assert!(
            (result.h_per_bit - expected).abs() < 1e-9,
            "{} vs {expected}",
            result.h_per_bit
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(markov_estimate(&[1]).is_err());
        assert!(markov_estimate(&[0, 1, 7]).is_err());
    }
}
