//! Suffix-array machinery for the tuple estimators (SP 800-90B §6.3.5 / §6.3.6).
//!
//! The t-tuple and LRS estimates need, for every tuple width `w`, the highest
//! occurrence count of any `w`-bit substring and the number of colliding substring
//! pairs.  The original implementation re-scanned the sequence once per width with
//! a rolling hash map — `O(w_max·n)` with a heavy constant (hashing, allocation) —
//! which made the tuple pair ~86 % of the whole battery cost.  This module builds
//! a **suffix array** (SA-IS, linear time, hand-rolled on `std` only) plus its
//! **LCP array** (Kasai) once; every per-width statistic then falls out of a cheap
//! linear scan over two integer arrays:
//!
//! * substrings of width `w` correspond to suffixes of length ≥ `w`, grouped by
//!   their first `w` bits — in suffix-array order such a group is a contiguous run
//!   of entries whose pairwise LCP is ≥ `w`,
//! * the run lengths are exactly the tuple occurrence counts, so the per-width
//!   maximum count and `Σ C(count, 2)` collision pairs are one pass over the LCP
//!   array, and the longest repeated substring is simply the maximum LCP value.
//!
//! The counts are *identical integers* to the hash-map scan's (not merely close),
//! so the estimates derived from them match bit for bit; the equivalence tests in
//! [`super::tuple`] pin that down against the retained reference scan.

/// Sentinel-free suffix array of a bit sequence (values `0`/`1`), built with the
/// SA-IS induced-sorting algorithm in `O(n)` time.
///
/// `sa[j]` is the start position of the `j`-th suffix in lexicographic order.
/// The caller must have validated that every sample is a bit.
pub fn suffix_array(bits: &[u8]) -> Vec<u32> {
    if bits.is_empty() {
        return Vec::new();
    }
    // Shift the alphabet up by one and append the unique smallest sentinel SA-IS
    // requires; its suffix sorts first and is stripped from the result.
    let mut text: Vec<usize> = Vec::with_capacity(bits.len() + 1);
    text.extend(bits.iter().map(|&b| b as usize + 1));
    text.push(0);
    let sa = sais(&text, 3);
    sa.into_iter().skip(1).map(|i| i as u32).collect()
}

/// Kasai's linear-time LCP construction.
///
/// `lcp[j]` is the length of the longest common prefix of the suffixes at
/// `sa[j - 1]` and `sa[j]` (`lcp[0]` is 0).
pub fn lcp_array(bits: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = bits.len();
    debug_assert_eq!(sa.len(), n);
    let mut rank = vec![0u32; n];
    for (j, &i) in sa.iter().enumerate() {
        rank[i as usize] = j as u32;
    }
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r > 0 {
            let j = sa[r - 1] as usize;
            while i + h < n && j + h < n && bits[i + h] == bits[j + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

/// Per-width tuple statistics read off a suffix/LCP array pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthStats {
    /// Highest occurrence count of any tuple of this width.
    pub max_count: u32,
    /// `Σ C(count, 2)` over all tuples of this width (exact: every term and the
    /// sum stay far below 2⁵³).
    pub collision_pairs: f64,
}

/// Scans the suffix/LCP arrays for the statistics of one tuple width.
///
/// A width-`w` tuple group is a maximal run of suffix-array entries that (a) are
/// long enough to contain a `w`-bit window (`n − sa[j] ≥ w`) and (b) share an LCP
/// of at least `w` with their predecessor.  Short suffixes break runs correctly:
/// the LCP through a suffix of length < `w` is necessarily < `w`.
pub fn width_stats(sa: &[u32], lcp: &[u32], n: usize, width: usize) -> WidthStats {
    let mut max_count = 0u32;
    let mut collision_pairs = 0.0f64;
    let mut run = 0u32;
    let w = width as u32;
    let flush = |run: u32, max_count: &mut u32, pairs: &mut f64| {
        if run > 1 {
            *max_count = (*max_count).max(run);
            *pairs += run as f64 * (run as f64 - 1.0) / 2.0;
        } else if run == 1 {
            *max_count = (*max_count).max(1);
        }
    };
    for j in 0..n {
        if n - (sa[j] as usize) < width {
            flush(run, &mut max_count, &mut collision_pairs);
            run = 0;
        } else if run > 0 && lcp[j] >= w {
            run += 1;
        } else {
            flush(run, &mut max_count, &mut collision_pairs);
            run = 1;
        }
    }
    flush(run, &mut max_count, &mut collision_pairs);
    WidthStats {
        max_count,
        collision_pairs,
    }
}

const EMPTY: usize = usize::MAX;

/// SA-IS over `text`, which must end with a unique smallest sentinel value and
/// draw its values from `0..k`.  Returns the full suffix array (sentinel first).
fn sais(text: &[usize], k: usize) -> Vec<usize> {
    let n = text.len();
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        return vec![1, 0];
    }

    // S/L type classification, right to left (true = S-type).
    let mut stype = vec![false; n];
    stype[n - 1] = true;
    for i in (0..n - 1).rev() {
        stype[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && stype[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && stype[i] && !stype[i - 1];

    let mut bucket = vec![0usize; k];
    for &c in text {
        bucket[c] += 1;
    }

    // Pass 1: drop LMS suffixes at their bucket tails (arbitrary order), induce.
    let mut sa = vec![EMPTY; n];
    {
        let mut tails = bucket_tails(&bucket);
        for i in 1..n {
            if is_lms(i) {
                tails[text[i]] -= 1;
                sa[tails[text[i]]] = i;
            }
        }
    }
    induce(&mut sa, text, &stype, &bucket);

    // The LMS suffixes are now in their final relative order *as substrings*;
    // name each distinct LMS substring to build the reduced problem.
    let lms_count = (1..n).filter(|&i| is_lms(i)).count();
    let mut lms_sorted = Vec::with_capacity(lms_count);
    lms_sorted.extend(sa.iter().copied().filter(|&i| i != EMPTY && is_lms(i)));

    let mut names = vec![EMPTY; n];
    let mut name = 0usize;
    names[lms_sorted[0]] = 0;
    for pair in lms_sorted.windows(2) {
        if !lms_substrings_equal(text, &stype, pair[0], pair[1]) {
            name += 1;
        }
        names[pair[1]] = name;
    }

    // Sort the LMS suffixes: recurse when substrings repeat, read off otherwise.
    let lms_positions: Vec<usize> = (1..n).filter(|&i| is_lms(i)).collect();
    let lms_order: Vec<usize> = if name + 1 < lms_count {
        let reduced: Vec<usize> = lms_positions.iter().map(|&i| names[i]).collect();
        let reduced_sa = sais(&reduced, name + 1);
        reduced_sa.into_iter().map(|r| lms_positions[r]).collect()
    } else {
        lms_sorted
    };

    // Pass 2: seed the buckets with the fully sorted LMS suffixes and re-induce.
    sa.fill(EMPTY);
    {
        let mut tails = bucket_tails(&bucket);
        for &i in lms_order.iter().rev() {
            tails[text[i]] -= 1;
            sa[tails[text[i]]] = i;
        }
    }
    induce(&mut sa, text, &stype, &bucket);
    sa
}

fn bucket_heads(bucket: &[usize]) -> Vec<usize> {
    let mut heads = Vec::with_capacity(bucket.len());
    let mut sum = 0usize;
    for &count in bucket {
        heads.push(sum);
        sum += count;
    }
    heads
}

fn bucket_tails(bucket: &[usize]) -> Vec<usize> {
    let mut tails = Vec::with_capacity(bucket.len());
    let mut sum = 0usize;
    for &count in bucket {
        sum += count;
        tails.push(sum);
    }
    tails
}

/// Induced sorting: a left-to-right pass places the L-type suffixes, a
/// right-to-left pass the S-type suffixes (overwriting the seeds).
fn induce(sa: &mut [usize], text: &[usize], stype: &[bool], bucket: &[usize]) {
    let n = text.len();
    let mut heads = bucket_heads(bucket);
    for j in 0..n {
        let i = sa[j];
        if i != EMPTY && i > 0 && !stype[i - 1] {
            let c = text[i - 1];
            sa[heads[c]] = i - 1;
            heads[c] += 1;
        }
    }
    let mut tails = bucket_tails(bucket);
    for j in (0..n).rev() {
        let i = sa[j];
        if i != EMPTY && i > 0 && stype[i - 1] {
            let c = text[i - 1];
            tails[c] -= 1;
            sa[tails[c]] = i - 1;
        }
    }
}

/// Whether the LMS substrings starting at `a` and `b` are identical (same values
/// *and* same type pattern up to and including the next LMS position).
fn lms_substrings_equal(text: &[usize], stype: &[bool], a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    let is_lms = |i: usize| i > 0 && stype[i] && !stype[i - 1];
    let n = text.len();
    let mut d = 0usize;
    loop {
        // The sentinel is unique, so value comparison fails before either cursor
        // can run past the end of the text.
        if a + d >= n || b + d >= n || text[a + d] != text[b + d] {
            return false;
        }
        if d > 0 {
            let lms_a = is_lms(a + d);
            let lms_b = is_lms(b + d);
            if lms_a != lms_b {
                return false;
            }
            if lms_a && lms_b {
                return true;
            }
        }
        d += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// O(n² log n) reference: sort the suffixes outright.
    fn naive_suffix_array(bits: &[u8]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..bits.len() as u32).collect();
        sa.sort_by(|&a, &b| bits[a as usize..].cmp(&bits[b as usize..]));
        sa
    }

    fn naive_lcp(bits: &[u8], sa: &[u32]) -> Vec<u32> {
        let mut lcp = vec![0u32; sa.len()];
        for j in 1..sa.len() {
            let a = &bits[sa[j - 1] as usize..];
            let b = &bits[sa[j] as usize..];
            lcp[j] = a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32;
        }
        lcp
    }

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn matches_naive_sort_on_structured_and_random_inputs() {
        let cases: Vec<Vec<u8>> = vec![
            vec![0],
            vec![1],
            vec![0, 0],
            vec![1, 0],
            vec![0, 1, 1, 0, 1, 1, 0],
            vec![0; 64],
            vec![1; 64],
            (0..64).map(|i| (i % 2) as u8).collect(),
            random_bits(257, 1),
            random_bits(1024, 2),
            random_bits(4096, 3),
        ];
        for bits in cases {
            let sa = suffix_array(&bits);
            assert_eq!(sa, naive_suffix_array(&bits), "input {bits:?}");
            let lcp = lcp_array(&bits, &sa);
            assert_eq!(lcp, naive_lcp(&bits, &sa), "lcp of {bits:?}");
        }
    }

    #[test]
    fn empty_input_yields_empty_arrays() {
        assert!(suffix_array(&[]).is_empty());
    }

    #[test]
    fn width_stats_match_hand_counts() {
        // 0 1 1 0 1 1 0: four 1-tuples of value 1, three of value 0;
        // 2-tuples: 01×2, 11×2, 10×2 → max 2, pairs 3·C(2,2) = 3.
        let bits = [0u8, 1, 1, 0, 1, 1, 0];
        let sa = suffix_array(&bits);
        let lcp = lcp_array(&bits, &sa);
        let ones = width_stats(&sa, &lcp, bits.len(), 1);
        assert_eq!(ones.max_count, 4);
        assert!((ones.collision_pairs - 9.0).abs() < 1e-12);
        let pairs = width_stats(&sa, &lcp, bits.len(), 2);
        assert_eq!(pairs.max_count, 2);
        assert!((pairs.collision_pairs - 3.0).abs() < 1e-12);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn suffix_and_lcp_arrays_match_naive(
                bits in proptest::collection::vec(0u8..=1, 1..300),
            ) {
                let sa = suffix_array(&bits);
                prop_assert_eq!(&sa, &naive_suffix_array(&bits));
                let lcp = lcp_array(&bits, &sa);
                prop_assert_eq!(lcp, naive_lcp(&bits, &sa));
            }
        }
    }
}
