//! Prediction estimates: MultiMCW and lag (SP 800-90B §6.3.7 / §6.3.8).
//!
//! Each estimator runs a family of subpredictors over the sequence, lets a
//! scoreboard promote whichever subpredictor has been most accurate so far, and
//! converts both the *global* accuracy and the *longest run* of correct predictions
//! into probability bounds — the final estimate takes the larger (more pessimistic)
//! of the two:
//!
//! * **MultiMCW** predicts the most common value in sliding windows of 63, 255,
//!   1023 and 4095 samples — it punishes slow drift and bias,
//! * **lag** predicts the sample seen `d` positions ago for `d = 1..=128` — it
//!   punishes periodicity and the slow phase wander a flicker-dominated oscillator
//!   exhibits (the paper's dependent-jitter regime).
//!
//! The run-based *local* bound solves the spec's longest-run equation
//! `0.99 = (1 − p·x) / ((r + 1 − r·x)·q·x^{N+1})` where `x` is the root of
//! `1 = x − q·pʳ·x^{r+1}` — the probability that `N` Bernoulli(p) trials contain no
//! run of `r` successes.

use crate::bits::ensure_bits;
use crate::Result;

use super::{
    ensure_min_len, min_entropy_from_probability, upper_probability_bound, EstimatorResult,
};

/// Sliding-window sizes of the MultiMCW subpredictors (spec values).
const MCW_WINDOWS: [usize; 4] = [63, 255, 1023, 4095];

/// Number of lag subpredictors (spec value).
const LAG_DEPTH: usize = 128;

/// Running tally of a prediction estimator's global performance.
#[derive(Debug, Default)]
struct Tally {
    predictions: u64,
    correct: u64,
    run: u64,
    longest_run: u64,
}

impl Tally {
    fn record(&mut self, correct: bool) {
        self.predictions += 1;
        if correct {
            self.correct += 1;
            self.run += 1;
            self.longest_run = self.longest_run.max(self.run);
        } else {
            self.run = 0;
        }
    }

    fn finish(&self, name: &str) -> EstimatorResult {
        let n = self.predictions;
        let p_global = self.correct as f64 / n as f64;
        let p_global_u = if self.correct == 0 {
            1.0 - 0.01f64.powf(1.0 / n as f64)
        } else if self.correct == n {
            // Every prediction correct: the bound is 1 outright (and the n = 1
            // corner must not reach the (n − 1) divisor in the CI formula).
            1.0
        } else {
            upper_probability_bound(p_global, n as usize)
        };
        let r = self.longest_run + 1;
        let p_local = local_probability_bound(r, n);
        let p = p_global_u.max(p_local);
        let h = min_entropy_from_probability(p);
        EstimatorResult::new(
            name,
            h,
            format!(
                "{}/{} correct, run {}, P_global' {p_global_u:.6}, P_local {p_local:.6}",
                self.correct, n, self.longest_run
            ),
        )
    }
}

/// Probability that `n` Bernoulli(`p`) trials contain **no** run of `r` successes
/// (Feller's generating-function root, evaluated in log space).
fn no_run_probability(p: f64, r: u64, n: u64) -> f64 {
    if p <= 0.0 {
        return 1.0; // No successes at all: every run length is absent.
    }
    if p >= 1.0 {
        return 0.0; // Every trial succeeds: the run is certain (r ≤ n here).
    }
    let q = 1.0 - p;
    // Smallest root above 1 of f(x) = x − 1 − q·p^r·x^{r+1} = 0.  f(1) < 0 and f
    // peaks at x* = ((r+1)·q·p^r)^{−1/r}; when even the peak is negative the two
    // roots have merged and a run of r is (numerically) certain.  Bisection on
    // [1, x*] is robust where the spec's fixed-point iteration stalls (its
    // contraction rate approaches 1 near p = 1/2, r = 1).
    let qpr = q * p.powf(r as f64);
    let f = |x: f64| x - 1.0 - qpr * x.powf(r as f64 + 1.0);
    let peak = ((r as f64 + 1.0) * qpr).powf(-1.0 / r as f64);
    if !peak.is_finite() || peak <= 1.0 || f(peak) < 0.0 {
        return 0.0;
    }
    let (mut lo, mut hi) = (1.0f64, peak);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let x = 0.5 * (lo + hi);
    let numerator = 1.0 - p * x;
    let denominator = (r as f64 + 1.0 - r as f64 * x) * q;
    if !(numerator > 0.0 && denominator > 0.0 && x > 0.0) {
        // Degenerate corner (extreme p): a run of r is essentially certain.
        return 0.0;
    }
    ((numerator / denominator).ln() - (n as f64 + 1.0) * x.ln()).exp()
}

/// The spec's local bound: the largest `p` whose longest-run distribution leaves
/// 99 % probability on "no run of `r` correct predictions in `n` trials".
fn local_probability_bound(r: u64, n: u64) -> f64 {
    if r > n {
        // Every prediction was correct: the run statistic carries no upper bound
        // beyond the global one.
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if no_run_probability(mid, r, n) > 0.99 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Runs the MultiMCW prediction estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error for sequences shorter than 65 bits or containing non-bit
/// values.
pub fn multi_mcw_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    ensure_bits(bits)?;
    ensure_min_len(bits, MCW_WINDOWS[0] + 2)?;
    let mut ones = [0u64; MCW_WINDOWS.len()];
    let mut scoreboard = [0u64; MCW_WINDOWS.len()];
    let mut winner = 0usize;
    let mut tally = Tally::default();

    for (i, &bit) in bits.iter().enumerate() {
        if i >= MCW_WINDOWS[0] {
            // Subpredictor j predicts the most common value of its (full) window;
            // ties go to the most recent sample.
            let predict = |j: usize| -> Option<u8> {
                let window = MCW_WINDOWS[j];
                if i < window {
                    return None;
                }
                let one_count = ones[j];
                let zero_count = window as u64 - one_count;
                Some(match one_count.cmp(&zero_count) {
                    std::cmp::Ordering::Greater => 1,
                    std::cmp::Ordering::Less => 0,
                    std::cmp::Ordering::Equal => bits[i - 1],
                })
            };
            tally.record(predict(winner) == Some(bit));
            for j in 0..MCW_WINDOWS.len() {
                if predict(j) == Some(bit) {
                    scoreboard[j] += 1;
                    if scoreboard[j] >= scoreboard[winner] {
                        winner = j;
                    }
                }
            }
        }
        // Slide every window forward over the just-observed sample.
        for (j, &window) in MCW_WINDOWS.iter().enumerate() {
            ones[j] += bit as u64;
            if i >= window {
                ones[j] -= bits[i - window] as u64;
            }
        }
    }
    Ok(tally.finish("multi-mcw"))
}

/// Runs the lag prediction estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error for sequences shorter than 2 bits or containing non-bit
/// values.
pub fn lag_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    ensure_bits(bits)?;
    ensure_min_len(bits, 2)?;
    let mut scoreboard = [0u64; LAG_DEPTH];
    let mut winner = 0usize;
    let mut tally = Tally::default();
    // The last 128 bits, newest at bit 0: `history` bit `j` is `bits[i - (j + 1)]`,
    // i.e. subpredictor `j`'s prediction.  Iterating the *set* bits of the
    // correct-prediction mask in ascending order visits exactly the `j`s the naive
    // per-lag loop updates, in the same order — the winner promotion (`>=` against
    // the running winner) is untouched, so the estimate is bit-identical.
    let mut history: u128 = bits[0] as u128;

    for (i, &bit) in bits.iter().enumerate().skip(1) {
        let winner_lag = winner + 1;
        let prediction = if i >= winner_lag {
            Some(bits[i - winner_lag])
        } else {
            None
        };
        tally.record(prediction == Some(bit));
        let depth = i.min(LAG_DEPTH);
        let valid = if depth == LAG_DEPTH {
            u128::MAX
        } else {
            (1u128 << depth) - 1
        };
        let mut correct = (if bit == 1 { history } else { !history }) & valid;
        while correct != 0 {
            let j = correct.trailing_zeros() as usize;
            correct &= correct - 1;
            scoreboard[j] += 1;
            if scoreboard[j] >= scoreboard[winner] {
                winner = j;
            }
        }
        history = (history << 1) | bit as u128;
    }
    Ok(tally.finish("lag"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn ideal_bits_assess_high() {
        let bits = random_bits(1 << 15, 51);
        let mcw = multi_mcw_estimate(&bits).unwrap();
        let lag = lag_estimate(&bits).unwrap();
        assert!(mcw.h_per_bit > 0.9, "mcw {}", mcw.detail);
        assert!(lag.h_per_bit > 0.9, "lag {}", lag.detail);
    }

    #[test]
    fn periodic_bits_are_predicted_by_the_lag_estimator() {
        // Period 7: lag-7 predicts perfectly; the estimate collapses toward 0.
        let bits: Vec<u8> = random_bits(7, 52)
            .iter()
            .cycle()
            .take(1 << 14)
            .copied()
            .collect();
        let lag = lag_estimate(&bits).unwrap();
        assert!(
            lag.h_per_bit < 0.02,
            "periodic data assessed {}",
            lag.detail
        );
    }

    #[test]
    fn drifting_bias_is_caught_by_multi_mcw() {
        // Slowly alternating bias blocks: within each 2048-sample block the most
        // common value predicts well above chance.
        let mut rng = StdRng::seed_from_u64(53);
        let mut bits = Vec::with_capacity(1 << 15);
        for block in 0..(1usize << 15) / 2048 {
            let p = if block % 2 == 0 { 0.85 } else { 0.15 };
            bits.extend((0..2048).map(|_| u8::from(rng.gen_bool(p))));
        }
        let mcw = multi_mcw_estimate(&bits).unwrap();
        assert!(mcw.h_per_bit < 0.5, "drifting bias assessed {}", mcw.detail);
    }

    #[test]
    fn constant_bits_assess_zero() {
        let mcw = multi_mcw_estimate(&[1u8; 8192]).unwrap();
        let lag = lag_estimate(&[1u8; 8192]).unwrap();
        assert!(mcw.h_per_bit < 1e-3, "{}", mcw.detail);
        assert!(lag.h_per_bit < 1e-3, "{}", lag.detail);
    }

    #[test]
    fn no_run_probability_matches_closed_forms() {
        // r = 1: no run of one success in n trials = q^n.
        let p = 0.3f64;
        let direct = (1.0 - p).powi(20);
        let formula = no_run_probability(p, 1, 20);
        assert!((direct - formula).abs() < 1e-6, "{direct} vs {formula}");
        // Longer runs are less likely to be absent as p grows.
        assert!(no_run_probability(0.9, 3, 100) < no_run_probability(0.5, 3, 100));
    }

    #[test]
    fn local_bound_shrinks_with_more_predictions() {
        // The same longest run over more trials implies a smaller probability.
        let short = local_probability_bound(11, 1_000);
        let long = local_probability_bound(11, 100_000);
        assert!(long < short, "{long} vs {short}");
        assert!(short < 1.0 && long > 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(multi_mcw_estimate(&[0, 1]).is_err());
        assert!(lag_estimate(&[5, 1]).is_err());
    }

    #[test]
    fn minimal_inputs_with_perfect_predictions_stay_finite() {
        // Two equal bits: the single lag prediction is correct — the global bound
        // must be exactly 1 (h = 0), not a (n − 1 = 0)-divisor NaN.
        let result = lag_estimate(&[1, 1]).unwrap();
        assert_eq!(result.h_per_bit, 0.0, "{}", result.detail);
        // All-correct at larger n takes the same branch.
        let result = lag_estimate(&[0; 512]).unwrap();
        assert_eq!(result.h_per_bit, 0.0, "{}", result.detail);
    }
}
