//! Most common value estimate (SP 800-90B §6.3.1).
//!
//! The frequency of the mode, pushed to its 99 % upper confidence bound, bounds the
//! probability of the most likely sample: `H = −log2(p_u)`.  For binary sequences
//! this is the estimator that catches plain bias; everything subtler (correlation,
//! periodicity) is left to the later estimators, which is why the battery reduces by
//! the minimum.

use crate::bits::ensure_bits;
use crate::Result;

use super::{
    ensure_min_len, min_entropy_from_probability, upper_probability_bound, EstimatorResult,
};

/// Runs the most common value estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error for sequences shorter than 2 bits or containing non-bit values.
pub fn mcv_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    ensure_bits(bits)?;
    ensure_min_len(bits, 2)?;
    let ones: usize = bits.iter().map(|&b| b as usize).sum();
    Ok(mcv_result_from_counts(ones, bits.len()))
}

/// The estimate from a maintained ones count — the sliding-window audit keeps
/// `ones` incrementally and calls this per slide, byte-for-byte the same
/// arithmetic as [`mcv_estimate`] on the materialized window.
pub(crate) fn mcv_result_from_counts(ones: usize, n: usize) -> EstimatorResult {
    debug_assert!(n >= 2 && ones <= n);
    let (mode, count) = if ones * 2 >= n {
        (1u8, ones)
    } else {
        (0u8, n - ones)
    };
    let p_hat = count as f64 / n as f64;
    let p_u = upper_probability_bound(p_hat, n);
    let h = min_entropy_from_probability(p_u);
    EstimatorResult::new(
        "mcv",
        h,
        format!("mode {mode} × {count}/{n}, p̂ {p_hat:.6}, p_u {p_u:.6}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_example() {
        // 12 ones out of 20: p̂ = 0.6, p_u = 0.6 + 2.576·sqrt(0.24/19).
        let bits = [1u8, 0, 1, 1, 0, 1, 0, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0];
        let result = mcv_estimate(&bits).unwrap();
        let p_u = 0.6 + 2.576 * (0.24f64 / 19.0).sqrt();
        assert!((result.h_per_bit - (-p_u.log2())).abs() < 1e-12);
        assert!(result.detail.contains("mode 1"));
    }

    #[test]
    fn constant_sequence_assesses_zero() {
        let result = mcv_estimate(&[1u8; 100]).unwrap();
        assert_eq!(result.h_per_bit, 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(mcv_estimate(&[1]).is_err());
        assert!(mcv_estimate(&[0, 2]).is_err());
    }
}
