//! Incremental sliding-window state for the cheap battery members.
//!
//! The audit loop historically re-ran the full battery on every tumbling window.
//! With overlapping (slid) windows that is wasteful for the counting estimators:
//! MCV and Markov depend only on a ones count and a 2×2 transition-count matrix,
//! both of which a window slide perturbs by O(delta), and the collision estimate
//! depends only on the running moments of the waiting-time partition.  This module
//! maintains exactly that state in a ring buffer so a slide costs O(delta) for the
//! cheap members, leaving only the suffix-array/compression/prediction estimators
//! to recompute on the materialized window (at whatever cadence the audit policy
//! chooses — see `ptrng_engine`'s `AuditCadence`).
//!
//! # Exactness
//!
//! * **MCV, Markov** — the maintained counts are identical integers to a fresh
//!   scan of the window, and the estimates route through the same count-based
//!   cores the batch estimators use, so the results are bit-identical.
//! * **Collision** — the waiting-time partition is greedy and *left-anchored*: a
//!   fresh scan of a slid window re-anchors the partition at the new window start,
//!   which can shift every event boundary.  The streaming state instead anchors
//!   the partition at the **stream origin** and counts the events that fall fully
//!   inside the current window.  On the first (unslid) window this is exactly the
//!   batch scan; after slides it is the natural streaming reading of the same
//!   statistic (the spec's estimator is defined over a fixed sample, not a sliding
//!   one, so either anchoring is a faithful extension — the stream anchor is the
//!   one that admits O(delta) updates).  The variance uses the moments form,
//!   which differs from the two-pass form by ~1e-13 relative.

use std::collections::VecDeque;

use crate::bits::ensure_bits;
use crate::{AisError, Result};

use super::collision::collision_result_from_moments;
use super::markov::markov_result_from_counts;
use super::mcv::mcv_result_from_counts;
use super::EstimatorResult;

/// Smallest supported window: enough bits for two collision events plus a pair
/// count (the engine enforces its own, much larger, audit minimum on top).
pub const MIN_SLIDING_WINDOW_BITS: usize = 16;

/// Stream-anchored greedy collision partition (SP 800-90B §6.3.2 waiting times).
#[derive(Debug, Clone, Default)]
struct CollisionStream {
    /// Bits of the event currently being assembled (at most an unequal pair).
    pending: [u8; 2],
    pending_len: usize,
    /// Stream position where the pending event starts.
    next_start: u64,
    /// Completed events still at or past the window start: `(start, t)`.
    events: VecDeque<(u64, u8)>,
    /// Running moments over `events` — exact integers, so summation order is moot.
    count: u64,
    sum_t: u64,
    sum_t_sq: u64,
}

impl CollisionStream {
    fn push(&mut self, bit: u8) {
        match self.pending_len {
            0 => {
                self.pending[0] = bit;
                self.pending_len = 1;
            }
            1 => {
                if self.pending[0] == bit {
                    self.emit(2);
                } else {
                    self.pending[1] = bit;
                    self.pending_len = 2;
                }
            }
            _ => {
                // An unequal pair plus any third bit completes a t = 3 event.
                self.emit(3);
            }
        }
    }

    fn emit(&mut self, t: u8) {
        self.events.push_back((self.next_start, t));
        self.next_start += t as u64;
        self.pending_len = 0;
        self.count += 1;
        self.sum_t += t as u64;
        self.sum_t_sq += (t as u64) * (t as u64);
    }

    /// Drops events that start before the window, keeping the moments in sync.
    fn expire(&mut self, window_start: u64) {
        while let Some(&(start, t)) = self.events.front() {
            if start >= window_start {
                break;
            }
            self.events.pop_front();
            self.count -= 1;
            self.sum_t -= t as u64;
            self.sum_t_sq -= (t as u64) * (t as u64);
        }
    }
}

/// A sliding bit window with O(delta)-updatable counters for the cheap battery
/// members (MCV, collision, Markov).
///
/// Push bits with [`push_bits`](Self::push_bits); once [`is_full`](Self::is_full)
/// the window slides automatically (oldest bits evicted).  At any point
/// [`cheap_results`](Self::cheap_results) produces the three counting estimates
/// from the maintained state, and [`contents`](Self::contents) materializes the
/// window for the estimators that genuinely need the raw bits.
///
/// # Example
///
/// ```
/// use ptrng_ais::estimators::streaming::SlidingWindow;
///
/// # fn main() -> Result<(), ptrng_ais::AisError> {
/// let mut window = SlidingWindow::new(8192)?;
/// let bits: Vec<u8> = (0..16384).map(|i| ((i * 7 + i / 3) % 2) as u8).collect();
/// window.push_bits(&bits)?;
/// assert!(window.is_full());
/// let cheap = window.cheap_results()?;
/// assert_eq!(cheap.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    bits: VecDeque<u8>,
    /// Total bits ever pushed (stream position of the window's trailing edge).
    stream_pos: u64,
    ones: usize,
    /// Transition counts over consecutive bit pairs inside the window.
    pairs: [[u64; 2]; 2],
    collisions: CollisionStream,
}

impl SlidingWindow {
    /// Creates an empty window holding `window_bits` bits once full.
    ///
    /// # Errors
    ///
    /// Returns an error when `window_bits` is below [`MIN_SLIDING_WINDOW_BITS`].
    pub fn new(window_bits: usize) -> Result<Self> {
        if window_bits < MIN_SLIDING_WINDOW_BITS {
            return Err(AisError::InvalidParameter {
                name: "window_bits",
                reason: format!(
                    "sliding window needs at least {MIN_SLIDING_WINDOW_BITS} bits, got {window_bits}"
                ),
            });
        }
        Ok(Self {
            capacity: window_bits,
            bits: VecDeque::with_capacity(window_bits),
            stream_pos: 0,
            ones: 0,
            pairs: [[0; 2]; 2],
            collisions: CollisionStream::default(),
        })
    }

    /// Appends bits, evicting the oldest once the window is full.
    ///
    /// # Errors
    ///
    /// Returns an error when any value is not a bit.
    pub fn push_bits(&mut self, bits: &[u8]) -> Result<()> {
        ensure_bits(bits)?;
        for &bit in bits {
            if self.bits.len() == self.capacity {
                let old = self.bits.pop_front().expect("full window is non-empty");
                self.ones -= old as usize;
                if let Some(&second) = self.bits.front() {
                    self.pairs[old as usize][second as usize] -= 1;
                }
            }
            if let Some(&last) = self.bits.back() {
                self.pairs[last as usize][bit as usize] += 1;
            }
            self.bits.push_back(bit);
            self.ones += bit as usize;
            self.collisions.push(bit);
            self.stream_pos += 1;
        }
        self.collisions.expire(self.window_start());
        Ok(())
    }

    /// Stream position of the window's leading (oldest) edge.
    fn window_start(&self) -> u64 {
        self.stream_pos - self.bits.len() as u64
    }

    /// Bits currently held.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the window holds no bits yet.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether the window has reached capacity (further pushes slide it).
    pub fn is_full(&self) -> bool {
        self.bits.len() == self.capacity
    }

    /// Total bits ever pushed through the window.
    pub fn stream_bits(&self) -> u64 {
        self.stream_pos
    }

    /// Materializes the current window contents (oldest bit first) for the
    /// estimators that need the raw sequence.
    pub fn contents(&self) -> Vec<u8> {
        self.bits.iter().copied().collect()
    }

    /// The three counting estimates (MCV, collision, Markov — specification
    /// order) from the maintained state, without touching the window contents.
    ///
    /// # Errors
    ///
    /// Returns an error before the window holds [`MIN_SLIDING_WINDOW_BITS`] bits.
    pub fn cheap_results(&self) -> Result<Vec<EstimatorResult>> {
        if self.bits.len() < MIN_SLIDING_WINDOW_BITS {
            return Err(AisError::SequenceTooShort {
                len: self.bits.len(),
                needed: MIN_SLIDING_WINDOW_BITS,
            });
        }
        debug_assert!(self.collisions.count >= 2);
        Ok(vec![
            mcv_result_from_counts(self.ones, self.bits.len()),
            collision_result_from_moments(
                self.collisions.count as usize,
                self.collisions.sum_t,
                self.collisions.sum_t_sq,
            ),
            markov_result_from_counts(self.ones, self.bits.len(), self.pairs),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{collision_estimate, markov_estimate, mcv_estimate};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64, p_one: f64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| u8::from(rng.gen_bool(p_one))).collect()
    }

    /// Stream-anchored reference: greedy partition over the whole stream, events
    /// fully inside `[start, end)` counted.
    fn naive_window_events(stream: &[u8], start: usize, end: usize) -> Vec<u8> {
        let mut events = Vec::new();
        let mut i = 0usize;
        while i + 1 < stream.len() {
            let (t, step) = if stream[i] == stream[i + 1] {
                (2u8, 2usize)
            } else if i + 2 < stream.len() {
                (3, 3)
            } else {
                break;
            };
            if i >= start && i + step <= end {
                events.push(t);
            }
            i += step;
        }
        events
    }

    #[test]
    fn first_window_matches_the_batch_estimators() {
        let bits = random_bits(8192, 7, 0.5);
        let mut window = SlidingWindow::new(8192).unwrap();
        window.push_bits(&bits).unwrap();
        assert!(window.is_full());
        let cheap = window.cheap_results().unwrap();
        let mcv = mcv_estimate(&bits).unwrap();
        let collision = collision_estimate(&bits).unwrap();
        let markov = markov_estimate(&bits).unwrap();
        // MCV and Markov route through the identical count cores: exact equality.
        assert_eq!(cheap[0], mcv);
        assert_eq!(cheap[2], markov);
        // Collision differs only in the variance form (moments vs two-pass).
        assert_eq!(cheap[1].name, "collision");
        assert!(
            (cheap[1].h_per_bit - collision.h_per_bit).abs() < 1e-9,
            "{} vs {}",
            cheap[1].detail,
            collision.detail
        );
    }

    #[test]
    fn slid_window_counters_match_a_fresh_scan() {
        for (seed, p_one) in [(1u64, 0.5), (2, 0.8), (3, 0.95)] {
            let stream = random_bits(40_000, seed, p_one);
            let capacity = 8192usize;
            let mut window = SlidingWindow::new(capacity).unwrap();
            // Push in ragged chunks so slides cross chunk boundaries.
            let mut fed = 0usize;
            for chunk in stream.chunks(777) {
                window.push_bits(chunk).unwrap();
                fed += chunk.len();
                if fed < capacity {
                    continue;
                }
                let contents = window.contents();
                assert_eq!(&contents, &stream[fed - capacity..fed]);
                let cheap = window.cheap_results().unwrap();
                // MCV and Markov: exact match against a fresh scan of the window.
                assert_eq!(cheap[0], mcv_estimate(&contents).unwrap());
                assert_eq!(cheap[2], markov_estimate(&contents).unwrap());
                // Collision: exact match against the stream-anchored reference.
                let events = naive_window_events(&stream[..fed], fed - capacity, fed);
                let v = events.len();
                let sum: u64 = events.iter().map(|&t| t as u64).sum();
                let sum_sq: u64 = events.iter().map(|&t| (t as u64) * (t as u64)).sum();
                assert_eq!(window.collisions.count as usize, v);
                assert_eq!(window.collisions.sum_t, sum);
                assert_eq!(window.collisions.sum_t_sq, sum_sq);
            }
        }
    }

    #[test]
    fn partial_window_reports_its_fill_state() {
        let mut window = SlidingWindow::new(1 << 13).unwrap();
        assert!(window.is_empty());
        assert!(window.cheap_results().is_err());
        window.push_bits(&random_bits(100, 5, 0.5)).unwrap();
        assert_eq!(window.len(), 100);
        assert!(!window.is_full());
        assert!(window.cheap_results().is_ok());
        assert_eq!(window.stream_bits(), 100);
    }

    #[test]
    fn rejects_bad_parameters_and_bits() {
        assert!(SlidingWindow::new(8).is_err());
        let mut window = SlidingWindow::new(64).unwrap();
        assert!(window.push_bits(&[0, 1, 2]).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// After arbitrary pushes the maintained counters equal a fresh scan
            /// of the materialized window.
            #[test]
            fn counters_track_the_window_exactly(
                seed in 0u64..1 << 16,
                total in 64usize..3000,
                capacity in 16usize..512,
                p_one in 0.05f64..0.95,
            ) {
                let stream = random_bits(total, seed, p_one);
                let mut window = SlidingWindow::new(capacity).unwrap();
                window.push_bits(&stream).unwrap();
                let contents = window.contents();
                let expected_start = total.saturating_sub(capacity);
                prop_assert_eq!(&contents, &stream[expected_start..]);
                let ones: usize = contents.iter().map(|&b| b as usize).sum();
                prop_assert_eq!(window.ones, ones);
                let mut pairs = [[0u64; 2]; 2];
                for w in contents.windows(2) {
                    pairs[w[0] as usize][w[1] as usize] += 1;
                }
                prop_assert_eq!(window.pairs, pairs);
                let events = naive_window_events(&stream, expected_start, total);
                prop_assert_eq!(window.collisions.count as usize, events.len());
                prop_assert_eq!(
                    window.collisions.sum_t,
                    events.iter().map(|&t| t as u64).sum::<u64>()
                );
            }
        }
    }
}
