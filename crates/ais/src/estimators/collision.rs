//! Collision estimate (SP 800-90B §6.3.2).
//!
//! Walks the sequence measuring the waiting time until the first repeated value
//! (for binary samples: 2 when the pair matches, 3 otherwise), pushes the mean
//! waiting time down to its 99 % lower confidence bound, and inverts the spec's
//! expected-waiting-time formula for the most-likely-sample probability `p`.
//!
//! The inversion uses the specification's `F(1/z) = Γ(3, z)·z⁻³·e^z` form; for
//! integer shape 3 the upper incomplete gamma has the closed form
//! `Γ(3, z) = e^{−z}(z² + 2z + 2)`, so `F(q) = q + 2q² + 2q³` and the expected
//! waiting time reduces to `E[t] = 2 + 2pq` — the bisection below converges on the
//! same value the spec's formula produces, kept in its published shape for
//! auditability.

use crate::bits::ensure_bits;
use crate::Result;

use super::{ensure_min_len, min_entropy_from_probability, EstimatorResult, Z_99};

/// The specification's `F(q) = Γ(3, 1/q)·q⁻³·e^{1/q}` in closed form.
fn f_of_q(q: f64) -> f64 {
    q + 2.0 * q * q + 2.0 * q * q * q
}

/// Expected collision waiting time for most-likely-sample probability `p` (binary).
fn expected_waiting_time(p: f64) -> f64 {
    let q = 1.0 - p;
    let inv_diff = 0.5 * (1.0 / p - 1.0 / q);
    p / (q * q) * (1.0 + inv_diff) * f_of_q(q) - p / q * inv_diff
}

/// Runs the collision estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error for sequences too short to contain at least two collisions or
/// containing non-bit values.
pub fn collision_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    ensure_bits(bits)?;
    ensure_min_len(bits, 16)?;
    let (n2, n3) = collision_counts(bits);
    Ok(collision_result_from_counts(n2, n3))
}

/// Counts the collision waiting times in one pass.  Binary samples collide
/// within two (equal pair, `n2`) or three (unequal pair resolved by a third
/// sample, `n3`) samples; a trailing unequal pair without its third sample is
/// discarded, as in the spec's scan.
pub(crate) fn collision_counts(bits: &[u8]) -> (u64, u64) {
    let (mut n2, mut n3) = (0u64, 0u64);
    let mut i = 0usize;
    while i + 1 < bits.len() {
        if bits[i] == bits[i + 1] {
            n2 += 1;
            i += 2;
        } else if i + 2 < bits.len() {
            n3 += 1;
            i += 3;
        } else {
            break;
        }
    }
    (n2, n3)
}

/// The estimate from the waiting-time counts.  All binary waiting times are 2
/// or 3, so mean and variance group exactly over the two counts — the same
/// sums a per-event pass produces, without materializing the event list.
pub(crate) fn collision_result_from_counts(n2: u64, n3: u64) -> EstimatorResult {
    let v = (n2 + n3) as usize;
    debug_assert!(v >= 2, "16 bits always contain two collisions");
    let mean = (2 * n2 + 3 * n3) as f64 / v as f64;
    let (d2, d3) = (2.0 - mean, 3.0 - mean);
    let var = (n2 as f64 * d2 * d2 + n3 as f64 * d3 * d3) / (v - 1) as f64;
    result_from_mean_and_variance(v, mean, var)
}

/// The estimate from running moments of the waiting times — the sliding-window
/// audit maintains `Σt` and `Σt²` as exact integers and calls this per slide.
///
/// The moments-form variance `(Σt² − v·X̄²)/(v−1)` differs from
/// [`collision_estimate`]'s grouped-count form only through `X̄`'s rounding, a
/// relative difference around 1e-13 — far inside the battery's 1e-6 equivalence
/// gate.
pub(crate) fn collision_result_from_moments(
    v: usize,
    sum_t: u64,
    sum_t_sq: u64,
) -> EstimatorResult {
    debug_assert!(v >= 2, "the audit window always contains two collisions");
    let mean = sum_t as f64 / v as f64;
    let var = (sum_t_sq as f64 - v as f64 * mean * mean) / (v - 1) as f64;
    // Catastrophic cancellation could push a near-zero variance negative.
    result_from_mean_and_variance(v, mean, var.max(0.0))
}

fn result_from_mean_and_variance(v: usize, mean: f64, var: f64) -> EstimatorResult {
    let mean_lo = mean - Z_99 * var.sqrt() / (v as f64).sqrt();

    // E[t] peaks at 2.5 for p = 1/2 and falls toward 2 as the bias grows; a lower
    // confidence bound at or above the peak means the data is indistinguishable
    // from ideal and the estimate saturates at p = 1/2.
    let p = if mean_lo >= expected_waiting_time(0.5) {
        0.5
    } else {
        bisect_probability(mean_lo)
    };
    let h = min_entropy_from_probability(p);
    EstimatorResult::new(
        "collision",
        h,
        format!("v {v}, X̄ {mean:.6}, X̄' {mean_lo:.6}, p {p:.6}"),
    )
}

/// Solves `expected_waiting_time(p) = target` for `p ∈ [1/2, 1)` (the function is
/// strictly decreasing on that interval).
fn bisect_probability(target: f64) -> f64 {
    let (mut lo, mut hi) = (0.5f64, 1.0 - 1e-12);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if expected_waiting_time(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn waiting_time_formula_matches_the_closed_form() {
        // The spec's formula reduces to 2 + 2pq for binary samples.
        for &p in &[0.5, 0.6, 0.75, 0.9, 0.99] {
            let q = 1.0 - p;
            assert!(
                (expected_waiting_time(p) - (2.0 + 2.0 * p * q)).abs() < 1e-12,
                "p = {p}"
            );
        }
    }

    #[test]
    fn ideal_bits_assess_high_and_biased_bits_low() {
        let mut rng = StdRng::seed_from_u64(11);
        let ideal: Vec<u8> = (0..1 << 15).map(|_| rng.gen_range(0..=1)).collect();
        // The collision estimate is the battery's most conservative member: the
        // confidence slack enters p through a square root, so ideal data at 32 kbit
        // assesses ≈ 0.8 (NIST's reference tool shows the same small-n behavior).
        let high = collision_estimate(&ideal).unwrap().h_per_bit;
        assert!(high > 0.75, "ideal assessed {high}");

        let biased: Vec<u8> = (0..1 << 15).map(|_| u8::from(rng.gen_bool(0.85))).collect();
        let low = collision_estimate(&biased).unwrap().h_per_bit;
        // True min-entropy of p = 0.85 is −log2(0.85) ≈ 0.234.
        assert!(low < 0.45, "biased assessed {low}");
        assert!(low > 0.05, "biased assessed {low}");
    }

    #[test]
    fn alternating_bits_saturate_at_half() {
        // 0101…: every waiting time is 3, above the ideal mean of 2.5 → p = 1/2.
        let bits: Vec<u8> = (0..4096).map(|i| (i % 2) as u8).collect();
        let result = collision_estimate(&bits).unwrap();
        assert_eq!(result.h_per_bit, 1.0, "{}", result.detail);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(collision_estimate(&[0, 1, 0]).is_err());
        assert!(collision_estimate(&[2; 100]).is_err());
    }
}
