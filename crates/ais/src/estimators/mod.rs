//! SP 800-90B §6.3 non-IID min-entropy estimator battery.
//!
//! The workspace's entropy ledger carries a *model-backed* min-entropy claim from the
//! noise source to the emitted bytes; this module is the **black-box cross-check**: a
//! hand-rolled implementation of the NIST SP 800-90B §6.3 non-IID estimator suite for
//! binary sequences, the same battery Saarinen and Skorski use to validate (or refute)
//! stochastic-model bounds against real generator output.  The battery deliberately
//! assumes nothing about the source — in particular not the mutual independence of
//! jitter realizations — so an independence-inflated claim shows up as the battery
//! estimate falling short of the claimed value.
//!
//! Estimators (spec section in parentheses), all operating on bits (`0`/`1` bytes):
//!
//! * [`mcv_estimate`] — most common value (§6.3.1),
//! * [`collision_estimate`] — collision times (§6.3.2),
//! * [`markov_estimate`] — first-order Markov chain, 128-sample paths (§6.3.3),
//! * [`compression_estimate`] — Maurer-style compression statistic (§6.3.4),
//! * [`t_tuple_estimate`] — frequent tuples (§6.3.5),
//! * [`lrs_estimate`] — longest repeated substring (§6.3.6),
//! * [`multi_mcw_estimate`] — MultiMCW sliding-window prediction (§6.3.7),
//! * [`lag_estimate`] — lag-subpredictor prediction (§6.3.8).
//!
//! [`EstimatorBattery::run`] executes all of them; the assessed min-entropy is the
//! **battery minimum** ([`EstimatorBattery::min_entropy_estimate`], the reducer SP
//! 800-90B §3.1.3 mandates).  Note the estimators are conservative by design (every
//! point estimate is pushed to a 99 % confidence bound), so even an ideal source
//! assesses measurably below 1 bit/bit at finite sample sizes — audit policies
//! compare against `claim − margin`, see `ptrng_engine`'s `EntropyAudit`.
//!
//! # Example
//!
//! ```
//! use ptrng_ais::estimators::EstimatorBattery;
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! # fn main() -> Result<(), ptrng_ais::AisError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let bits: Vec<u8> = (0..1 << 14).map(|_| rng.gen_range(0..=1)).collect();
//! let battery = EstimatorBattery::run(&bits)?;
//! let h = battery.min_entropy_estimate();
//! assert!(h > 0.5 && h <= 1.0, "ideal bits assess high: {h}");
//! # Ok(())
//! # }
//! ```

pub mod collision;
pub mod compression;
pub mod markov;
pub mod mcv;
pub mod prediction;
pub mod tuple;

pub use collision::collision_estimate;
pub use compression::compression_estimate;
pub use markov::markov_estimate;
pub use mcv::mcv_estimate;
pub use prediction::{lag_estimate, multi_mcw_estimate};
pub use tuple::{lrs_estimate, t_tuple_and_lrs_estimates, t_tuple_estimate};

use serde::{Deserialize, Serialize};

use crate::bits::ensure_bit_len;
use crate::{AisError, Result};

/// The normal quantile the specification uses for its one-sided 99 % upper
/// confidence bounds (`Z_{0.995}`, written `2.576` throughout SP 800-90B).
pub const Z_99: f64 = 2.576;

/// Smallest sequence the full battery accepts, in bits.
///
/// The binding constraint is the compression estimate's 1000-block dictionary (6000
/// bits) plus enough test blocks for a usable variance estimate; SP 800-90B itself
/// recommends one million samples — smaller windows simply widen every confidence
/// bound, which the audit margin has to absorb.
pub const MIN_BATTERY_BITS: usize = 8192;

/// Outcome of one estimator: the assessed min-entropy per bit plus a human-readable
/// breakdown of the statistic it was derived from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorResult {
    /// Estimator name (`"mcv"`, `"collision"`, …).
    pub name: String,
    /// Assessed min-entropy per bit, in `[0, 1]`.
    pub h_per_bit: f64,
    /// Breakdown of the underlying statistic (point estimate, confidence bound, …).
    pub detail: String,
}

impl EstimatorResult {
    pub(crate) fn new(name: &str, h_per_bit: f64, detail: String) -> Self {
        Self {
            name: name.to_string(),
            h_per_bit,
            detail,
        }
    }
}

/// The full §6.3 battery: every estimator's result, reduced by the battery minimum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorBattery {
    results: Vec<EstimatorResult>,
}

impl EstimatorBattery {
    /// Runs every estimator over the bit sequence.
    ///
    /// # Errors
    ///
    /// Returns an error when the sequence is shorter than [`MIN_BATTERY_BITS`] or
    /// contains non-bit values.
    pub fn run(bits: &[u8]) -> Result<Self> {
        ensure_bit_len(bits, MIN_BATTERY_BITS)?;
        // The tuple estimators share one per-width counting scan — it is the
        // battery's dominant cost, so it runs exactly once.
        let (t_tuple, lrs) = t_tuple_and_lrs_estimates(bits)?;
        Ok(Self {
            results: vec![
                mcv_estimate(bits)?,
                collision_estimate(bits)?,
                markov_estimate(bits)?,
                compression_estimate(bits)?,
                t_tuple,
                lrs,
                multi_mcw_estimate(bits)?,
                lag_estimate(bits)?,
            ],
        })
    }

    /// The individual estimator results, in specification order.
    pub fn results(&self) -> &[EstimatorResult] {
        &self.results
    }

    /// The assessed min-entropy per bit: the **minimum** over every estimator, the
    /// reducer SP 800-90B §3.1.3 prescribes for non-IID sources.
    pub fn min_entropy_estimate(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.h_per_bit)
            .fold(f64::INFINITY, f64::min)
    }

    /// The estimator that produced the battery minimum.
    pub fn weakest(&self) -> &EstimatorResult {
        self.results
            .iter()
            .min_by(|a, b| a.h_per_bit.total_cmp(&b.h_per_bit))
            .expect("the battery always holds at least one result")
    }
}

/// The specification's 99 % upper confidence bound on a probability point estimate:
/// `p_u = min(1, p̂ + 2.576·sqrt(p̂(1−p̂)/(n−1)))`.
pub(crate) fn upper_probability_bound(p_hat: f64, n: usize) -> f64 {
    debug_assert!(n >= 2);
    (p_hat + Z_99 * (p_hat * (1.0 - p_hat) / (n - 1) as f64).sqrt()).min(1.0)
}

/// `−log2(p)` clamped into `[0, 1]` — min-entropy per binary sample.
pub(crate) fn min_entropy_from_probability(p: f64) -> f64 {
    (-p.log2()).clamp(0.0, 1.0)
}

pub(crate) fn ensure_min_len(bits: &[u8], needed: usize) -> Result<()> {
    if bits.len() < needed {
        return Err(AisError::SequenceTooShort {
            len: bits.len(),
            needed,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn battery_runs_and_reduces_to_the_minimum() {
        let bits = random_bits(1 << 14, 1);
        let battery = EstimatorBattery::run(&bits).unwrap();
        assert_eq!(battery.results().len(), 8);
        let min = battery.min_entropy_estimate();
        assert!(min > 0.0 && min <= 1.0, "min {min}");
        assert_eq!(battery.weakest().h_per_bit, min);
        for result in battery.results() {
            assert!(
                result.h_per_bit >= min,
                "{} below the reported minimum",
                result.name
            );
            assert!(!result.detail.is_empty());
        }
    }

    #[test]
    fn biased_bits_assess_below_ideal_bits() {
        let ideal = EstimatorBattery::run(&random_bits(1 << 14, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let biased: Vec<u8> = (0..1 << 14).map(|_| u8::from(rng.gen_bool(0.8))).collect();
        let battery = EstimatorBattery::run(&biased).unwrap();
        assert!(
            battery.min_entropy_estimate() < ideal.min_entropy_estimate() - 0.1,
            "biased {} vs ideal {}",
            battery.min_entropy_estimate(),
            ideal.min_entropy_estimate()
        );
    }

    #[test]
    fn battery_rejects_short_and_invalid_input() {
        assert!(matches!(
            EstimatorBattery::run(&[0, 1, 0, 1]),
            Err(AisError::SequenceTooShort { .. })
        ));
        let mut bits = random_bits(MIN_BATTERY_BITS, 4);
        bits[17] = 3;
        assert!(matches!(
            EstimatorBattery::run(&bits),
            Err(AisError::NotABit { .. })
        ));
    }

    #[test]
    fn battery_serializes_for_reports() {
        let bits = random_bits(1 << 14, 5);
        let battery = EstimatorBattery::run(&bits).unwrap();
        let value = serde::Serialize::to_value(&battery);
        let back: EstimatorBattery = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, battery);
    }

    #[test]
    fn confidence_bound_behaves() {
        assert!((upper_probability_bound(1.0, 100) - 1.0).abs() < 1e-15);
        let p = upper_probability_bound(0.5, 10_001);
        assert!(p > 0.5 && p < 0.52, "p_u {p}");
        assert_eq!(min_entropy_from_probability(0.5), 1.0);
        assert_eq!(min_entropy_from_probability(1.0), 0.0);
    }
}
