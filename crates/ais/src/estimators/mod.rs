//! SP 800-90B §6.3 non-IID min-entropy estimator battery.
//!
//! The workspace's entropy ledger carries a *model-backed* min-entropy claim from the
//! noise source to the emitted bytes; this module is the **black-box cross-check**: a
//! hand-rolled implementation of the NIST SP 800-90B §6.3 non-IID estimator suite for
//! binary sequences, the same battery Saarinen and Skorski use to validate (or refute)
//! stochastic-model bounds against real generator output.  The battery deliberately
//! assumes nothing about the source — in particular not the mutual independence of
//! jitter realizations — so an independence-inflated claim shows up as the battery
//! estimate falling short of the claimed value.
//!
//! Estimators (spec section in parentheses), all operating on bits (`0`/`1` bytes):
//!
//! * [`mcv_estimate`] — most common value (§6.3.1),
//! * [`collision_estimate`] — collision times (§6.3.2),
//! * [`markov_estimate`] — first-order Markov chain, 128-sample paths (§6.3.3),
//! * [`compression_estimate`] — Maurer-style compression statistic (§6.3.4),
//! * [`t_tuple_estimate`] — frequent tuples (§6.3.5),
//! * [`lrs_estimate`] — longest repeated substring (§6.3.6),
//! * [`multi_mcw_estimate`] — MultiMCW sliding-window prediction (§6.3.7),
//! * [`lag_estimate`] — lag-subpredictor prediction (§6.3.8).
//!
//! [`EstimatorBattery::run`] executes all of them; the assessed min-entropy is the
//! **battery minimum** ([`EstimatorBattery::min_entropy_estimate`], the reducer SP
//! 800-90B §3.1.3 mandates).  Note the estimators are conservative by design (every
//! point estimate is pushed to a 99 % confidence bound), so even an ideal source
//! assesses measurably below 1 bit/bit at finite sample sizes — audit policies
//! compare against `claim − margin`, see `ptrng_engine`'s `EntropyAudit`.
//!
//! # Example
//!
//! ```
//! use ptrng_ais::estimators::EstimatorBattery;
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! # fn main() -> Result<(), ptrng_ais::AisError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let bits: Vec<u8> = (0..1 << 14).map(|_| rng.gen_range(0..=1)).collect();
//! let battery = EstimatorBattery::run(&bits)?;
//! let h = battery.min_entropy_estimate();
//! assert!(h > 0.5 && h <= 1.0, "ideal bits assess high: {h}");
//! # Ok(())
//! # }
//! ```

pub mod collision;
pub mod compression;
pub mod markov;
pub mod mcv;
pub mod prediction;
pub mod streaming;
pub mod suffix;
pub mod tuple;

pub use collision::collision_estimate;
pub use compression::compression_estimate;
pub use markov::markov_estimate;
pub use mcv::mcv_estimate;
pub use prediction::{lag_estimate, multi_mcw_estimate};
pub use tuple::{lrs_estimate, t_tuple_and_lrs_estimates, t_tuple_estimate};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::bits::ensure_bit_len;
use crate::{AisError, Result};

/// The normal quantile the specification uses for its one-sided 99 % upper
/// confidence bounds (`Z_{0.995}`, written `2.576` throughout SP 800-90B).
pub const Z_99: f64 = 2.576;

/// Smallest sequence the full battery accepts, in bits.
///
/// The binding constraint is the compression estimate's 1000-block dictionary (6000
/// bits) plus enough test blocks for a usable variance estimate; SP 800-90B itself
/// recommends one million samples — smaller windows simply widen every confidence
/// bound, which the audit margin has to absorb.
pub const MIN_BATTERY_BITS: usize = 8192;

/// Outcome of one estimator: the assessed min-entropy per bit plus a human-readable
/// breakdown of the statistic it was derived from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorResult {
    /// Estimator name (`"mcv"`, `"collision"`, …).
    pub name: String,
    /// Assessed min-entropy per bit, in `[0, 1]`.
    pub h_per_bit: f64,
    /// Breakdown of the underlying statistic (point estimate, confidence bound, …).
    pub detail: String,
}

impl EstimatorResult {
    pub(crate) fn new(name: &str, h_per_bit: f64, detail: String) -> Self {
        Self {
            name: name.to_string(),
            h_per_bit,
            detail,
        }
    }
}

/// Wall-clock cost of one schedulable battery unit, for per-estimator histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorTiming {
    /// Unit name — one of [`BATTERY_UNIT_NAMES`].
    pub name: String,
    /// Wall-clock nanoseconds the unit took (on this run's thread).
    pub ns: u64,
}

/// The battery's schedulable units, in specification order.
///
/// The t-tuple and LRS estimates share one suffix-array construction, so they run
/// (and are timed) as a single `"t-tuple+lrs"` unit; every other estimator is its
/// own unit.  The engine's per-estimator latency histograms use these labels.
pub const BATTERY_UNIT_NAMES: [&str; 7] = [
    "mcv",
    "collision",
    "markov",
    "compression",
    "t-tuple+lrs",
    "multi-mcw",
    "lag",
];

type UnitFn = fn(&[u8]) -> Result<Vec<EstimatorResult>>;

/// The units behind [`BATTERY_UNIT_NAMES`], same order.
const BATTERY_UNITS: [UnitFn; 7] = [
    |bits| Ok(vec![mcv_estimate(bits)?]),
    |bits| Ok(vec![collision_estimate(bits)?]),
    |bits| Ok(vec![markov_estimate(bits)?]),
    |bits| Ok(vec![compression_estimate(bits)?]),
    |bits| {
        let (t_tuple, lrs) = t_tuple_and_lrs_estimates(bits)?;
        Ok(vec![t_tuple, lrs])
    },
    |bits| Ok(vec![multi_mcw_estimate(bits)?]),
    |bits| Ok(vec![lag_estimate(bits)?]),
];

/// The full §6.3 battery: every estimator's result, reduced by the battery minimum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorBattery {
    results: Vec<EstimatorResult>,
}

impl EstimatorBattery {
    /// Runs every estimator over the bit sequence.
    ///
    /// # Errors
    ///
    /// Returns an error when the sequence is shorter than [`MIN_BATTERY_BITS`] or
    /// contains non-bit values.
    pub fn run(bits: &[u8]) -> Result<Self> {
        Ok(Self::run_with_timings(bits)?.0)
    }

    /// Runs the battery and reports each unit's wall-clock cost.
    ///
    /// The seven units (see [`BATTERY_UNIT_NAMES`]) are independent, so on a
    /// multi-core host they run on a scoped thread pool sized by
    /// `available_parallelism`; on one CPU the battery degrades gracefully to a
    /// serial loop with no thread overhead.  Results come back in specification
    /// order either way, and timings are per unit regardless of scheduling.
    ///
    /// # Errors
    ///
    /// Returns an error when the sequence is shorter than [`MIN_BATTERY_BITS`] or
    /// contains non-bit values.
    pub fn run_with_timings(bits: &[u8]) -> Result<(Self, Vec<EstimatorTiming>)> {
        ensure_bit_len(bits, MIN_BATTERY_BITS)?;
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(BATTERY_UNITS.len());
        let mut slots: Vec<Option<(Result<Vec<EstimatorResult>>, u64)>> = if workers <= 1 {
            BATTERY_UNITS
                .iter()
                .map(|unit| {
                    let start = Instant::now();
                    let outcome = unit(bits);
                    Some((outcome, start.elapsed().as_nanos() as u64))
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let done = Mutex::new(Vec::with_capacity(BATTERY_UNITS.len()));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = BATTERY_UNITS.get(index) else {
                            break;
                        };
                        let start = Instant::now();
                        let outcome = unit(bits);
                        let ns = start.elapsed().as_nanos() as u64;
                        done.lock()
                            .expect("battery worker poisoned the result lock")
                            .push((index, outcome, ns));
                    });
                }
            });
            let mut slots: Vec<Option<_>> = (0..BATTERY_UNITS.len()).map(|_| None).collect();
            for (index, outcome, ns) in done
                .into_inner()
                .expect("battery worker poisoned the result lock")
            {
                slots[index] = Some((outcome, ns));
            }
            slots
        };
        let mut results = Vec::with_capacity(8);
        let mut timings = Vec::with_capacity(BATTERY_UNITS.len());
        for (slot, name) in slots.iter_mut().zip(BATTERY_UNIT_NAMES) {
            let (outcome, ns) = slot.take().expect("every battery unit ran exactly once");
            results.extend(outcome?);
            timings.push(EstimatorTiming {
                name: name.to_string(),
                ns,
            });
        }
        Ok((Self { results }, timings))
    }

    /// The individual estimator results, in specification order.
    pub fn results(&self) -> &[EstimatorResult] {
        &self.results
    }

    /// The assessed min-entropy per bit: the **minimum** over every estimator, the
    /// reducer SP 800-90B §3.1.3 prescribes for non-IID sources.
    pub fn min_entropy_estimate(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.h_per_bit)
            .fold(f64::INFINITY, f64::min)
    }

    /// The estimator that produced the battery minimum.
    pub fn weakest(&self) -> &EstimatorResult {
        self.results
            .iter()
            .min_by(|a, b| a.h_per_bit.total_cmp(&b.h_per_bit))
            .expect("the battery always holds at least one result")
    }
}

/// The three counting members of the battery — MCV (§6.3.1), collision (§6.3.2)
/// and Markov (§6.3.3) — computed in one fused pass over the window.
///
/// Returns exactly what [`mcv_estimate`], [`collision_estimate`] and
/// [`markov_estimate`] return (same count arithmetic, same results), but shares a
/// single validation sweep and counting loop instead of seven passes.  This is the
/// hot path of the streaming audit's per-window work when the expensive members
/// run on a sparse cadence, so every-lane deployments lean on it.
///
/// # Errors
///
/// Returns an error for sequences shorter than 16 bits or containing non-bit
/// values.
pub fn counting_estimates(bits: &[u8]) -> Result<Vec<EstimatorResult>> {
    ensure_bit_len(bits, 16)?;
    let mut prev = bits[0];
    let mut ones = usize::from(prev);
    let mut pairs = [[0u64; 2]; 2];
    for &bit in &bits[1..] {
        ones += usize::from(bit);
        pairs[usize::from(prev)][usize::from(bit)] += 1;
        prev = bit;
    }
    let (n2, n3) = collision::collision_counts(bits);
    Ok(vec![
        mcv::mcv_result_from_counts(ones, bits.len()),
        collision::collision_result_from_counts(n2, n3),
        markov::markov_result_from_counts(ones, bits.len(), pairs),
    ])
}

/// The specification's 99 % upper confidence bound on a probability point estimate:
/// `p_u = min(1, p̂ + 2.576·sqrt(p̂(1−p̂)/(n−1)))`.
pub(crate) fn upper_probability_bound(p_hat: f64, n: usize) -> f64 {
    debug_assert!(n >= 2);
    (p_hat + Z_99 * (p_hat * (1.0 - p_hat) / (n - 1) as f64).sqrt()).min(1.0)
}

/// `−log2(p)` clamped into `[0, 1]` — min-entropy per binary sample.
pub(crate) fn min_entropy_from_probability(p: f64) -> f64 {
    (-p.log2()).clamp(0.0, 1.0)
}

pub(crate) fn ensure_min_len(bits: &[u8], needed: usize) -> Result<()> {
    if bits.len() < needed {
        return Err(AisError::SequenceTooShort {
            len: bits.len(),
            needed,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn battery_runs_and_reduces_to_the_minimum() {
        let bits = random_bits(1 << 14, 1);
        let battery = EstimatorBattery::run(&bits).unwrap();
        assert_eq!(battery.results().len(), 8);
        let min = battery.min_entropy_estimate();
        assert!(min > 0.0 && min <= 1.0, "min {min}");
        assert_eq!(battery.weakest().h_per_bit, min);
        for result in battery.results() {
            assert!(
                result.h_per_bit >= min,
                "{} below the reported minimum",
                result.name
            );
            assert!(!result.detail.is_empty());
        }
    }

    #[test]
    fn biased_bits_assess_below_ideal_bits() {
        let ideal = EstimatorBattery::run(&random_bits(1 << 14, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let biased: Vec<u8> = (0..1 << 14).map(|_| u8::from(rng.gen_bool(0.8))).collect();
        let battery = EstimatorBattery::run(&biased).unwrap();
        assert!(
            battery.min_entropy_estimate() < ideal.min_entropy_estimate() - 0.1,
            "biased {} vs ideal {}",
            battery.min_entropy_estimate(),
            ideal.min_entropy_estimate()
        );
    }

    #[test]
    fn fused_counting_pass_matches_the_individual_estimators() {
        for seed in 0..4 {
            let bits = random_bits(1 << 14, 100 + seed);
            let fused = counting_estimates(&bits).unwrap();
            let separate = [
                mcv_estimate(&bits).unwrap(),
                collision_estimate(&bits).unwrap(),
                markov_estimate(&bits).unwrap(),
            ];
            assert_eq!(fused, separate, "seed {seed}");
        }
        // Biased data exercises the non-saturated collision branch too.
        let mut rng = StdRng::seed_from_u64(9);
        let biased: Vec<u8> = (0..1 << 14).map(|_| u8::from(rng.gen_bool(0.8))).collect();
        let fused = counting_estimates(&biased).unwrap();
        assert_eq!(fused[1], collision_estimate(&biased).unwrap());
        assert!(counting_estimates(&[0, 1, 0]).is_err());
        assert!(counting_estimates(&[2; 64]).is_err());
    }

    #[test]
    fn battery_rejects_short_and_invalid_input() {
        assert!(matches!(
            EstimatorBattery::run(&[0, 1, 0, 1]),
            Err(AisError::SequenceTooShort { .. })
        ));
        let mut bits = random_bits(MIN_BATTERY_BITS, 4);
        bits[17] = 3;
        assert!(matches!(
            EstimatorBattery::run(&bits),
            Err(AisError::NotABit { .. })
        ));
    }

    #[test]
    fn battery_serializes_for_reports() {
        let bits = random_bits(1 << 14, 5);
        let battery = EstimatorBattery::run(&bits).unwrap();
        let value = serde::Serialize::to_value(&battery);
        let back: EstimatorBattery = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, battery);
    }

    #[test]
    fn confidence_bound_behaves() {
        assert!((upper_probability_bound(1.0, 100) - 1.0).abs() < 1e-15);
        let p = upper_probability_bound(0.5, 10_001);
        assert!(p > 0.5 && p < 0.52, "p_u {p}");
        assert_eq!(min_entropy_from_probability(0.5), 1.0);
        assert_eq!(min_entropy_from_probability(1.0), 0.0);
    }
}
