//! Compression estimate (SP 800-90B §6.3.4).
//!
//! Maurer's universal statistic: the sequence is partitioned into 6-bit blocks, the
//! first 1000 blocks prime a last-occurrence dictionary, and the mean log-distance
//! to each test block's previous occurrence is pushed to its 99 % lower confidence
//! bound.  The bound is inverted against the statistic's expectation under the
//! spec's two-parameter family (one block value with probability `p`, the remaining
//! 63 sharing the rest) to recover `p`, and `H = −log2(p)/6` per bit.
//!
//! Correlated sources re-visit recent blocks sooner than an IID source of the same
//! marginal distribution, shrinking the mean log-distance — this estimator therefore
//! responds to exactly the dependence structure the paper warns about.

use crate::bits::{blocks_as_integers, ensure_bits};
use crate::Result;

use super::{ensure_min_len, EstimatorResult, Z_99};

/// Block width in bits (the specification fixes `b = 6`).
const BLOCK_BITS: usize = 6;

/// Number of blocks priming the dictionary (the specification fixes `d = 1000`).
const DICT_BLOCKS: usize = 1000;

/// Corrective factor on the sample standard deviation (spec: `c = 0.5907`).
const STD_CORRECTION: f64 = 0.5907;

/// Runs the compression estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error when fewer than `6·(1000 + 2)` bits are provided or the input
/// contains non-bit values.
pub fn compression_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    ensure_bits(bits)?;
    ensure_min_len(bits, BLOCK_BITS * (DICT_BLOCKS + 2))?;
    let blocks = blocks_as_integers(bits, BLOCK_BITS)?;
    let total = blocks.len();
    let v = total - DICT_BLOCKS;

    // Distances to the previous occurrence of each test block (1-based positions,
    // first-ever occurrences score their own position, per spec).
    let mut last = [0usize; 1 << BLOCK_BITS];
    for (position, &block) in blocks.iter().take(DICT_BLOCKS).enumerate() {
        last[block as usize] = position + 1;
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for (index, &block) in blocks.iter().enumerate().skip(DICT_BLOCKS) {
        let position = index + 1;
        let seen = last[block as usize];
        let distance = if seen == 0 { position } else { position - seen };
        last[block as usize] = position;
        let x = (distance as f64).log2();
        sum += x;
        sum_sq += x * x;
    }
    let mean = sum / v as f64;
    let var = (sum_sq - sum * sum / v as f64) / (v - 1) as f64;
    let sigma = STD_CORRECTION * var.max(0.0).sqrt();
    let mean_lo = mean - Z_99 * sigma / (v as f64).sqrt();

    // Invert the expectation: G is strictly decreasing in p on [2⁻⁶, 1).
    let log2_table: Vec<f64> = (0..=total).map(|u| (u.max(1) as f64).log2()).collect();
    let uniform = 1.0 / (1 << BLOCK_BITS) as f64;
    let expectation = |p: f64| expected_statistic(p, total, v, &log2_table);
    let p = if mean_lo >= expectation(uniform) {
        uniform
    } else {
        let (mut lo, mut hi) = (uniform, 1.0 - 1e-9);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if expectation(mid) > mean_lo {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let h = ((-p.log2()) / BLOCK_BITS as f64).clamp(0.0, 1.0);
    Ok(EstimatorResult::new(
        "compression",
        h,
        format!("v {v}, X̄ {mean:.6}, X̄' {mean_lo:.6}, p {p:.6e}"),
    ))
}

/// Expectation of the mean log-distance under the spec's two-parameter block
/// distribution: `G(p) + 63·G(q)` with `q = (1 − p)/63`.
fn expected_statistic(p: f64, total: usize, v: usize, log2_table: &[f64]) -> f64 {
    let q = (1.0 - p) / ((1 << BLOCK_BITS) - 1) as f64;
    (g_term(p, total, log2_table) + ((1 << BLOCK_BITS) - 1) as f64 * g_term(q, total, log2_table))
        / v as f64
}

/// The spec's `G(z)`: `Σ_{t=d+1}^{total} [Σ_{u<t} log2(u)·z²(1−z)^{u−1}
/// + log2(t)·z(1−z)^{t−1}]`, with the double sum collapsed into one pass over `u`
/// (each inner term appears for every `t > max(u, d)`).
fn g_term(z: f64, total: usize, log2_table: &[f64]) -> f64 {
    let one_minus = 1.0 - z;
    let mut inner = 0.0f64; // Σ log2(u)·z²(1−z)^{u−1}·(total − max(u, d))
    let mut tail = 0.0f64; // Σ_{t>d} log2(t)·z(1−z)^{t−1}
    let mut power = 1.0f64; // (1−z)^{u−1}
    for (u, &log2_u) in log2_table.iter().enumerate().take(total + 1).skip(1) {
        if power == 0.0 {
            break;
        }
        if u < total {
            inner += log2_u * z * z * power * (total - u.max(DICT_BLOCKS)) as f64;
        }
        if u > DICT_BLOCKS {
            tail += log2_u * z * power;
        }
        power *= one_minus;
    }
    inner + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ideal_bits_assess_high() {
        let mut rng = StdRng::seed_from_u64(31);
        let bits: Vec<u8> = (0..1 << 16).map(|_| rng.gen_range(0..=1)).collect();
        let h = compression_estimate(&bits).unwrap().h_per_bit;
        assert!(h > 0.75 && h <= 1.0, "ideal assessed {h}");
    }

    #[test]
    fn biased_bits_assess_lower() {
        let mut rng = StdRng::seed_from_u64(32);
        let biased: Vec<u8> = (0..1 << 16).map(|_| u8::from(rng.gen_bool(0.75))).collect();
        let h = compression_estimate(&biased).unwrap().h_per_bit;
        let mut rng = StdRng::seed_from_u64(33);
        let ideal: Vec<u8> = (0..1 << 16).map(|_| rng.gen_range(0..=1)).collect();
        let ideal_h = compression_estimate(&ideal).unwrap().h_per_bit;
        assert!(h < ideal_h - 0.1, "biased {h} vs ideal {ideal_h}");
    }

    #[test]
    fn constant_bits_assess_near_zero() {
        let bits = vec![1u8; BLOCK_BITS * (DICT_BLOCKS + 500)];
        let h = compression_estimate(&bits).unwrap().h_per_bit;
        assert!(h < 0.05, "constant assessed {h}");
    }

    #[test]
    fn rejects_short_input() {
        assert!(compression_estimate(&[0u8; 600]).is_err());
    }
}
