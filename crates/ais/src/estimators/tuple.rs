//! t-tuple and longest-repeated-substring estimates (SP 800-90B §6.3.5 / §6.3.6).
//!
//! Both estimators look for over-represented substrings in the sequence:
//!
//! * the **t-tuple estimate** covers the *frequent* range — tuples short enough to
//!   occur at least 35 times — and bounds the per-sample probability by the most
//!   over-represented tuple, normalized by its length,
//! * the **LRS estimate** covers the *sparse* tail — tuple lengths between the end
//!   of the frequent range and the longest substring that still repeats at all —
//!   using pair-collision statistics instead of raw counts.
//!
//! The per-width statistics come from one suffix-array + LCP construction
//! ([`super::suffix`], SA-IS + Kasai, `O(n)`) followed by a cheap linear scan per
//! width — the widths themselves stop at [`MAX_TUPLE_BITS`] bits, the same range
//! the original rolling-window hash-map scan covered.  Sequences whose repeated
//! structure extends beyond that are already flagged by the t-tuple estimate at
//! length 128 (such data is profoundly non-random), so the truncation never
//! rescues a bad source.  The hash-map scan is retained as
//! [`t_tuple_and_lrs_estimates_reference`]: the suffix-array path must reproduce
//! its counts *exactly* (identical integers, hence identical estimates), which
//! the proptest equivalence gate below and `tests/estimator_vectors.rs` enforce.

use std::collections::HashMap;

use crate::bits::ensure_bits;
use crate::Result;

use super::suffix::{lcp_array, suffix_array, width_stats};
use super::{
    ensure_min_len, min_entropy_from_probability, upper_probability_bound, EstimatorResult,
};

/// Longest tuple width examined by the estimators, in bits.
pub const MAX_TUPLE_BITS: usize = 128;

/// Tuples occurring at least this often count as *frequent* (spec threshold).
const FREQUENT_CUTOFF: u32 = 35;

/// Per-length tuple statistics (from the suffix-array scan, or from one pass with
/// a rolling 128-bit window in the reference implementation).
struct TupleCounts {
    /// Highest occurrence count of any tuple of this length.
    max_count: u32,
    /// `Σ C(count, 2)` over all tuples of this length.
    collision_pairs: f64,
}

fn count_tuples(bits: &[u8], width: usize) -> TupleCounts {
    debug_assert!((1..=MAX_TUPLE_BITS).contains(&width) && bits.len() >= width);
    let mask = if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    // At most min(windows, 2^width) distinct tuples exist; sizing for the window
    // count alone would zero a multi-megabyte table per width at small widths.
    let windows = bits.len() - width + 1;
    let mut counts: HashMap<u128, u32> =
        HashMap::with_capacity(windows.min(1usize << width.min(20)));
    let mut window = 0u128;
    for (i, &bit) in bits.iter().enumerate() {
        window = ((window << 1) | bit as u128) & mask;
        if i + 1 >= width {
            *counts.entry(window).or_insert(0) += 1;
        }
    }
    let mut max_count = 0u32;
    let mut collision_pairs = 0.0f64;
    for &count in counts.values() {
        max_count = max_count.max(count);
        collision_pairs += count as f64 * (count as f64 - 1.0) / 2.0;
    }
    TupleCounts {
        max_count,
        collision_pairs,
    }
}

/// Derives both estimates from a per-width statistics source, sharing the loop
/// structure (and therefore the exact arithmetic) between the suffix-array path
/// and the reference scan.
fn estimates_from_counts(
    n: usize,
    mut counts_for: impl FnMut(usize) -> TupleCounts,
) -> (EstimatorResult, EstimatorResult) {
    // Frequent range: widths whose most frequent tuple reaches the cutoff.
    let mut t = 0usize;
    let mut t_tuple_p_hat = 0.0f64;
    let mut width = 1usize;
    let mut sparse_counts: Option<TupleCounts> = None;
    while width <= MAX_TUPLE_BITS && width < n {
        let counts = counts_for(width);
        if counts.max_count < FREQUENT_CUTOFF {
            // First sparse width: already counted, hand it to the LRS scan below.
            sparse_counts = Some(counts);
            break;
        }
        t = width;
        let p = (counts.max_count as f64 / (n - width + 1) as f64).powf(1.0 / width as f64);
        t_tuple_p_hat = t_tuple_p_hat.max(p);
        width += 1;
    }
    let t_tuple = {
        let p_u = upper_probability_bound(t_tuple_p_hat, n);
        let h = min_entropy_from_probability(p_u);
        EstimatorResult::new(
            "t-tuple",
            h,
            format!("t {t}, p̂ {t_tuple_p_hat:.6}, p_u {p_u:.6}"),
        )
    };

    // Sparse range: from the end of the frequent range up to the longest length
    // that still repeats (or the 128-bit width cap).
    let u = t + 1;
    let mut p_hat = 0.0f64;
    let mut v = t;
    let mut width = u;
    while width <= MAX_TUPLE_BITS && width < n {
        let counts = match sparse_counts.take() {
            Some(counts) => counts,
            None => counts_for(width),
        };
        if counts.collision_pairs < 1.0 {
            break;
        }
        v = width;
        let windows = (n - width + 1) as f64;
        let p_w = counts.collision_pairs / (windows * (windows - 1.0) / 2.0);
        p_hat = p_hat.max(p_w.powf(1.0 / width as f64));
        width += 1;
    }
    let lrs = if v < u {
        // Nothing in the sparse range repeats: the t-tuple estimate already covers
        // every repeated structure, and this estimator has no evidence to offer.
        EstimatorResult::new("lrs", 1.0, format!("no repeated substring of length ≥ {u}"))
    } else {
        let p_u = upper_probability_bound(p_hat, n);
        let h = min_entropy_from_probability(p_u);
        EstimatorResult::new(
            "lrs",
            h,
            format!("range {u}..={v}, p̂ {p_hat:.6}, p_u {p_u:.6}"),
        )
    };
    (t_tuple, lrs)
}

/// Runs the t-tuple and LRS estimates off one shared suffix-array construction.
///
/// The suffix and LCP arrays are built once (`O(n)`); each examined width then
/// costs one linear scan over them, and the loop stops at the same cutoffs the
/// specification defines (the frequent cutoff, the last width that repeats, the
/// [`MAX_TUPLE_BITS`] cap).
///
/// # Errors
///
/// Returns an error for sequences shorter than 70 bits (the 1-tuple cutoff needs
/// `Q[1] ≥ 35`) or containing non-bit values.
pub fn t_tuple_and_lrs_estimates(bits: &[u8]) -> Result<(EstimatorResult, EstimatorResult)> {
    ensure_bits(bits)?;
    ensure_min_len(bits, 2 * FREQUENT_CUTOFF as usize)?;
    let n = bits.len();
    let sa = suffix_array(bits);
    let lcp = lcp_array(bits, &sa);
    Ok(estimates_from_counts(n, |width| {
        let stats = width_stats(&sa, &lcp, n, width);
        TupleCounts {
            max_count: stats.max_count,
            collision_pairs: stats.collision_pairs,
        }
    }))
}

/// Reference implementation: the original per-width rolling-window hash-map scan.
///
/// Retained as the equivalence gate for the suffix-array path (the same
/// discipline the FIR-vs-FFT filters use): the fast path must reproduce these
/// estimates exactly, and the proptest below plus the golden vectors in
/// `tests/estimator_vectors.rs` keep that pinned.  `O(w_max·n)` with a heavy
/// hash-map constant — do not use on hot paths.
///
/// # Errors
///
/// Returns an error for sequences shorter than 70 bits or containing non-bit
/// values.
pub fn t_tuple_and_lrs_estimates_reference(
    bits: &[u8],
) -> Result<(EstimatorResult, EstimatorResult)> {
    ensure_bits(bits)?;
    ensure_min_len(bits, 2 * FREQUENT_CUTOFF as usize)?;
    Ok(estimates_from_counts(bits.len(), |width| {
        count_tuples(bits, width)
    }))
}

/// Runs the t-tuple estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error for sequences shorter than 70 bits (the 1-tuple cutoff needs
/// `Q[1] ≥ 35`) or containing non-bit values.
pub fn t_tuple_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    Ok(t_tuple_and_lrs_estimates(bits)?.0)
}

/// Runs the LRS estimate over a bit sequence.
///
/// # Errors
///
/// Returns an error for sequences shorter than 70 bits or containing non-bit
/// values.
pub fn lrs_estimate(bits: &[u8]) -> Result<EstimatorResult> {
    Ok(t_tuple_and_lrs_estimates(bits)?.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    fn assert_equivalent(bits: &[u8]) {
        let (fast_t, fast_l) = t_tuple_and_lrs_estimates(bits).unwrap();
        let (ref_t, ref_l) = t_tuple_and_lrs_estimates_reference(bits).unwrap();
        // The suffix-array path reproduces the reference *counts* exactly, so the
        // derived estimates are identical — the 1e-6 gate is the documented
        // contract, the equality assert is the actual behavior.
        assert!(
            (fast_t.h_per_bit - ref_t.h_per_bit).abs() < 1e-6,
            "t-tuple diverged: {} vs {}",
            fast_t.detail,
            ref_t.detail
        );
        assert!(
            (fast_l.h_per_bit - ref_l.h_per_bit).abs() < 1e-6,
            "lrs diverged: {} vs {}",
            fast_l.detail,
            ref_l.detail
        );
        assert_eq!(fast_t.detail, ref_t.detail, "t-tuple details diverged");
        assert_eq!(fast_l.detail, ref_l.detail, "lrs details diverged");
    }

    #[test]
    fn ideal_bits_assess_high() {
        let bits = random_bits(1 << 15, 41);
        let t = t_tuple_estimate(&bits).unwrap();
        let l = lrs_estimate(&bits).unwrap();
        assert!(t.h_per_bit > 0.9, "t-tuple {}", t.detail);
        assert!(l.h_per_bit > 0.9, "lrs {}", l.detail);
    }

    #[test]
    fn hand_computed_tuple_counts() {
        // 0 1 1 0 1 1 0: 2-tuples (01,11,10,01,11,10): max count 2; 1-tuples: four 1s.
        let bits = [0u8, 1, 1, 0, 1, 1, 0];
        let ones = count_tuples(&bits, 1);
        assert_eq!(ones.max_count, 4);
        // C(4,2) + C(3,2) = 6 + 3.
        assert!((ones.collision_pairs - 9.0).abs() < 1e-12);
        let pairs = count_tuples(&bits, 2);
        assert_eq!(pairs.max_count, 2);
    }

    #[test]
    fn repeated_pattern_is_caught() {
        // A 32-bit pattern repeated 512 times: long repeats at every length.
        let pattern = random_bits(32, 42);
        let bits: Vec<u8> = pattern.iter().cycle().take(32 * 512).copied().collect();
        let t = t_tuple_estimate(&bits).unwrap();
        assert!(t.h_per_bit < 0.1, "periodic data assessed {}", t.detail);
        assert_equivalent(&bits);
    }

    #[test]
    fn biased_bits_assess_near_their_true_entropy() {
        let mut rng = StdRng::seed_from_u64(43);
        let bits: Vec<u8> = (0..1 << 15).map(|_| u8::from(rng.gen_bool(0.75))).collect();
        let t = t_tuple_estimate(&bits).unwrap();
        // True −log2(0.75) ≈ 0.415; the tuple estimate sits at or below it.
        assert!(t.h_per_bit < 0.45, "{}", t.detail);
        assert!(t.h_per_bit > 0.2, "{}", t.detail);
    }

    #[test]
    fn suffix_array_path_matches_reference_on_adversarial_inputs() {
        // All-zeros: the frequent range runs all the way to the width cap.
        assert_equivalent(&vec![0u8; 4096]);
        // All-ones, same shape from the other symbol.
        assert_equivalent(&vec![1u8; 512]);
        // Alternating bits: period 2, fully repeated structure at every width.
        let alternating: Vec<u8> = (0..2048).map(|i| (i % 2) as u8).collect();
        assert_equivalent(&alternating);
        // Short periodic pattern (period 7, not a divisor of the length).
        let pattern = random_bits(7, 44);
        let periodic: Vec<u8> = pattern.iter().cycle().take(1000).copied().collect();
        assert_equivalent(&periodic);
        // Biased stream: long repeated runs of the majority symbol.
        let mut rng = StdRng::seed_from_u64(45);
        let biased: Vec<u8> = (0..8192).map(|_| u8::from(rng.gen_bool(0.9))).collect();
        assert_equivalent(&biased);
        // Minimum accepted length.
        assert_equivalent(&random_bits(70, 46));
    }

    #[test]
    fn rejects_short_input() {
        assert!(t_tuple_estimate(&[0, 1, 0, 1]).is_err());
        assert!(lrs_estimate(&[1; 32]).is_err());
        assert!(t_tuple_and_lrs_estimates_reference(&[1; 32]).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The equivalence gate: on arbitrary bit mixtures the suffix-array
            /// path and the reference hash-map scan agree on both estimates.
            #[test]
            fn suffix_array_path_matches_reference(
                seed in 0u64..1 << 20,
                len in 70usize..2048,
                p_one in 0.05f64..0.95,
            ) {
                use rand::rngs::StdRng;
                use rand::{Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(seed);
                let bits: Vec<u8> = (0..len).map(|_| u8::from(rng.gen_bool(p_one))).collect();
                let (fast_t, fast_l) = t_tuple_and_lrs_estimates(&bits).unwrap();
                let (ref_t, ref_l) = t_tuple_and_lrs_estimates_reference(&bits).unwrap();
                prop_assert!((fast_t.h_per_bit - ref_t.h_per_bit).abs() < 1e-6);
                prop_assert!((fast_l.h_per_bit - ref_l.h_per_bit).abs() < 1e-6);
                prop_assert_eq!(fast_t.detail, ref_t.detail);
                prop_assert_eq!(fast_l.detail, ref_l.detail);
            }
        }
    }
}
