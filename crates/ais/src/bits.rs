//! Bit-sequence helpers shared by the statistical tests.
//!
//! Bits are represented as `u8` values restricted to `{0, 1}`; helper functions validate
//! that restriction, pack/unpack bytes and compute elementary counts.

use crate::{AisError, Result};

/// Validates that every sample of `bits` is 0 or 1.
///
/// # Errors
///
/// Returns [`AisError::NotABit`] with the index of the first offending sample.
pub fn ensure_bits(bits: &[u8]) -> Result<()> {
    for (index, &value) in bits.iter().enumerate() {
        if value > 1 {
            return Err(AisError::NotABit { index, value });
        }
    }
    Ok(())
}

/// Validates that `bits` has at least `needed` samples (after validating bit values).
///
/// # Errors
///
/// Returns an error when the sequence is too short or contains non-bit values.
pub fn ensure_bit_len(bits: &[u8], needed: usize) -> Result<()> {
    ensure_bits(bits)?;
    if bits.len() < needed {
        return Err(AisError::SequenceTooShort {
            len: bits.len(),
            needed,
        });
    }
    Ok(())
}

/// Converts a slice of booleans to a bit vector.
pub fn from_bools(bools: &[bool]) -> Vec<u8> {
    bools.iter().map(|&b| u8::from(b)).collect()
}

/// Unpacks bytes into bits, most significant bit first.
pub fn unpack_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &byte in bytes {
        for shift in (0..8).rev() {
            bits.push((byte >> shift) & 1);
        }
    }
    bits
}

/// Packs bits into bytes, most significant bit first.  The last byte is zero-padded if
/// the bit count is not a multiple of 8.
///
/// # Errors
///
/// Returns an error when a sample is not a bit.
pub fn pack_bits(bits: &[u8]) -> Result<Vec<u8>> {
    ensure_bits(bits)?;
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut byte = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            byte |= bit << (7 - i);
        }
        bytes.push(byte);
    }
    Ok(bytes)
}

/// Number of ones in the sequence.
///
/// # Errors
///
/// Returns an error when a sample is not a bit.
pub fn count_ones(bits: &[u8]) -> Result<usize> {
    ensure_bits(bits)?;
    Ok(bits.iter().map(|&b| b as usize).sum())
}

/// Interprets consecutive non-overlapping `width`-bit blocks as unsigned integers
/// (most significant bit first).  A trailing partial block is discarded.
///
/// # Errors
///
/// Returns an error when `width` is 0 or larger than 32, or a sample is not a bit.
pub fn blocks_as_integers(bits: &[u8], width: usize) -> Result<Vec<u32>> {
    ensure_bits(bits)?;
    if width == 0 || width > 32 {
        return Err(AisError::InvalidParameter {
            name: "width",
            reason: format!("block width must be in 1..=32, got {width}"),
        });
    }
    Ok(bits
        .chunks_exact(width)
        .map(|chunk| chunk.iter().fold(0u32, |acc, &b| (acc << 1) | b as u32))
        .collect())
}

/// Lengths of the maximal runs (of either value) in the sequence.
///
/// # Errors
///
/// Returns an error when a sample is not a bit.
pub fn run_lengths(bits: &[u8]) -> Result<Vec<usize>> {
    ensure_bits(bits)?;
    let mut runs = Vec::new();
    let mut iter = bits.iter();
    let mut current = match iter.next() {
        Some(&b) => b,
        None => return Ok(runs),
    };
    let mut len = 1usize;
    for &b in iter {
        if b == current {
            len += 1;
        } else {
            runs.push(len);
            current = b;
            len = 1;
        }
    }
    runs.push(len);
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_validation() {
        assert!(ensure_bits(&[0, 1, 1, 0]).is_ok());
        assert_eq!(
            ensure_bits(&[0, 2]).unwrap_err(),
            AisError::NotABit { index: 1, value: 2 }
        );
        assert!(ensure_bit_len(&[0, 1], 3).is_err());
    }

    #[test]
    fn pack_unpack_round_trip() {
        let bytes = vec![0b1010_1100, 0b0001_1111, 0xff, 0x00];
        let bits = unpack_bytes(&bytes);
        assert_eq!(bits.len(), 32);
        assert_eq!(&bits[..8], &[1, 0, 1, 0, 1, 1, 0, 0]);
        let packed = pack_bits(&bits).unwrap();
        assert_eq!(packed, bytes);
    }

    #[test]
    fn pack_pads_partial_bytes() {
        let packed = pack_bits(&[1, 1, 1]).unwrap();
        assert_eq!(packed, vec![0b1110_0000]);
    }

    #[test]
    fn from_bools_and_count_ones() {
        let bits = from_bools(&[true, false, true, true]);
        assert_eq!(bits, vec![1, 0, 1, 1]);
        assert_eq!(count_ones(&bits).unwrap(), 3);
        assert!(count_ones(&[3]).is_err());
    }

    #[test]
    fn blocks_as_integers_msb_first() {
        let bits = [1, 0, 1, 1, 0, 0, 0, 1, 1]; // trailing bit discarded for width 4
        let blocks = blocks_as_integers(&bits, 4).unwrap();
        assert_eq!(blocks, vec![0b1011, 0b0001]);
        assert!(blocks_as_integers(&bits, 0).is_err());
        assert!(blocks_as_integers(&bits, 33).is_err());
    }

    #[test]
    fn run_lengths_cover_the_sequence() {
        let runs = run_lengths(&[0, 0, 1, 1, 1, 0, 1]).unwrap();
        assert_eq!(runs, vec![2, 3, 1, 1]);
        assert_eq!(run_lengths(&[]).unwrap(), Vec::<usize>::new());
        assert_eq!(run_lengths(&[1]).unwrap(), vec![1]);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn pack_unpack_identity(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
                let bits = unpack_bytes(&bytes);
                let packed = pack_bits(&bits).unwrap();
                prop_assert_eq!(packed, bytes);
            }

            #[test]
            fn run_lengths_sum_to_length(bits in proptest::collection::vec(0u8..=1, 0..256)) {
                let runs = run_lengths(&bits).unwrap();
                prop_assert_eq!(runs.iter().sum::<usize>(), bits.len());
            }
        }
    }
}
