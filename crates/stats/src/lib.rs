//! Time-series statistics substrate for P-TRNG jitter analysis.
//!
//! This crate provides the statistical machinery used throughout the `ptrng` workspace to
//! analyse oscillator jitter sequences in the spirit of Haddad et al., *"On the assumption
//! of mutual independence of jitter realizations in P-TRNG stochastic models"* (DATE 2014):
//!
//! * [`sn`] — the paper's accumulation statistic `s_N` (difference of two adjacent
//!   accumulations of `N` oscillator periods) and its variance `σ²_N`,
//! * [`allan`] — Allan, overlapping Allan, modified Allan and Hadamard variances,
//! * [`fft`] / [`spectral`] — radix-2 FFT, periodogram and Welch PSD estimators,
//! * [`fit`] — least-squares fitting, including the paper's `σ²_N = a·N + b·N²` fit,
//! * [`autocorr`] — autocovariance / autocorrelation estimation,
//! * [`hypothesis`] — χ², Kolmogorov–Smirnov, Ljung–Box and runs tests,
//! * [`minentropy`] — min-entropy ↔ bias conversions for binary sources (the algebra
//!   the conditioning-pipeline entropy ledger is written in),
//! * [`descriptive`], [`variance`], [`histogram`], [`special`], [`window`], [`seed`] —
//!   supporting numerical building blocks.
//!
//! # Example
//!
//! Verify Bienaymé's identity on an i.i.d. sequence: the variance of the accumulated
//! statistic grows linearly with `N`.
//!
//! ```
//! use ptrng_stats::sn::sigma2_n;
//!
//! # fn main() -> Result<(), ptrng_stats::StatsError> {
//! // A deterministic "jitter" sequence standing in for measured period jitter.
//! let jitter: Vec<f64> = (0..4096).map(|i| ((i * 2654435761u64 % 1000) as f64) / 1e3 - 0.5).collect();
//! let v1 = sigma2_n(&jitter, 1)?;
//! let v8 = sigma2_n(&jitter, 8)?;
//! assert!(v8 > v1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allan;
pub mod autocorr;
pub mod descriptive;
pub mod fft;
pub mod fit;
pub mod histogram;
pub mod hypothesis;
pub mod minentropy;
pub mod seed;
pub mod sn;
pub mod special;
pub mod spectral;
pub mod variance;
pub mod window;

use thiserror::Error;

/// Errors produced by the statistical routines of this crate.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum StatsError {
    /// The input series is too short for the requested computation.
    #[error("series of length {len} is too short, need at least {needed}")]
    SeriesTooShort {
        /// Actual length of the provided series.
        len: usize,
        /// Minimum length required by the operation.
        needed: usize,
    },
    /// A parameter was outside its valid domain.
    #[error("invalid parameter {name}: {reason}")]
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The input contained a non-finite (NaN or infinite) sample.
    #[error("non-finite sample at index {index}")]
    NonFiniteSample {
        /// Index of the first non-finite sample.
        index: usize,
    },
    /// A numerical routine failed to converge.
    #[error("numerical routine {routine} did not converge")]
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
    },
    /// A linear system was singular (or numerically close to singular).
    #[error("singular linear system in {context}")]
    SingularSystem {
        /// Description of where the singular system arose.
        context: &'static str,
    },
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

/// Checks that every sample of `series` is finite.
///
/// # Errors
///
/// Returns [`StatsError::NonFiniteSample`] with the index of the first offending sample.
pub fn ensure_finite(series: &[f64]) -> Result<()> {
    for (index, x) in series.iter().enumerate() {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteSample { index });
        }
    }
    Ok(())
}

/// Checks that `series` has at least `needed` samples.
///
/// # Errors
///
/// Returns [`StatsError::SeriesTooShort`] otherwise.
pub fn ensure_len(series: &[f64], needed: usize) -> Result<()> {
    if series.len() < needed {
        return Err(StatsError::SeriesTooShort {
            len: series.len(),
            needed,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_finite_accepts_finite() {
        assert!(ensure_finite(&[0.0, 1.5, -3.0]).is_ok());
    }

    #[test]
    fn ensure_finite_rejects_nan() {
        let err = ensure_finite(&[0.0, f64::NAN]).unwrap_err();
        assert_eq!(err, StatsError::NonFiniteSample { index: 1 });
    }

    #[test]
    fn ensure_finite_rejects_infinity() {
        let err = ensure_finite(&[f64::INFINITY]).unwrap_err();
        assert_eq!(err, StatsError::NonFiniteSample { index: 0 });
    }

    #[test]
    fn ensure_len_boundaries() {
        assert!(ensure_len(&[1.0, 2.0], 2).is_ok());
        let err = ensure_len(&[1.0], 2).unwrap_err();
        assert_eq!(err, StatsError::SeriesTooShort { len: 1, needed: 2 });
    }

    #[test]
    fn errors_display_lowercase() {
        let msg = StatsError::NoConvergence { routine: "fit" }.to_string();
        assert!(msg.starts_with("numerical routine"));
    }
}
