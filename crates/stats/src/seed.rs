//! Deterministic sub-seed derivation shared across the workspace.
//!
//! Acquisition campaigns, engine shards and multi-ring sources all need families of
//! decorrelated RNG seeds derived from one base seed.  Keeping the mixer in one place
//! guarantees every consumer derives the same family for the same `(base, tag)` pair.

/// Splitmix64 finalizer mixing a stream `tag` into a `base` seed.
///
/// Distinct tags yield decorrelated seeds even for adjacent integers, and the map is
/// bijective in `base` for a fixed tag.
pub fn derive_seed(base: u64, tag: u64) -> u64 {
    let mut z = base ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_tags_are_decorrelated() {
        let seeds: Vec<u64> = (0..1000).map(|tag| derive_seed(42, tag)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        // No trivial relation between neighbours.
        for pair in seeds.windows(2) {
            assert_ne!(pair[0] ^ pair[1], 1);
        }
    }

    #[test]
    fn base_seed_changes_the_family() {
        assert_ne!(derive_seed(1, 7), derive_seed(2, 7));
        assert_eq!(derive_seed(1, 7), derive_seed(1, 7));
    }
}
