//! Minimal radix-2 fast Fourier transform.
//!
//! The workspace deliberately avoids an external FFT dependency: the spectral estimation
//! needs of jitter analysis (periodograms of ≤ a few million points, power-of-two sizes)
//! are served by a plain iterative radix-2 Cooley–Tukey transform.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// A complex number with `f64` components.
///
/// Only the operations required by the FFT and spectral estimators are provided.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// Creates a purely real complex number.
    pub fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` for a phase angle `θ` in radians.
    pub fn from_polar_unit(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

/// Returns the smallest power of two that is `>= n` (and at least 1).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

fn bit_reverse_permute(buf: &mut [Complex]) {
    let n = buf.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
}

fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    bit_reverse_permute(buf);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(angle);
        let mut start = 0;
        while start < n {
            let mut w = Complex::from_real(1.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// A preplanned radix-2 FFT of one fixed power-of-two size.
///
/// The plan precomputes the twiddle factors `e^{-2πik/N}` once, so repeated transforms
/// (e.g. the overlap-save convolution blocks of `ptrng_noise::flicker`) run in place with
/// zero per-call allocation.  The table-driven butterflies are also slightly more
/// accurate than the incremental-rotation loop used by the one-shot [`fft`]/[`ifft`]
/// helpers, because each twiddle is evaluated directly instead of by repeated
/// multiplication.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `twiddles[k] = e^{-2πik/n}` for `k < n/2`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Plans transforms of length `n` (a power of two).
    ///
    /// # Errors
    ///
    /// Returns an error when `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self> {
        if !is_power_of_two(n) {
            return Err(StatsError::InvalidParameter {
                name: "n",
                reason: format!("FFT length must be a power of two, got {n}"),
            });
        }
        let twiddles = (0..n / 2)
            .map(|k| Complex::from_polar_unit(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Ok(Self { n, twiddles })
    }

    /// Planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    fn transform(&self, buf: &mut [Complex], inverse: bool) {
        debug_assert_eq!(buf.len(), self.n);
        bit_reverse_permute(buf);
        let n = self.n;
        let mut len = 2;
        while len <= n {
            // Twiddle for butterfly k at this stage: e^{∓2πik/len} = twiddles[k·(n/len)].
            let stride = n / len;
            let mut start = 0;
            while start < n {
                for k in 0..len / 2 {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let u = buf[start + k];
                    let v = buf[start + k + len / 2] * w;
                    buf[start + k] = u + v;
                    buf[start + k + len / 2] = u - v;
                }
                start += len;
            }
            len <<= 1;
        }
    }

    /// In-place forward transform (`X[k] = Σ_n x[n]·e^{-2πikn/N}`, no normalization).
    ///
    /// # Errors
    ///
    /// Returns an error when `buf.len()` differs from the planned length.
    pub fn forward(&self, buf: &mut [Complex]) -> Result<()> {
        self.check_len(buf)?;
        self.transform(buf, false);
        Ok(())
    }

    /// In-place inverse transform, normalized by `1/N`.
    ///
    /// # Errors
    ///
    /// Returns an error when `buf.len()` differs from the planned length.
    pub fn inverse(&self, buf: &mut [Complex]) -> Result<()> {
        self.check_len(buf)?;
        self.transform(buf, true);
        let scale = 1.0 / self.n as f64;
        for x in buf {
            *x = x.scale(scale);
        }
        Ok(())
    }

    fn check_len(&self, buf: &[Complex]) -> Result<()> {
        if buf.len() != self.n {
            return Err(StatsError::InvalidParameter {
                name: "buf",
                reason: format!("planned for length {}, got {}", self.n, buf.len()),
            });
        }
        Ok(())
    }
}

/// Forward discrete Fourier transform of a power-of-two-length complex buffer.
///
/// Uses the convention `X[k] = Σ_n x[n]·e^{-2πikn/N}` (no normalization).
///
/// # Errors
///
/// Returns an error when the input length is not a power of two.
pub fn fft(input: &[Complex]) -> Result<Vec<Complex>> {
    if !is_power_of_two(input.len()) {
        return Err(StatsError::InvalidParameter {
            name: "input",
            reason: format!("FFT length must be a power of two, got {}", input.len()),
        });
    }
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, false);
    Ok(buf)
}

/// Inverse discrete Fourier transform (normalized by `1/N`).
///
/// # Errors
///
/// Returns an error when the input length is not a power of two.
pub fn ifft(input: &[Complex]) -> Result<Vec<Complex>> {
    if !is_power_of_two(input.len()) {
        return Err(StatsError::InvalidParameter {
            name: "input",
            reason: format!("FFT length must be a power of two, got {}", input.len()),
        });
    }
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, true);
    let scale = 1.0 / buf.len() as f64;
    for x in &mut buf {
        *x = x.scale(scale);
    }
    Ok(buf)
}

/// Forward transform of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_power_of_two(input.len())`.
///
/// # Errors
///
/// Returns an error when the input is empty.
pub fn fft_real(input: &[f64]) -> Result<Vec<Complex>> {
    if input.is_empty() {
        return Err(StatsError::SeriesTooShort { len: 0, needed: 1 });
    }
    let n = next_power_of_two(input.len());
    let mut buf = vec![Complex::zero(); n];
    for (i, &x) in input.iter().enumerate() {
        buf[i] = Complex::from_real(x);
    }
    fft_in_place(&mut buf, false);
    Ok(buf)
}

/// Circular autocovariance of a real signal computed via the Wiener–Khinchin theorem
/// (FFT of the signal, squared magnitude, inverse FFT).  The mean is removed first and
/// the signal is zero-padded to at least twice its length so the estimate is linear
/// (non-circular) up to `max_lag`.
///
/// # Errors
///
/// Returns an error when the input has fewer than two samples or `max_lag` is out of
/// range.
pub fn autocovariance_fft(input: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if input.len() < 2 {
        return Err(StatsError::SeriesTooShort {
            len: input.len(),
            needed: 2,
        });
    }
    if max_lag >= input.len() {
        return Err(StatsError::InvalidParameter {
            name: "max_lag",
            reason: format!("must be < series length {}, got {max_lag}", input.len()),
        });
    }
    let n = input.len();
    let mean = input.iter().sum::<f64>() / n as f64;
    let padded = next_power_of_two(2 * n);
    let mut buf = vec![Complex::zero(); padded];
    for (i, &x) in input.iter().enumerate() {
        buf[i] = Complex::from_real(x - mean);
    }
    fft_in_place(&mut buf, false);
    for x in &mut buf {
        *x = Complex::from_real(x.norm_sqr());
    }
    fft_in_place(&mut buf, true);
    // Without the 1/P normalization of `ifft`, buf[lag].re = P · Σ_n y[n]·y[n+lag];
    // the biased autocovariance estimate divides the lagged product sum by n.
    let scale = 1.0 / (padded as f64 * n as f64);
    Ok((0..=max_lag).map(|lag| buf[lag].re * scale).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::zero(); 8];
        x[0] = Complex::from_real(1.0);
        let spec = fft(&x).unwrap();
        for c in spec {
            assert_close(c.re, 1.0, 1e-12);
            assert_close(c.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let x = vec![Complex::from_real(2.5); 16];
        let spec = fft(&x).unwrap();
        assert_close(spec[0].re, 40.0, 1e-9);
        for c in &spec[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_locates_a_pure_tone() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::from_real(
                    (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos(),
                )
            })
            .collect();
        let spec = fft(&x).unwrap();
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        // Energy concentrated in bins k0 and n-k0.
        assert!(mags[k0] > 30.0);
        assert!(mags[n - k0] > 30.0);
        for (k, m) in mags.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(*m < 1e-9, "bin {k} has magnitude {m}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let spec = fft(&x).unwrap();
        let back = ifft(&spec).unwrap();
        for (a, b) in x.iter().zip(back.iter()) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn parseval_identity_holds() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.31).cos()))
            .collect();
        let spec = fft(&x).unwrap();
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert_close(time_energy, freq_energy, 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn rejects_non_power_of_two() {
        let x = vec![Complex::zero(); 12];
        assert!(fft(&x).is_err());
        assert!(ifft(&x).is_err());
    }

    #[test]
    fn fft_real_pads_to_power_of_two() {
        let spec = fft_real(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(spec.len(), 4);
        assert!(fft_real(&[]).is_err());
    }

    #[test]
    fn power_of_two_helpers() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert!(is_power_of_two(8));
        assert!(!is_power_of_two(12));
        assert!(!is_power_of_two(0));
    }

    #[test]
    fn autocovariance_fft_matches_direct_estimate() {
        let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();
        let n = x.len();
        let mean = x.iter().sum::<f64>() / n as f64;
        let max_lag = 10;
        let via_fft = autocovariance_fft(&x, max_lag).unwrap();
        for lag in 0..=max_lag {
            let direct: f64 = (0..n - lag)
                .map(|i| (x[i] - mean) * (x[i + lag] - mean))
                .sum::<f64>()
                / n as f64;
            assert_close(via_fft[lag], direct, 1e-8 * direct.abs().max(1.0));
        }
    }

    #[test]
    fn plan_matches_one_shot_transforms() {
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 0.17).sin(), (i as f64 * 0.41).cos()))
            .collect();
        let plan = FftPlan::new(256).unwrap();
        let mut buf = x.clone();
        plan.forward(&mut buf).unwrap();
        let reference = fft(&x).unwrap();
        for (a, b) in buf.iter().zip(reference.iter()) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(x.iter()) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn plan_validates_lengths() {
        assert!(FftPlan::new(12).is_err());
        let plan = FftPlan::new(8).unwrap();
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
        let mut wrong = vec![Complex::zero(); 4];
        assert!(plan.forward(&mut wrong).is_err());
        assert!(plan.inverse(&mut wrong).is_err());
    }

    #[test]
    fn autocovariance_fft_rejects_bad_lag() {
        assert!(autocovariance_fft(&[1.0, 2.0, 3.0], 3).is_err());
        assert!(autocovariance_fft(&[1.0], 0).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_fft_ifft(values in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
                let n = next_power_of_two(values.len());
                let mut x = vec![Complex::zero(); n];
                for (i, v) in values.iter().enumerate() {
                    x[i] = Complex::from_real(*v);
                }
                let back = ifft(&fft(&x).unwrap()).unwrap();
                for (a, b) in x.iter().zip(back.iter()) {
                    prop_assert!((a.re - b.re).abs() < 1e-7);
                    prop_assert!(b.im.abs() < 1e-7);
                }
            }

            #[test]
            fn linearity_of_fft(
                a in proptest::collection::vec(-10.0f64..10.0, 16),
                b in proptest::collection::vec(-10.0f64..10.0, 16),
            ) {
                let ca: Vec<Complex> = a.iter().map(|&v| Complex::from_real(v)).collect();
                let cb: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
                let sum: Vec<Complex> = ca.iter().zip(cb.iter()).map(|(x, y)| *x + *y).collect();
                let fa = fft(&ca).unwrap();
                let fb = fft(&cb).unwrap();
                let fsum = fft(&sum).unwrap();
                for k in 0..16 {
                    let lin = fa[k] + fb[k];
                    prop_assert!((lin.re - fsum[k].re).abs() < 1e-7);
                    prop_assert!((lin.im - fsum[k].im).abs() < 1e-7);
                }
            }
        }
    }
}
