//! Allan-family variances for oscillator stability analysis.
//!
//! The paper's statistic `σ²_N` is closely related to the two-sample (Allan) variance:
//! Allan (1966) introduced it precisely because the ordinary variance of an oscillator's
//! frequency fluctuations diverges in the presence of flicker noise.  These estimators
//! operate on either
//!
//! * a **fractional-frequency** series `y_k` (average normalized frequency deviation over
//!   consecutive intervals of `tau0` seconds), or
//! * a **phase (time-error)** series `x_k` in seconds, with `y_k = (x_{k+1} - x_k)/tau0`.

use serde::{Deserialize, Serialize};

use crate::{ensure_finite, Result, StatsError};

/// One point of an Allan-variance sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllanPoint {
    /// Averaging factor `m` (the averaging time is `m·tau0`).
    pub m: usize,
    /// Averaging time in seconds.
    pub tau: f64,
    /// Estimated (Allan or Hadamard) variance.
    pub variance: f64,
    /// Number of terms averaged in the estimator.
    pub terms: usize,
}

/// Converts a phase/time-error series `x_k` (seconds) into fractional frequencies
/// `y_k = (x_{k+1} - x_k) / tau0`.
///
/// # Errors
///
/// Returns an error when the series has fewer than two samples, contains non-finite
/// values, or `tau0 <= 0`.
pub fn phase_to_frequency(phase: &[f64], tau0: f64) -> Result<Vec<f64>> {
    ensure_finite(phase)?;
    if phase.len() < 2 {
        return Err(StatsError::SeriesTooShort {
            len: phase.len(),
            needed: 2,
        });
    }
    check_tau0(tau0)?;
    Ok(phase.windows(2).map(|w| (w[1] - w[0]) / tau0).collect())
}

/// Converts a fractional-frequency series into a phase/time-error series (starting at 0).
///
/// # Errors
///
/// Returns an error when the series is empty, contains non-finite values, or `tau0 <= 0`.
pub fn frequency_to_phase(freq: &[f64], tau0: f64) -> Result<Vec<f64>> {
    ensure_finite(freq)?;
    if freq.is_empty() {
        return Err(StatsError::SeriesTooShort { len: 0, needed: 1 });
    }
    check_tau0(tau0)?;
    let mut phase = Vec::with_capacity(freq.len() + 1);
    phase.push(0.0);
    let mut acc = 0.0;
    for &y in freq {
        acc += y * tau0;
        phase.push(acc);
    }
    Ok(phase)
}

fn check_tau0(tau0: f64) -> Result<()> {
    if tau0 <= 0.0 || !tau0.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "tau0",
            reason: format!("must be positive and finite, got {tau0}"),
        });
    }
    Ok(())
}

fn check_m(m: usize) -> Result<()> {
    if m == 0 {
        return Err(StatsError::InvalidParameter {
            name: "m",
            reason: "averaging factor must be at least 1".to_string(),
        });
    }
    Ok(())
}

/// Non-overlapping Allan variance of a fractional-frequency series at averaging factor
/// `m` (averaging time `m·tau0`).
///
/// # Errors
///
/// Returns an error when fewer than `2m` frequency samples are available.
pub fn allan_variance(freq: &[f64], m: usize) -> Result<f64> {
    ensure_finite(freq)?;
    check_m(m)?;
    let averages: Vec<f64> = freq
        .chunks_exact(m)
        .map(|c| c.iter().sum::<f64>() / m as f64)
        .collect();
    if averages.len() < 2 {
        return Err(StatsError::SeriesTooShort {
            len: freq.len(),
            needed: 2 * m,
        });
    }
    let sum: f64 = averages
        .windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum();
    Ok(sum / (2.0 * (averages.len() - 1) as f64))
}

/// Overlapping Allan variance computed from a phase series `x_k` (seconds).
///
/// Uses the standard estimator
/// `σ²_y(m·tau0) = Σ (x_{i+2m} - 2x_{i+m} + x_i)² / (2·(m·tau0)²·(M - 2m))`
/// where `M` is the number of phase samples.
///
/// # Errors
///
/// Returns an error when fewer than `2m + 1` phase samples are available or `tau0 <= 0`.
pub fn overlapping_allan_variance(phase: &[f64], tau0: f64, m: usize) -> Result<f64> {
    ensure_finite(phase)?;
    check_tau0(tau0)?;
    check_m(m)?;
    if phase.len() < 2 * m + 1 {
        return Err(StatsError::SeriesTooShort {
            len: phase.len(),
            needed: 2 * m + 1,
        });
    }
    let tau = m as f64 * tau0;
    let terms = phase.len() - 2 * m;
    let sum: f64 = (0..terms)
        .map(|i| {
            let d = phase[i + 2 * m] - 2.0 * phase[i + m] + phase[i];
            d * d
        })
        .sum();
    Ok(sum / (2.0 * tau * tau * terms as f64))
}

/// Modified Allan variance computed from a phase series.
///
/// `Mod σ²_y(m·tau0)` additionally averages the phase over windows of `m` samples, which
/// lets it distinguish white phase noise from flicker phase noise.
///
/// # Errors
///
/// Returns an error when fewer than `3m` phase samples are available or `tau0 <= 0`.
pub fn modified_allan_variance(phase: &[f64], tau0: f64, m: usize) -> Result<f64> {
    ensure_finite(phase)?;
    check_tau0(tau0)?;
    check_m(m)?;
    if phase.len() < 3 * m {
        return Err(StatsError::SeriesTooShort {
            len: phase.len(),
            needed: 3 * m,
        });
    }
    let tau = m as f64 * tau0;
    let outer_terms = phase.len() - 3 * m + 1;
    let mut sum = 0.0;
    for j in 0..outer_terms {
        let mut inner = 0.0;
        for i in j..j + m {
            inner += phase[i + 2 * m] - 2.0 * phase[i + m] + phase[i];
        }
        inner /= m as f64;
        sum += inner * inner;
    }
    Ok(sum / (2.0 * tau * tau * outer_terms as f64))
}

/// Overlapping Hadamard variance computed from a phase series (three-sample variance,
/// insensitive to linear frequency drift).
///
/// # Errors
///
/// Returns an error when fewer than `3m + 1` phase samples are available or `tau0 <= 0`.
pub fn hadamard_variance(phase: &[f64], tau0: f64, m: usize) -> Result<f64> {
    ensure_finite(phase)?;
    check_tau0(tau0)?;
    check_m(m)?;
    if phase.len() < 3 * m + 1 {
        return Err(StatsError::SeriesTooShort {
            len: phase.len(),
            needed: 3 * m + 1,
        });
    }
    let tau = m as f64 * tau0;
    let terms = phase.len() - 3 * m;
    let sum: f64 = (0..terms)
        .map(|i| {
            let d = phase[i + 3 * m] - 3.0 * phase[i + 2 * m] + 3.0 * phase[i + m] - phase[i];
            d * d
        })
        .sum();
    Ok(sum / (6.0 * tau * tau * terms as f64))
}

/// Sweeps the overlapping Allan variance over a list of averaging factors, skipping the
/// factors that do not fit in the record.
///
/// # Errors
///
/// Returns an error when no factor fits, the list is empty, or inputs are invalid.
pub fn allan_sweep(phase: &[f64], tau0: f64, ms: &[usize]) -> Result<Vec<AllanPoint>> {
    if ms.is_empty() {
        return Err(StatsError::InvalidParameter {
            name: "ms",
            reason: "at least one averaging factor is required".to_string(),
        });
    }
    let mut out = Vec::new();
    for &m in ms {
        check_m(m)?;
        if phase.len() < 2 * m + 1 {
            continue;
        }
        let variance = overlapping_allan_variance(phase, tau0, m)?;
        out.push(AllanPoint {
            m,
            tau: m as f64 * tau0,
            variance,
            terms: phase.len() - 2 * m,
        });
    }
    if out.is_empty() {
        return Err(StatsError::SeriesTooShort {
            len: phase.len(),
            needed: 2 * ms.iter().copied().min().unwrap_or(1) + 1,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn white_fm_phase(len: usize, sigma_y: f64, tau0: f64, seed: u64) -> Vec<f64> {
        // White frequency noise: y_k i.i.d. N(0, sigma_y²); x_k is the running integral.
        let mut rng = StdRng::seed_from_u64(seed);
        let freq: Vec<f64> = (0..len)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                sigma_y * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        frequency_to_phase(&freq, tau0).unwrap()
    }

    #[test]
    fn phase_frequency_roundtrip() {
        let freq = vec![1e-6, -2e-6, 3e-6, 0.5e-6];
        let phase = frequency_to_phase(&freq, 0.25).unwrap();
        let back = phase_to_frequency(&phase, 0.25).unwrap();
        for (a, b) in freq.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn allan_variance_of_white_fm_scales_as_one_over_m() {
        // For white FM noise, σ²_y(τ) = σ_y²·tau0/τ, i.e. halving with each doubling of m.
        let tau0 = 1e-3;
        let sigma_y = 1e-9;
        let phase = white_fm_phase(200_000, sigma_y, tau0, 42);
        let v1 = overlapping_allan_variance(&phase, tau0, 1).unwrap();
        let v4 = overlapping_allan_variance(&phase, tau0, 4).unwrap();
        let v16 = overlapping_allan_variance(&phase, tau0, 16).unwrap();
        assert!((v1 / (sigma_y * sigma_y) - 1.0).abs() < 0.05, "v1 = {v1}");
        assert!((v1 / v4 - 4.0).abs() < 0.6, "ratio {}", v1 / v4);
        assert!((v4 / v16 - 4.0).abs() < 0.8, "ratio {}", v4 / v16);
    }

    #[test]
    fn non_overlapping_matches_overlapping_at_m1() {
        let tau0 = 1.0;
        let phase = white_fm_phase(10_000, 1e-6, tau0, 3);
        let freq = phase_to_frequency(&phase, tau0).unwrap();
        let a = allan_variance(&freq, 1).unwrap();
        let b = overlapping_allan_variance(&phase, tau0, 1).unwrap();
        assert!((a - b).abs() / b < 0.02, "{a} vs {b}");
    }

    #[test]
    fn hadamard_ignores_linear_frequency_drift() {
        // Pure linear frequency drift: y_k = c·k  →  Hadamard variance ≈ 0,
        // while the Allan variance does not vanish.
        let tau0 = 1.0;
        let freq: Vec<f64> = (0..10_000).map(|k| 1e-9 * k as f64).collect();
        let phase = frequency_to_phase(&freq, tau0).unwrap();
        let h = hadamard_variance(&phase, tau0, 10).unwrap();
        let a = overlapping_allan_variance(&phase, tau0, 10).unwrap();
        assert!(h < 1e-25, "hadamard {h}");
        assert!(a > 1e-18, "allan {a}");
    }

    #[test]
    fn modified_allan_equals_allan_at_m1() {
        let tau0 = 1.0;
        let phase = white_fm_phase(5_000, 1e-6, tau0, 9);
        let a = overlapping_allan_variance(&phase, tau0, 1).unwrap();
        let m = modified_allan_variance(&phase, tau0, 1).unwrap();
        // At m = 1 the two estimators differ only in the number of terms (M-2 vs M-2).
        assert!((a - m).abs() / a < 0.01, "{a} vs {m}");
    }

    #[test]
    fn allan_sweep_skips_oversized_factors() {
        let tau0 = 1.0;
        let phase = white_fm_phase(100, 1e-6, tau0, 1);
        let points = allan_sweep(&phase, tau0, &[1, 4, 16, 64]).unwrap();
        let ms: Vec<usize> = points.iter().map(|p| p.m).collect();
        assert_eq!(ms, vec![1, 4, 16]);
        for p in &points {
            assert!(p.variance >= 0.0);
            assert_eq!(p.tau, p.m as f64 * tau0);
        }
    }

    #[test]
    fn error_paths() {
        assert!(allan_variance(&[1.0], 1).is_err());
        assert!(allan_variance(&[1.0, 2.0], 0).is_err());
        assert!(overlapping_allan_variance(&[1.0, 2.0], 1.0, 1).is_err());
        assert!(overlapping_allan_variance(&[1.0, 2.0, 3.0], 0.0, 1).is_err());
        assert!(modified_allan_variance(&[1.0, 2.0], 1.0, 1).is_err());
        assert!(hadamard_variance(&[1.0, 2.0, 3.0], 1.0, 1).is_err());
        assert!(allan_sweep(&[1.0, 2.0, 3.0], 1.0, &[]).is_err());
        assert!(phase_to_frequency(&[1.0], 1.0).is_err());
        assert!(frequency_to_phase(&[], 1.0).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn variances_are_nonnegative(
                freq in proptest::collection::vec(-1e-6f64..1e-6, 32..128),
                m in 1usize..8,
            ) {
                let phase = frequency_to_phase(&freq, 1.0).unwrap();
                prop_assume!(phase.len() > 3 * m);
                prop_assert!(overlapping_allan_variance(&phase, 1.0, m).unwrap() >= 0.0);
                prop_assert!(modified_allan_variance(&phase, 1.0, m).unwrap() >= 0.0);
                prop_assert!(hadamard_variance(&phase, 1.0, m).unwrap() >= 0.0);
            }

            #[test]
            fn constant_frequency_has_zero_allan_variance(
                offset in -1e-3f64..1e-3,
                m in 1usize..5,
            ) {
                let freq = vec![offset; 64];
                let phase = frequency_to_phase(&freq, 1.0).unwrap();
                let v = overlapping_allan_variance(&phase, 1.0, m).unwrap();
                prop_assert!(v.abs() < 1e-20);
            }
        }
    }
}
