//! Variance identities used to test mutual independence of jitter realizations.
//!
//! The DATE 2014 paper rests on the contraposition of **Bienaymé's identity**: if the
//! realizations `J(t_i)` are mutually independent (hence uncorrelated), then the variance
//! of any ±1-weighted sum of `2N` consecutive realizations equals the sum of the
//! individual variances, i.e. `σ²_N = 2·N·σ²` (Eq. 6).  If the measured `σ²_N` deviates
//! from that linear law, the realizations cannot be independent.

use serde::{Deserialize, Serialize};

use crate::descriptive::sample_variance;
use crate::{ensure_finite, ensure_len, Result, StatsError};

/// Outcome of a Bienaymé linearity check at a single accumulation depth `N`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BienaymeCheck {
    /// Accumulation depth `N` (the statistic uses `2N` consecutive realizations).
    pub n: usize,
    /// Measured variance of the accumulated statistic, `σ²_N`.
    pub measured: f64,
    /// Variance predicted under mutual independence, `2·N·σ²`.
    pub predicted_independent: f64,
    /// Relative excess `(measured - predicted) / predicted`.
    pub relative_excess: f64,
}

impl BienaymeCheck {
    /// Returns `true` when the measured variance exceeds the independent prediction by
    /// more than `tolerance` (relative), i.e. when Bienaymé's identity is violated.
    pub fn violates(&self, tolerance: f64) -> bool {
        self.relative_excess > tolerance
    }
}

/// Compares a measured accumulated variance against the value predicted by Bienaymé's
/// identity for independent realizations with per-sample variance `sigma2`.
///
/// # Errors
///
/// Returns an error when `n == 0`, `sigma2 <= 0`, or either variance is not finite.
pub fn bienayme_check(n: usize, measured_sigma2_n: f64, sigma2: f64) -> Result<BienaymeCheck> {
    if n == 0 {
        return Err(StatsError::InvalidParameter {
            name: "n",
            reason: "accumulation depth must be at least 1".to_string(),
        });
    }
    if sigma2 <= 0.0 || !sigma2.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "sigma2",
            reason: format!("per-sample variance must be positive and finite, got {sigma2}"),
        });
    }
    if !measured_sigma2_n.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "measured_sigma2_n",
            reason: "must be finite".to_string(),
        });
    }
    let predicted = 2.0 * n as f64 * sigma2;
    Ok(BienaymeCheck {
        n,
        measured: measured_sigma2_n,
        predicted_independent: predicted,
        relative_excess: (measured_sigma2_n - predicted) / predicted,
    })
}

/// Variance of the sum of `block` consecutive samples, estimated from non-overlapping
/// blocks of the series.
///
/// For an i.i.d. series this equals `block · Var(x)`; positive correlation inflates it,
/// negative correlation deflates it.  This is the direct empirical counterpart of the
/// left-hand side of Bienaymé's identity.
///
/// # Errors
///
/// Returns an error when `block == 0`, when fewer than two complete blocks fit in the
/// series, or when the series contains non-finite samples.
pub fn block_sum_variance(series: &[f64], block: usize) -> Result<f64> {
    if block == 0 {
        return Err(StatsError::InvalidParameter {
            name: "block",
            reason: "block length must be at least 1".to_string(),
        });
    }
    ensure_finite(series)?;
    ensure_len(series, 2 * block)?;
    let sums: Vec<f64> = series
        .chunks_exact(block)
        .map(|chunk| chunk.iter().sum::<f64>())
        .collect();
    sample_variance(&sums)
}

/// Ratio of the block-sum variance to `block · Var(x)`.
///
/// Equals ≈1 for independent samples, >1 for positively correlated samples (e.g. flicker
/// noise contributions), <1 for negatively correlated samples.
///
/// # Errors
///
/// Propagates the errors of [`block_sum_variance`] and of the per-sample variance
/// estimate; additionally fails when the per-sample variance is zero.
pub fn variance_ratio(series: &[f64], block: usize) -> Result<f64> {
    let per_sample = sample_variance(series)?;
    if per_sample == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "series",
            reason: "per-sample variance is zero".to_string(),
        });
    }
    let block_var = block_sum_variance(series, block)?;
    Ok(block_var / (block as f64 * per_sample))
}

/// Pooled (weighted) variance of several groups, each summarised by `(count, variance)`.
///
/// # Errors
///
/// Returns an error if no group has at least two samples or if a variance is negative
/// or non-finite.
pub fn pooled_variance(groups: &[(u64, f64)]) -> Result<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(count, var) in groups {
        if !var.is_finite() || var < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "groups",
                reason: format!("variance must be finite and non-negative, got {var}"),
            });
        }
        if count >= 2 {
            num += (count as f64 - 1.0) * var;
            den += count as f64 - 1.0;
        }
    }
    if den == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "groups",
            reason: "no group with at least two samples".to_string(),
        });
    }
    Ok(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bienayme_check_detects_excess() {
        let check = bienayme_check(10, 30.0, 1.0).unwrap();
        assert_eq!(check.predicted_independent, 20.0);
        assert!((check.relative_excess - 0.5).abs() < 1e-12);
        assert!(check.violates(0.2));
        assert!(!check.violates(0.6));
    }

    #[test]
    fn bienayme_check_rejects_bad_inputs() {
        assert!(bienayme_check(0, 1.0, 1.0).is_err());
        assert!(bienayme_check(1, 1.0, 0.0).is_err());
        assert!(bienayme_check(1, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn block_sum_variance_linear_for_alternating_series() {
        // Alternating +1/-1: blocks of 2 sum to 0, so the block-sum variance collapses —
        // a strongly negatively correlated series violates linearity downward.
        let series: Vec<f64> = (0..256)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let v = block_sum_variance(&series, 2).unwrap();
        assert!(v.abs() < 1e-12);
        let ratio = variance_ratio(&series, 2).unwrap();
        assert!(ratio < 0.1);
    }

    #[test]
    fn variance_ratio_near_one_for_pseudo_iid() {
        // A xorshift-style pseudo-random sequence behaves like i.i.d. for this purpose.
        let mut state = 0x9e3779b97f4a7c15u64;
        let series: Vec<f64> = (0..8192)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000_003) as f64 / 1_000_003.0 - 0.5
            })
            .collect();
        let ratio = variance_ratio(&series, 8).unwrap();
        assert!((ratio - 1.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn variance_ratio_large_for_random_walk_increment_reuse() {
        // A strongly positively correlated series: slowly varying ramp repeated in blocks.
        let series: Vec<f64> = (0..1024).map(|i| (i / 64) as f64).collect();
        let ratio = variance_ratio(&series, 32).unwrap();
        assert!(ratio > 5.0, "ratio {ratio}");
    }

    #[test]
    fn block_sum_variance_rejects_degenerate_inputs() {
        assert!(block_sum_variance(&[1.0, 2.0], 0).is_err());
        assert!(block_sum_variance(&[1.0, 2.0, 3.0], 2).is_err());
    }

    #[test]
    fn pooled_variance_weights_by_dof() {
        let pooled = pooled_variance(&[(3, 2.0), (5, 4.0)]).unwrap();
        // (2*2 + 4*4) / (2 + 4) = 20/6
        assert!((pooled - 20.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_variance_rejects_empty_and_negative() {
        assert!(pooled_variance(&[(1, 1.0)]).is_err());
        assert!(pooled_variance(&[(3, -1.0)]).is_err());
    }
}
