//! Descriptive statistics: streaming moments (Welford), slice helpers.
//!
//! The [`RunningStats`] accumulator is used by acquisition campaigns in `ptrng-measure`
//! to compute `σ²_N` without storing every realization of `s_N`.

use serde::{Deserialize, Serialize};

use crate::{ensure_finite, ensure_len, Result, StatsError};

/// Streaming estimator of mean, variance, skewness and kurtosis (Welford / Pébay update).
///
/// # Example
///
/// ```
/// use ptrng_stats::descriptive::RunningStats;
///
/// let mut acc = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean() - 2.5).abs() < 1e-12);
/// assert!((acc.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.count as f64;
        self.count += 1;
        let n = self.count as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds every observation of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Merges another accumulator into this one (parallel reduction support).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n_a = self.count as f64;
        let n_b = other.count as f64;
        let n = n_a + n_b;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let mean = self.mean + delta * n_b / n;
        let m2 = self.m2 + other.m2 + delta2 * n_a * n_b / n;
        let m3 = self.m3
            + other.m3
            + delta3 * n_a * n_b * (n_a - n_b) / (n * n)
            + 3.0 * delta * (n_a * other.m2 - n_b * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * n_a * n_b * (n_a * n_a - n_a * n_b + n_b * n_b) / (n * n * n)
            + 6.0 * delta2 * (n_a * n_a * other.m2 + n_b * n_b * self.m2) / (n * n)
            + 4.0 * delta * (n_a * other.m3 - n_b * self.m3) / n;

        self.count += other.count;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`; 0 if fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divides by `n - 1`; 0 if fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Sample skewness (0 if fewer than 3 observations or zero variance).
    pub fn skewness(&self) -> f64 {
        if self.count < 3 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.count as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Excess kurtosis (0 if fewer than 4 observations or zero variance).
    pub fn excess_kurtosis(&self) -> f64 {
        if self.count < 4 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.count as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Smallest observation seen (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = RunningStats::new();
        acc.extend(iter);
        acc
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        RunningStats::extend(self, iter);
    }
}

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns an error for an empty slice or non-finite samples.
pub fn mean(series: &[f64]) -> Result<f64> {
    ensure_len(series, 1)?;
    ensure_finite(series)?;
    Ok(series.iter().sum::<f64>() / series.len() as f64)
}

/// Unbiased sample variance of a slice (normalized by `n - 1`).
///
/// # Errors
///
/// Returns an error for a slice with fewer than two samples or non-finite samples.
pub fn sample_variance(series: &[f64]) -> Result<f64> {
    ensure_len(series, 2)?;
    ensure_finite(series)?;
    let m = series.iter().sum::<f64>() / series.len() as f64;
    let ss: f64 = series.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (series.len() as f64 - 1.0))
}

/// Population variance of a slice (normalized by `n`).
///
/// # Errors
///
/// Returns an error for an empty slice or non-finite samples.
pub fn population_variance(series: &[f64]) -> Result<f64> {
    ensure_len(series, 1)?;
    ensure_finite(series)?;
    let m = series.iter().sum::<f64>() / series.len() as f64;
    let ss: f64 = series.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / series.len() as f64)
}

/// Sample standard deviation of a slice.
///
/// # Errors
///
/// Propagates the errors of [`sample_variance`].
pub fn sample_std_dev(series: &[f64]) -> Result<f64> {
    Ok(sample_variance(series)?.sqrt())
}

/// Root-mean-square value of a slice.
///
/// # Errors
///
/// Returns an error for an empty slice or non-finite samples.
pub fn rms(series: &[f64]) -> Result<f64> {
    ensure_len(series, 1)?;
    ensure_finite(series)?;
    let ms: f64 = series.iter().map(|x| x * x).sum::<f64>() / series.len() as f64;
    Ok(ms.sqrt())
}

/// Minimum and maximum of a slice.
///
/// # Errors
///
/// Returns an error for an empty slice or non-finite samples.
pub fn min_max(series: &[f64]) -> Result<(f64, f64)> {
    ensure_len(series, 1)?;
    ensure_finite(series)?;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in series {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Ok((lo, hi))
}

/// Median of a slice (average of the two central order statistics for even lengths).
///
/// # Errors
///
/// Returns an error for an empty slice or non-finite samples.
pub fn median(series: &[f64]) -> Result<f64> {
    ensure_len(series, 1)?;
    ensure_finite(series)?;
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples are comparable"));
    let n = sorted.len();
    if n % 2 == 1 {
        Ok(sorted[n / 2])
    } else {
        Ok(0.5 * (sorted[n / 2 - 1] + sorted[n / 2]))
    }
}

/// Quantile of a slice using linear interpolation between order statistics.
///
/// `q` must lie in `[0, 1]`.
///
/// # Errors
///
/// Returns an error for an empty slice, non-finite samples, or `q` outside `[0, 1]`.
pub fn quantile(series: &[f64], q: f64) -> Result<f64> {
    ensure_len(series, 1)?;
    ensure_finite(series)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            reason: format!("{q} is outside [0, 1]"),
        });
    }
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples are comparable"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let w = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn running_stats_matches_slice_functions() {
        let data = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0];
        let acc: RunningStats = data.iter().copied().collect();
        assert_close(acc.mean(), mean(&data).unwrap(), 1e-12);
        assert_close(acc.sample_variance(), sample_variance(&data).unwrap(), 1e-9);
        assert_close(acc.min(), 1.0, 0.0);
        assert_close(acc.max(), 36.0, 0.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(data[..40].iter().copied());
        b.extend(data[40..].iter().copied());
        a.merge(&b);
        let full: RunningStats = data.iter().copied().collect();
        assert_eq!(a.count(), full.count());
        assert_close(a.mean(), full.mean(), 1e-10);
        assert_close(a.sample_variance(), full.sample_variance(), 1e-8);
        assert_close(a.skewness(), full.skewness(), 1e-6);
        assert_close(a.excess_kurtosis(), full.excess_kurtosis(), 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = [2.0, 4.0, 6.0];
        let mut acc: RunningStats = data.iter().copied().collect();
        let before = acc;
        acc.merge(&RunningStats::new());
        assert_eq!(acc, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let data = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let acc: RunningStats = data.iter().copied().collect();
        assert_close(acc.skewness(), 0.0, 1e-12);
    }

    #[test]
    fn kurtosis_of_two_point_distribution() {
        // A symmetric two-point distribution has excess kurtosis -2.
        let data = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let acc: RunningStats = data.iter().copied().collect();
        assert_close(acc.excess_kurtosis(), -2.0, 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0, 0.0);
        assert_close(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5, 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_close(quantile(&data, 0.0).unwrap(), 0.0, 0.0);
        assert_close(quantile(&data, 1.0).unwrap(), 4.0, 0.0);
        assert_close(quantile(&data, 0.5).unwrap(), 2.0, 0.0);
        assert_close(quantile(&data, 0.25).unwrap(), 1.0, 0.0);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert!(quantile(&[1.0], 1.5).is_err());
    }

    #[test]
    fn variance_requires_two_samples() {
        assert!(sample_variance(&[1.0]).is_err());
        assert!(population_variance(&[1.0]).is_ok());
    }

    #[test]
    fn rms_of_constant() {
        assert_close(rms(&[3.0, 3.0, 3.0]).unwrap(), 3.0, 1e-12);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(mean(&[1.0, f64::NAN]).is_err());
        assert!(sample_variance(&[1.0, f64::INFINITY]).is_err());
    }
}
