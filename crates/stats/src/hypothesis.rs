//! Hypothesis tests used to corroborate (or refute) independence and distributional
//! assumptions about jitter series.
//!
//! * [`chi_squared_gof`] — goodness-of-fit against expected bin counts,
//! * [`ks_test_normal`] / [`ks_test_uniform`] — Kolmogorov–Smirnov distribution tests,
//! * [`ljung_box`] — portmanteau test for serial correlation (the classical counterpart
//!   of the paper's Bienaymé-based dependence argument),
//! * [`runs_test`] — Wald–Wolfowitz runs test around the median.

use serde::{Deserialize, Serialize};

use crate::autocorr::autocorrelation;
use crate::histogram::EmpiricalCdf;
use crate::special::{chi_squared_sf, kolmogorov_sf, normal_cdf};
use crate::{ensure_finite, ensure_len, Result, StatsError};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestOutcome {
    /// Name of the test.
    pub name: String,
    /// Value of the test statistic.
    pub statistic: f64,
    /// p-value under the null hypothesis.
    pub p_value: f64,
    /// Significance level the verdict refers to.
    pub alpha: f64,
}

impl TestOutcome {
    /// Returns `true` when the null hypothesis is **rejected** at level `alpha`.
    pub fn rejected(&self) -> bool {
        self.p_value < self.alpha
    }

    /// Returns `true` when the data are consistent with the null hypothesis.
    pub fn passed(&self) -> bool {
        !self.rejected()
    }
}

/// χ² goodness-of-fit test of observed counts against expected counts.
///
/// `ddof` is the number of model parameters estimated from the data (subtracted from the
/// degrees of freedom in addition to the usual 1).
///
/// # Errors
///
/// Returns an error when the inputs are mismatched, fewer than two bins are provided, an
/// expected count is not strictly positive, or the degrees of freedom vanish.
pub fn chi_squared_gof(
    observed: &[f64],
    expected: &[f64],
    ddof: usize,
    alpha: f64,
) -> Result<TestOutcome> {
    ensure_finite(observed)?;
    ensure_finite(expected)?;
    if observed.len() != expected.len() {
        return Err(StatsError::InvalidParameter {
            name: "observed/expected",
            reason: format!("length mismatch: {} vs {}", observed.len(), expected.len()),
        });
    }
    ensure_len(observed, 2)?;
    check_alpha(alpha)?;
    if expected.iter().any(|&e| e <= 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "expected",
            reason: "expected counts must be strictly positive".to_string(),
        });
    }
    let dof = observed.len().saturating_sub(1 + ddof);
    if dof == 0 {
        return Err(StatsError::InvalidParameter {
            name: "ddof",
            reason: "degrees of freedom reduced to zero".to_string(),
        });
    }
    let statistic: f64 = observed
        .iter()
        .zip(expected.iter())
        .map(|(o, e)| (o - e) * (o - e) / e)
        .sum();
    let p_value = chi_squared_sf(statistic, dof)?;
    Ok(TestOutcome {
        name: "chi-squared goodness-of-fit".to_string(),
        statistic,
        p_value,
        alpha,
    })
}

/// Kolmogorov–Smirnov test of a sample against the normal distribution with the given
/// mean and standard deviation.
///
/// # Errors
///
/// Returns an error for samples with fewer than 8 points, non-finite values,
/// `std_dev <= 0`, or an invalid `alpha`.
pub fn ks_test_normal(sample: &[f64], mean: f64, std_dev: f64, alpha: f64) -> Result<TestOutcome> {
    if std_dev <= 0.0 || !std_dev.is_finite() || !mean.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "std_dev/mean",
            reason: "mean must be finite and std_dev positive".to_string(),
        });
    }
    ks_test(sample, alpha, "kolmogorov-smirnov (normal)", |x| {
        normal_cdf((x - mean) / std_dev)
    })
}

/// Kolmogorov–Smirnov test of a sample against the uniform distribution on `[lo, hi]`.
///
/// # Errors
///
/// Returns an error for samples with fewer than 8 points, non-finite values, `hi <= lo`,
/// or an invalid `alpha`.
pub fn ks_test_uniform(sample: &[f64], lo: f64, hi: f64, alpha: f64) -> Result<TestOutcome> {
    if hi <= lo || !lo.is_finite() || !hi.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "lo/hi",
            reason: "need finite lo < hi".to_string(),
        });
    }
    ks_test(sample, alpha, "kolmogorov-smirnov (uniform)", |x| {
        ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
    })
}

fn ks_test(
    sample: &[f64],
    alpha: f64,
    name: &str,
    cdf: impl Fn(f64) -> f64,
) -> Result<TestOutcome> {
    ensure_len(sample, 8)?;
    ensure_finite(sample)?;
    check_alpha(alpha)?;
    let ecdf = EmpiricalCdf::new(sample)?;
    let n = sample.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in ecdf.sorted_samples().iter().enumerate() {
        let model = cdf(x);
        let above = (i as f64 + 1.0) / n - model;
        let below = model - i as f64 / n;
        d = d.max(above.max(below));
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    let p_value = kolmogorov_sf(lambda);
    Ok(TestOutcome {
        name: name.to_string(),
        statistic: d,
        p_value,
        alpha,
    })
}

/// Ljung–Box portmanteau test for serial correlation up to `lags`.
///
/// The null hypothesis is that the series is independently distributed; rejection means
/// the series exhibits serial correlation — the classical statistical formulation of the
/// dependence the paper demonstrates for jitter realizations under flicker noise.
///
/// # Errors
///
/// Returns an error when `lags == 0`, the series is shorter than `lags + 2`, samples are
/// non-finite, the variance is zero, or `alpha` is invalid.
pub fn ljung_box(series: &[f64], lags: usize, alpha: f64) -> Result<TestOutcome> {
    if lags == 0 {
        return Err(StatsError::InvalidParameter {
            name: "lags",
            reason: "at least one lag is required".to_string(),
        });
    }
    ensure_len(series, lags + 2)?;
    check_alpha(alpha)?;
    let ac = autocorrelation(series, lags)?;
    let n = series.len() as f64;
    let statistic = n
        * (n + 2.0)
        * ac.autocorrelation
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, r)| r * r / (n - k as f64))
            .sum::<f64>();
    let p_value = chi_squared_sf(statistic, lags)?;
    Ok(TestOutcome {
        name: format!("ljung-box ({lags} lags)"),
        statistic,
        p_value,
        alpha,
    })
}

/// Wald–Wolfowitz runs test around the median.
///
/// The null hypothesis is that the sequence of above/below-median indicators is random
/// (no clustering, no alternation); the statistic is asymptotically standard normal.
///
/// # Errors
///
/// Returns an error for series with fewer than 20 samples, non-finite samples, a series
/// whose samples are all on one side of the median, or an invalid `alpha`.
pub fn runs_test(series: &[f64], alpha: f64) -> Result<TestOutcome> {
    ensure_len(series, 20)?;
    ensure_finite(series)?;
    check_alpha(alpha)?;
    let med = crate::descriptive::median(series)?;
    // Samples equal to the median are dropped, as is conventional.
    let signs: Vec<bool> = series
        .iter()
        .filter(|&&x| x != med)
        .map(|&x| x > med)
        .collect();
    let n_plus = signs.iter().filter(|&&s| s).count() as f64;
    let n_minus = signs.len() as f64 - n_plus;
    if n_plus == 0.0 || n_minus == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "series",
            reason: "all samples fall on one side of the median".to_string(),
        });
    }
    let runs = 1 + signs.windows(2).filter(|w| w[0] != w[1]).count();
    let n = n_plus + n_minus;
    let expected = 2.0 * n_plus * n_minus / n + 1.0;
    let variance = 2.0 * n_plus * n_minus * (2.0 * n_plus * n_minus - n) / (n * n * (n - 1.0));
    if variance <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "series",
            reason: "degenerate runs-test variance".to_string(),
        });
    }
    let z = (runs as f64 - expected) / variance.sqrt();
    let p_value = 2.0 * crate::special::normal_sf(z.abs());
    Ok(TestOutcome {
        name: "wald-wolfowitz runs".to_string(),
        statistic: z,
        p_value,
        alpha,
    })
}

fn check_alpha(alpha: f64) -> Result<()> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "alpha",
            reason: format!("significance level must be in (0, 1), got {alpha}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn chi_squared_gof_accepts_matching_counts() {
        let observed = vec![98.0, 102.0, 100.0, 100.0];
        let expected = vec![100.0; 4];
        let outcome = chi_squared_gof(&observed, &expected, 0, 0.05).unwrap();
        assert!(outcome.passed());
        assert!(outcome.statistic < 1.0);
    }

    #[test]
    fn chi_squared_gof_rejects_skewed_counts() {
        let observed = vec![200.0, 50.0, 50.0, 100.0];
        let expected = vec![100.0; 4];
        let outcome = chi_squared_gof(&observed, &expected, 0, 0.05).unwrap();
        assert!(outcome.rejected());
    }

    #[test]
    fn chi_squared_gof_validates_inputs() {
        assert!(chi_squared_gof(&[1.0], &[1.0], 0, 0.05).is_err());
        assert!(chi_squared_gof(&[1.0, 2.0], &[1.0], 0, 0.05).is_err());
        assert!(chi_squared_gof(&[1.0, 2.0], &[1.0, 0.0], 0, 0.05).is_err());
        assert!(chi_squared_gof(&[1.0, 2.0], &[1.0, 2.0], 1, 0.05).is_err());
        assert!(chi_squared_gof(&[1.0, 2.0], &[1.0, 2.0], 0, 1.5).is_err());
    }

    #[test]
    fn ks_normal_accepts_gaussian_sample() {
        let sample = gaussian(2000, 1);
        let outcome = ks_test_normal(&sample, 0.0, 1.0, 0.01).unwrap();
        assert!(outcome.passed(), "p = {}", outcome.p_value);
    }

    #[test]
    fn ks_normal_rejects_uniform_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample: Vec<f64> = (0..2000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let outcome = ks_test_normal(&sample, 0.0, 1.0, 0.01).unwrap();
        assert!(outcome.rejected());
    }

    #[test]
    fn ks_uniform_accepts_uniform_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let outcome = ks_test_uniform(&sample, 0.0, 1.0, 0.01).unwrap();
        assert!(outcome.passed(), "p = {}", outcome.p_value);
    }

    #[test]
    fn ks_validates_inputs() {
        assert!(ks_test_normal(&[1.0; 4], 0.0, 1.0, 0.05).is_err());
        assert!(ks_test_normal(&gaussian(100, 5), 0.0, 0.0, 0.05).is_err());
        assert!(ks_test_uniform(&gaussian(100, 5), 1.0, 1.0, 0.05).is_err());
    }

    #[test]
    fn ljung_box_accepts_white_noise() {
        let sample = gaussian(5000, 7);
        let outcome = ljung_box(&sample, 20, 0.01).unwrap();
        assert!(outcome.passed(), "p = {}", outcome.p_value);
    }

    #[test]
    fn ljung_box_rejects_smoothed_noise() {
        let base = gaussian(5000, 11);
        let smoothed: Vec<f64> = base.windows(8).map(|w| w.iter().sum::<f64>()).collect();
        let outcome = ljung_box(&smoothed, 20, 0.01).unwrap();
        assert!(outcome.rejected());
    }

    #[test]
    fn ljung_box_validates_inputs() {
        assert!(ljung_box(&gaussian(10, 1), 0, 0.05).is_err());
        assert!(ljung_box(&gaussian(10, 1), 20, 0.05).is_err());
    }

    #[test]
    fn runs_test_accepts_random_sequence() {
        let sample = gaussian(2000, 13);
        let outcome = runs_test(&sample, 0.01).unwrap();
        assert!(outcome.passed(), "p = {}", outcome.p_value);
    }

    #[test]
    fn runs_test_rejects_monotone_ramp() {
        let sample: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let outcome = runs_test(&sample, 0.01).unwrap();
        assert!(outcome.rejected());
        assert!(outcome.statistic < 0.0, "too few runs gives a negative z");
    }

    #[test]
    fn runs_test_rejects_alternating_sequence() {
        let sample: Vec<f64> = (0..500)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let outcome = runs_test(&sample, 0.01).unwrap();
        assert!(outcome.rejected());
        assert!(outcome.statistic > 0.0, "too many runs gives a positive z");
    }

    #[test]
    fn runs_test_validates_inputs() {
        assert!(runs_test(&[1.0; 10], 0.05).is_err());
        let constant = vec![5.0; 50];
        assert!(runs_test(&constant, 0.05).is_err());
    }

    #[test]
    fn outcome_verdict_helpers() {
        let outcome = TestOutcome {
            name: "demo".to_string(),
            statistic: 1.0,
            p_value: 0.2,
            alpha: 0.05,
        };
        assert!(outcome.passed());
        assert!(!outcome.rejected());
    }
}
