//! Min-entropy ↔ bias algebra for binary sources.
//!
//! A binary source whose most likely value has probability `p_max = 1/2 + ε`
//! (with bias `ε ∈ [0, 1/2)`) carries `H_∞ = −log2(1/2 + ε)` bits of min-entropy
//! per bit.  The conditioning-pipeline entropy ledger tracks both readings and
//! needs the conversion to be exact and validated in one place: post-processing
//! stages compose naturally in bias space (piling-up lemma), while health-test
//! cutoffs and emission policies are stated in min-entropy space.

use crate::{Result, StatsError};

/// Min-entropy per bit of a binary source whose most likely value has probability
/// `p_max`: `−log2(p_max)`.
///
/// # Errors
///
/// Returns an error when `p_max` is outside `[1/2, 1)` (a binary source's most
/// likely value cannot be rarer than 1/2, and `p_max = 1` carries no entropy).
pub fn min_entropy_from_p_max(p_max: f64) -> Result<f64> {
    if !(0.5..1.0).contains(&p_max) {
        return Err(StatsError::InvalidParameter {
            name: "p_max",
            reason: format!("must be in [1/2, 1) for a binary source, got {p_max}"),
        });
    }
    Ok(-p_max.log2())
}

/// Min-entropy per bit of a binary source with bias `ε = |p − 1/2|`:
/// `−log2(1/2 + ε)`.
///
/// # Errors
///
/// Returns an error when `bias` is outside `[0, 1/2)`.
pub fn min_entropy_from_bias(bias: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&bias) {
        return Err(StatsError::InvalidParameter {
            name: "bias",
            reason: format!("a bit bias lies in [0, 1/2), got {bias}"),
        });
    }
    min_entropy_from_p_max(0.5 + bias)
}

/// Worst-case bias `ε = 2^{−H} − 1/2` consistent with a min-entropy claim of `H`
/// bits per bit — the inverse of [`min_entropy_from_bias`].
///
/// # Errors
///
/// Returns an error when `min_entropy` is outside `(0, 1]`.
pub fn bias_from_min_entropy(min_entropy: f64) -> Result<f64> {
    if !(min_entropy > 0.0 && min_entropy <= 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "min_entropy",
            reason: format!("must be in (0, 1] for binary samples, got {min_entropy}"),
        });
    }
    // Clamp: 2^-H - 1/2 can land a few ulps below 0 for H = 1.
    Ok((2.0f64.powf(-min_entropy) - 0.5).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbiased_bits_carry_one_bit() {
        assert!((min_entropy_from_p_max(0.5).unwrap() - 1.0).abs() < 1e-15);
        assert!((min_entropy_from_bias(0.0).unwrap() - 1.0).abs() < 1e-15);
        assert_eq!(bias_from_min_entropy(1.0).unwrap(), 0.0);
    }

    #[test]
    fn known_values() {
        // p_max = 0.75 → H = −log2(0.75) ≈ 0.415.
        assert!((min_entropy_from_p_max(0.75).unwrap() - 0.415_037_499_278_844).abs() < 1e-12);
        assert!((min_entropy_from_bias(0.25).unwrap() - 0.415_037_499_278_844).abs() < 1e-12);
    }

    #[test]
    fn conversions_round_trip() {
        for &bias in &[0.0, 1e-6, 0.01, 0.1, 0.25, 0.4, 0.499] {
            let h = min_entropy_from_bias(bias).unwrap();
            assert!(h > 0.0 && h <= 1.0, "h = {h}");
            let back = bias_from_min_entropy(h).unwrap();
            assert!((back - bias).abs() < 1e-12, "bias {bias} → {back}");
        }
    }

    #[test]
    fn domain_validation() {
        assert!(min_entropy_from_p_max(0.49).is_err());
        assert!(min_entropy_from_p_max(1.0).is_err());
        assert!(min_entropy_from_bias(-0.01).is_err());
        assert!(min_entropy_from_bias(0.5).is_err());
        assert!(bias_from_min_entropy(0.0).is_err());
        assert!(bias_from_min_entropy(1.01).is_err());
        assert!(bias_from_min_entropy(f64::NAN).is_err());
    }
}
