//! Power spectral density estimation: periodogram and Welch's averaged method.
//!
//! These estimators are used to verify that generated noise and phase processes have the
//! intended `1/f^α` spectral shape (e.g. the `Sφ(f) = b_th/f² + b_fl/f³` model of the
//! paper), and to fit spectral slopes.

use serde::{Deserialize, Serialize};

use crate::fft::{fft, next_power_of_two, Complex};
use crate::window::Window;
use crate::{ensure_finite, Result, StatsError};

/// A one-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsdEstimate {
    /// Frequencies in hertz (excluding DC), `len = n_bins`.
    pub frequencies: Vec<f64>,
    /// One-sided PSD values in unit²/Hz at the corresponding frequencies.
    pub psd: Vec<f64>,
    /// Sample rate of the analysed series, in hertz.
    pub sample_rate: f64,
    /// Number of averaged segments (1 for a plain periodogram).
    pub segments: usize,
}

impl PsdEstimate {
    /// Returns `(frequency, psd)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.frequencies
            .iter()
            .copied()
            .zip(self.psd.iter().copied())
    }

    /// Total power obtained by integrating the one-sided PSD over frequency
    /// (rectangle rule).  For a well-scaled estimate this approximates the signal
    /// variance.
    pub fn integrated_power(&self) -> f64 {
        if self.frequencies.len() < 2 {
            return 0.0;
        }
        let df = self.frequencies[1] - self.frequencies[0];
        self.psd.iter().sum::<f64>() * df
    }

    /// Fits `log10(PSD) = slope·log10(f) + intercept` over the frequency band
    /// `[f_lo, f_hi]` and returns `(slope, intercept)`.
    ///
    /// The slope identifies the dominant power-law: ≈ -2 for white-FM (thermal) phase
    /// noise, ≈ -3 for flicker-FM phase noise.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two bins fall inside the band.
    pub fn log_log_slope(&self, f_lo: f64, f_hi: f64) -> Result<(f64, f64)> {
        let pts: Vec<(f64, f64)> = self
            .iter()
            .filter(|(f, p)| *f >= f_lo && *f <= f_hi && *p > 0.0)
            .map(|(f, p)| (f.log10(), p.log10()))
            .collect();
        if pts.len() < 2 {
            return Err(StatsError::SeriesTooShort {
                len: pts.len(),
                needed: 2,
            });
        }
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let fit = crate::fit::linear_fit(&xs, &ys)?;
        Ok((fit.slope, fit.intercept))
    }
}

/// Computes the one-sided periodogram of a real series sampled at `sample_rate` Hz.
///
/// The series mean is removed and the series is zero-padded to the next power of two.
/// DC and the Nyquist bin are excluded from the returned estimate.
///
/// # Errors
///
/// Returns an error for series with fewer than 4 samples, non-finite samples, or a
/// non-positive sample rate.
pub fn periodogram(series: &[f64], sample_rate: f64, window: Window) -> Result<PsdEstimate> {
    validate(series, sample_rate, 4)?;
    let psd = segment_psd(series, sample_rate, window)?;
    let n_fft = next_power_of_two(series.len());
    Ok(PsdEstimate {
        frequencies: bin_frequencies(n_fft, sample_rate),
        psd,
        sample_rate,
        segments: 1,
    })
}

/// Welch's method: averages windowed periodograms of 50 %-overlapping segments of length
/// `segment_len` (rounded up to a power of two).
///
/// # Errors
///
/// Returns an error when the series is shorter than one segment, the segment length is
/// below 4, the sample rate is not positive, or samples are non-finite.
pub fn welch_psd(
    series: &[f64],
    sample_rate: f64,
    segment_len: usize,
    window: Window,
) -> Result<PsdEstimate> {
    validate(series, sample_rate, 4)?;
    if segment_len < 4 {
        return Err(StatsError::InvalidParameter {
            name: "segment_len",
            reason: format!("must be at least 4, got {segment_len}"),
        });
    }
    let seg = next_power_of_two(segment_len);
    if series.len() < seg {
        return Err(StatsError::SeriesTooShort {
            len: series.len(),
            needed: seg,
        });
    }
    let hop = seg / 2;
    let mut acc = vec![0.0; seg / 2 - 1];
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + seg <= series.len() {
        let psd = segment_psd(&series[start..start + seg], sample_rate, window)?;
        for (a, p) in acc.iter_mut().zip(psd.iter()) {
            *a += p;
        }
        segments += 1;
        start += hop;
    }
    for a in &mut acc {
        *a /= segments as f64;
    }
    Ok(PsdEstimate {
        frequencies: bin_frequencies(seg, sample_rate),
        psd: acc,
        sample_rate,
        segments,
    })
}

fn validate(series: &[f64], sample_rate: f64, min_len: usize) -> Result<()> {
    ensure_finite(series)?;
    if series.len() < min_len {
        return Err(StatsError::SeriesTooShort {
            len: series.len(),
            needed: min_len,
        });
    }
    if sample_rate <= 0.0 || !sample_rate.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "sample_rate",
            reason: format!("must be positive and finite, got {sample_rate}"),
        });
    }
    Ok(())
}

/// One-sided PSD of a single (already extracted) segment, bins 1..n/2 (DC and Nyquist
/// excluded).
fn segment_psd(segment: &[f64], sample_rate: f64, window: Window) -> Result<Vec<f64>> {
    let n_fft = next_power_of_two(segment.len());
    let mean = segment.iter().sum::<f64>() / segment.len() as f64;
    let coeffs = window.coefficients(segment.len());
    let mut buf = vec![Complex::zero(); n_fft];
    for (i, (&x, &w)) in segment.iter().zip(coeffs.iter()).enumerate() {
        buf[i] = Complex::from_real((x - mean) * w);
    }
    let spec = fft(&buf)?;
    // Normalization: divide by fs · Σ w², times 2 for the one-sided fold.
    let norm = sample_rate * window.power(segment.len());
    Ok((1..n_fft / 2)
        .map(|k| 2.0 * spec[k].norm_sqr() / norm)
        .collect())
}

fn bin_frequencies(n_fft: usize, sample_rate: f64) -> Vec<f64> {
    (1..n_fft / 2)
        .map(|k| k as f64 * sample_rate / n_fft as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn periodogram_locates_a_tone() {
        let fs = 1000.0;
        let f0 = 125.0;
        let series: Vec<f64> = (0..1024)
            .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        let est = periodogram(&series, fs, Window::Rectangular).unwrap();
        let (peak_f, _) = est
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((peak_f - f0).abs() < fs / 1024.0 + 1e-9, "peak at {peak_f}");
    }

    #[test]
    fn white_noise_psd_level_is_flat_and_correct() {
        // White Gaussian noise with variance σ² sampled at fs has one-sided PSD 2σ²/fs.
        let mut rng = StdRng::seed_from_u64(7);
        let fs = 1e6;
        let sigma = 3.0;
        let series: Vec<f64> = (0..1 << 15)
            .map(|_| {
                // Box–Muller from two uniforms to avoid a rand_distr dependency here.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let est = welch_psd(&series, fs, 2048, Window::Hann).unwrap();
        let expected = 2.0 * sigma * sigma / fs;
        let mean_psd = est.psd.iter().sum::<f64>() / est.psd.len() as f64;
        assert!(
            (mean_psd - expected).abs() / expected < 0.15,
            "mean PSD {mean_psd}, expected {expected}"
        );
        // Flatness: log-log slope near zero.
        let (slope, _) = est.log_log_slope(1e3, 4e5).unwrap();
        assert!(slope.abs() < 0.2, "slope {slope}");
    }

    #[test]
    fn integrated_power_approximates_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let fs = 1.0;
        let series: Vec<f64> = (0..1 << 14).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let var = crate::descriptive::sample_variance(&series).unwrap();
        let est = welch_psd(&series, fs, 1024, Window::Hann).unwrap();
        let power = est.integrated_power();
        assert!(
            (power - var).abs() / var < 0.2,
            "power {power} vs variance {var}"
        );
    }

    #[test]
    fn welch_counts_overlapping_segments() {
        let series = vec![0.5; 4096];
        let est = welch_psd(&series, 100.0, 1024, Window::Hann).unwrap();
        // Segments start at 0, 512, ..., 3072 → 7 segments.
        assert_eq!(est.segments, 7);
        assert_eq!(est.frequencies.len(), 511);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(periodogram(&[1.0, 2.0], 1.0, Window::Hann).is_err());
        assert!(periodogram(&[1.0; 16], 0.0, Window::Hann).is_err());
        assert!(periodogram(&[f64::NAN; 16], 1.0, Window::Hann).is_err());
        assert!(welch_psd(&[1.0; 16], 1.0, 2, Window::Hann).is_err());
        assert!(welch_psd(&[1.0; 16], 1.0, 64, Window::Hann).is_err());
    }

    #[test]
    fn log_log_slope_recovers_one_over_f_squared() {
        // Synthesize a PSD estimate directly and check the fit helper.
        let frequencies: Vec<f64> = (1..1000).map(|k| k as f64).collect();
        let psd: Vec<f64> = frequencies.iter().map(|f| 4.0 / (f * f)).collect();
        let est = PsdEstimate {
            frequencies,
            psd,
            sample_rate: 2000.0,
            segments: 1,
        };
        let (slope, intercept) = est.log_log_slope(1.0, 999.0).unwrap();
        assert!((slope + 2.0).abs() < 1e-9);
        assert!((intercept - 4.0f64.log10()).abs() < 1e-9);
    }
}
