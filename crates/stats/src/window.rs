//! Window (taper) functions for spectral estimation.

use serde::{Deserialize, Serialize};

/// Taper applied to a segment before computing a periodogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Window {
    /// No taper (boxcar).
    Rectangular,
    /// Hann window `0.5 - 0.5·cos(2πn/(N-1))` — the default for Welch estimation.
    #[default]
    Hann,
    /// Hamming window `0.54 - 0.46·cos(2πn/(N-1))`.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `i` of a length-`len` segment.
    ///
    /// Returns 1.0 for degenerate lengths (`len <= 1`).
    pub fn coefficient(self, i: usize, len: usize) -> f64 {
        if len <= 1 {
            return 1.0;
        }
        let x = 2.0 * std::f64::consts::PI * i as f64 / (len - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Returns the vector of window coefficients for a segment of length `len`.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        (0..len).map(|i| self.coefficient(i, len)).collect()
    }

    /// Sum of squared coefficients, used for PSD power normalization.
    pub fn power(self, len: usize) -> f64 {
        self.coefficients(len).iter().map(|c| c * c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::Rectangular.coefficients(8);
        assert!(w.iter().all(|&c| c == 1.0));
        assert_eq!(Window::Rectangular.power(8), 8.0);
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let w = Window::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_small_but_nonzero() {
        let w = Window::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_nonnegative() {
        let w = Window::Blackman.coefficients(64);
        assert!(w.iter().all(|&c| c >= -1e-12));
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.coefficient(0, 0), 1.0);
        assert_eq!(Window::Hann.coefficient(0, 1), 1.0);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.coefficients(33);
            for i in 0..w.len() {
                assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12);
            }
        }
    }
}
