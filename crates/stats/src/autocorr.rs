//! Autocovariance and autocorrelation estimation.
//!
//! Mutual independence of jitter realizations implies (but is not implied by) a vanishing
//! autocorrelation at every non-zero lag; the sample autocorrelation function therefore
//! provides a complementary, classical view of the dependence the paper detects through
//! the non-linearity of `σ²_N`.

use serde::{Deserialize, Serialize};

use crate::fft::autocovariance_fft;
use crate::{ensure_finite, Result, StatsError};

/// Sample autocovariance/autocorrelation function up to a maximum lag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Autocorrelation {
    /// Autocovariance at lags `0..=max_lag` (biased estimator, divides by `n`).
    pub autocovariance: Vec<f64>,
    /// Autocorrelation at lags `0..=max_lag` (autocovariance normalized by lag 0).
    pub autocorrelation: Vec<f64>,
    /// Number of samples in the analysed series.
    pub samples: usize,
}

impl Autocorrelation {
    /// Largest lag contained in the estimate.
    pub fn max_lag(&self) -> usize {
        self.autocovariance.len().saturating_sub(1)
    }

    /// Approximate 95 % confidence band (±1.96/√n) for the hypothesis that the series is
    /// white; autocorrelations outside the band are individually significant.
    pub fn white_noise_band(&self) -> f64 {
        1.96 / (self.samples as f64).sqrt()
    }

    /// Number of lags in `1..=max_lag` whose autocorrelation falls outside the white-noise
    /// confidence band.
    pub fn significant_lags(&self) -> usize {
        let band = self.white_noise_band();
        self.autocorrelation
            .iter()
            .skip(1)
            .filter(|r| r.abs() > band)
            .count()
    }
}

/// Estimates the autocovariance and autocorrelation of a series up to `max_lag`.
///
/// Uses the FFT-based Wiener–Khinchin route for long series and the direct sum for short
/// ones; the two are numerically identical (biased estimator, mean removed).
///
/// # Errors
///
/// Returns an error for series with fewer than two samples, non-finite samples, a
/// `max_lag` of 0, `max_lag >= len`, or a series with zero variance.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Result<Autocorrelation> {
    ensure_finite(series)?;
    if series.len() < 2 {
        return Err(StatsError::SeriesTooShort {
            len: series.len(),
            needed: 2,
        });
    }
    if max_lag == 0 || max_lag >= series.len() {
        return Err(StatsError::InvalidParameter {
            name: "max_lag",
            reason: format!(
                "must be in 1..{} (series length), got {max_lag}",
                series.len()
            ),
        });
    }
    let autocovariance = if series.len() > 2048 {
        autocovariance_fft(series, max_lag)?
    } else {
        direct_autocovariance(series, max_lag)
    };
    let c0 = autocovariance[0];
    if c0 <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "series",
            reason: "series has zero variance".to_string(),
        });
    }
    let autocorrelation = autocovariance.iter().map(|c| c / c0).collect();
    Ok(Autocorrelation {
        autocovariance,
        autocorrelation,
        samples: series.len(),
    })
}

fn direct_autocovariance(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    (0..=max_lag)
        .map(|lag| {
            (0..n - lag)
                .map(|i| (series[i] - mean) * (series[i + lag] - mean))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// Lag-1 autocorrelation, a quick scalar diagnostic of serial dependence.
///
/// # Errors
///
/// Propagates the errors of [`autocorrelation`].
pub fn lag1_autocorrelation(series: &[f64]) -> Result<f64> {
    Ok(autocorrelation(series, 1)?.autocorrelation[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000_003) as f64 / 1_000_003.0 - 0.5
            })
            .collect()
    }

    #[test]
    fn direct_and_fft_paths_agree() {
        let series = pseudo_random(4096, 99);
        let long = autocorrelation(&series, 20).unwrap(); // FFT path (len > 2048)
        let short = autocorrelation(&series[..2000], 20).unwrap(); // direct path
                                                                   // They analyse different lengths, so only check internal consistency of each.
        assert!((long.autocorrelation[0] - 1.0).abs() < 1e-12);
        assert!((short.autocorrelation[0] - 1.0).abs() < 1e-12);

        // Cross-check numerically on the same data via the private helper.
        let direct = direct_autocovariance(&series, 20);
        for (a, b) in long.autocovariance.iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn white_series_has_small_autocorrelation() {
        let series = pseudo_random(20_000, 12345);
        let ac = autocorrelation(&series, 50).unwrap();
        assert!((ac.autocorrelation[0] - 1.0).abs() < 1e-12);
        for lag in 1..=50 {
            assert!(ac.autocorrelation[lag].abs() < 0.05, "lag {lag}");
        }
        // At most a few lags should exceed the 95 % band by chance.
        assert!(ac.significant_lags() <= 6);
    }

    #[test]
    fn moving_average_series_is_positively_correlated_at_lag1() {
        let base = pseudo_random(10_000, 7);
        let smoothed: Vec<f64> = base
            .windows(4)
            .map(|w| w.iter().sum::<f64>() / 4.0)
            .collect();
        let r1 = lag1_autocorrelation(&smoothed).unwrap();
        assert!(r1 > 0.5, "lag-1 autocorrelation {r1}");
        let ac = autocorrelation(&smoothed, 10).unwrap();
        assert!(ac.significant_lags() >= 3);
    }

    #[test]
    fn alternating_series_is_negatively_correlated() {
        let series: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r1 = lag1_autocorrelation(&series).unwrap();
        assert!((r1 + 1.0).abs() < 0.01, "lag-1 autocorrelation {r1}");
    }

    #[test]
    fn error_paths() {
        assert!(autocorrelation(&[1.0], 1).is_err());
        assert!(autocorrelation(&[1.0, 2.0, 3.0], 0).is_err());
        assert!(autocorrelation(&[1.0, 2.0, 3.0], 3).is_err());
        assert!(autocorrelation(&[5.0, 5.0, 5.0, 5.0], 2).is_err());
        assert!(autocorrelation(&[1.0, f64::NAN, 2.0], 1).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn autocorrelation_is_bounded_by_one(
                series in proptest::collection::vec(-100.0f64..100.0, 16..256),
                max_lag in 1usize..8,
            ) {
                prop_assume!(max_lag < series.len());
                let var: f64 = {
                    let m = series.iter().sum::<f64>() / series.len() as f64;
                    series.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
                };
                prop_assume!(var > 1e-9);
                let ac = autocorrelation(&series, max_lag).unwrap();
                for r in &ac.autocorrelation {
                    prop_assert!(*r <= 1.0 + 1e-9 && *r >= -1.0 - 1e-9);
                }
            }
        }
    }
}
