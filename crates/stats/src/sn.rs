//! The paper's accumulation statistic `s_N` and its variance `σ²_N`.
//!
//! Following Haddad et al. (DATE 2014, Eq. 4), for a period-jitter series `J(t_i)` the
//! statistic
//!
//! ```text
//! s_N(t_i) = Σ_{j=0}^{2N-1} a_j · J(t_{i+j}),   a_j = -1 for 0 ≤ j ≤ N-1, +1 otherwise
//! ```
//!
//! is the difference between two adjacent accumulations of `N` oscillator periods.  Its
//! variance `σ²_N` is computable even in the presence of flicker noise (unlike the plain
//! variance of accumulated jitter), and under mutual independence of the `J(t_i)` it must
//! equal `2·N·σ²` (Eq. 6).  The deviation from that linear law is the paper's evidence of
//! dependence.

use serde::{Deserialize, Serialize};

use crate::descriptive::sample_variance;
use crate::{ensure_finite, ensure_len, Result, StatsError};

/// One point of a `σ²_N` vs `N` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sigma2NPoint {
    /// Accumulation depth `N`.
    pub n: usize,
    /// Estimated variance of `s_N`.
    pub sigma2_n: f64,
    /// Number of `s_N` realizations the estimate is based on.
    pub samples: usize,
}

/// How consecutive realizations of `s_N` are extracted from the jitter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SnSampling {
    /// Windows advance by one period: maximal number of (correlated) realizations.
    #[default]
    Overlapping,
    /// Windows advance by `2N` periods: strictly disjoint realizations.
    Disjoint,
    /// Windows advance by `N` periods, matching the counter read-out of the paper's
    /// measurement circuit (Eq. 12), where each counter value is reused once.
    HalfOverlapping,
}

impl SnSampling {
    /// Window advance (in periods) for accumulation depth `n`.
    pub fn stride(self, n: usize) -> usize {
        match self {
            SnSampling::Overlapping => 1,
            SnSampling::Disjoint => 2 * n,
            SnSampling::HalfOverlapping => n,
        }
    }
}

/// Computes the series of `s_N` realizations from a period-jitter series.
///
/// The jitter series may equivalently be a series of raw periods `T(t_i)`: the statistic
/// uses ±1 weights that sum to zero, so any constant offset (the nominal period `1/f0`)
/// cancels exactly.
///
/// # Errors
///
/// Returns an error when `n == 0`, when the series is shorter than `2N`, or when the
/// series contains non-finite samples.
///
/// # Example
///
/// ```
/// use ptrng_stats::sn::{sn_series, SnSampling};
///
/// # fn main() -> Result<(), ptrng_stats::StatsError> {
/// let jitter = [1.0, 2.0, 3.0, 4.0];
/// // N = 1: s_1(t_i) = J(t_{i+1}) - J(t_i)
/// let s = sn_series(&jitter, 1, SnSampling::Overlapping)?;
/// assert_eq!(s, vec![1.0, 1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
pub fn sn_series(jitter: &[f64], n: usize, sampling: SnSampling) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(StatsError::InvalidParameter {
            name: "n",
            reason: "accumulation depth must be at least 1".to_string(),
        });
    }
    ensure_finite(jitter)?;
    ensure_len(jitter, 2 * n)?;

    // Prefix sums give each window sum in O(1):
    //   s_N(t_i) = [P(i+2N) - P(i+N)] - [P(i+N) - P(i)]
    let mut prefix = Vec::with_capacity(jitter.len() + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &x in jitter {
        acc += x;
        prefix.push(acc);
    }

    let stride = sampling.stride(n);
    let last_start = jitter.len() - 2 * n;
    let mut out = Vec::with_capacity(last_start / stride + 1);
    let mut i = 0;
    while i <= last_start {
        let second = prefix[i + 2 * n] - prefix[i + n];
        let first = prefix[i + n] - prefix[i];
        out.push(second - first);
        i += stride;
    }
    Ok(out)
}

/// Variance `σ²_N` of the accumulation statistic, using overlapping sampling.
///
/// # Errors
///
/// Returns an error when fewer than two realizations of `s_N` can be formed.
pub fn sigma2_n(jitter: &[f64], n: usize) -> Result<f64> {
    sigma2_n_with(jitter, n, SnSampling::Overlapping)
}

/// Variance `σ²_N` of the accumulation statistic with an explicit sampling strategy.
///
/// # Errors
///
/// Returns an error when fewer than two realizations of `s_N` can be formed.
pub fn sigma2_n_with(jitter: &[f64], n: usize, sampling: SnSampling) -> Result<f64> {
    if n == 0 {
        return Err(StatsError::InvalidParameter {
            name: "n",
            reason: "accumulation depth must be at least 1".to_string(),
        });
    }
    ensure_len(jitter, 2 * n)?;
    let prefix = checked_prefix_sums(jitter)?;
    match sigma2_n_over_prefix(&prefix, n, sampling.stride(n)) {
        Some((var, _)) => Ok(var),
        None => Err(StatsError::SeriesTooShort {
            len: jitter.len(),
            needed: 2 * n + sampling.stride(n),
        }),
    }
}

/// Prefix sums `P[i] = Σ_{t<i} x[t]` with `P[0] = 0`.
fn prefix_sums(jitter: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    std::iter::once(0.0)
        .chain(jitter.iter().map(|&x| {
            acc += x;
            acc
        }))
        .collect()
}

/// Builds the prefix sums while accumulating the overlapping-window variance of one
/// depth `n` (which must fit: `jitter.len() >= 2n`, at least two windows) in the same
/// pass.  Window `i` completes as prefix entry `j = i + 2n` is produced; its two lagged
/// reads land on just-written entries, so this fused pass costs barely more than the
/// build alone.  Accumulation order over windows is ascending `i`, identical to
/// [`sigma2_n_over_prefix`].
fn prefix_sums_with_depth(jitter: &[f64], n: usize) -> (Vec<f64>, f64, usize) {
    let len = jitter.len();
    let count = (len - 2 * n) + 1;
    let mut prefix = Vec::with_capacity(len + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    let mut shift = 0.0;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for (idx, &x) in jitter.iter().enumerate() {
        acc += x;
        prefix.push(acc);
        let j = idx + 1;
        if j >= 2 * n {
            let raw = prefix[j] - 2.0 * prefix[j - n] + prefix[j - 2 * n];
            if j == 2 * n {
                shift = raw;
            }
            let s = raw - shift;
            sum += s;
            sum_sq += s * s;
        }
    }
    let m = count as f64;
    let var = ((sum_sq - sum * sum / m) / (m - 1.0)).max(0.0);
    (prefix, var, count)
}

/// Post-hoc finiteness policy of the prefix-sum paths: a non-finite sample leaves the
/// final prefix entry non-finite (NaN and ±∞ both propagate through the running sum),
/// in which case the full `ensure_finite` scan runs to produce the same error the
/// windowed implementation reports.  Finite series that merely overflow the running sum
/// fall through like the reference (non-finite variances, no error).
fn ensure_prefix_finite(jitter: &[f64], prefix: &[f64]) -> Result<()> {
    if let Some(&last) = prefix.last() {
        if !last.is_finite() {
            ensure_finite(jitter)?;
        }
    }
    Ok(())
}

/// Builds the prefix sums and applies [`ensure_prefix_finite`].
fn checked_prefix_sums(jitter: &[f64]) -> Result<Vec<f64>> {
    let prefix = prefix_sums(jitter);
    ensure_prefix_finite(jitter, &prefix)?;
    Ok(prefix)
}

/// Variance of `s_N` over the windows visited with `stride`, straight off a shared
/// prefix-sum array: `s_N(t_i) = P[i+2N] - 2·P[i+N] + P[i]`.
///
/// One fused pass per depth, no intermediate `s_N` vector.  The accumulation is shifted
/// by the first window value (the textbook shifted-data variance), which keeps the
/// single pass as accurate as the two-pass estimator for any series whose `s_N` values
/// cluster anywhere near their first realization — in particular for the near-constant
/// `s_N` of smooth series, where a naive `Σs²  - (Σs)²/M` loses all precision.
///
/// Returns `None` when fewer than two windows fit.
fn sigma2_n_over_prefix(prefix: &[f64], n: usize, stride: usize) -> Option<(f64, usize)> {
    let len = prefix.len() - 1;
    if len < 2 * n {
        return None;
    }
    let last_start = len - 2 * n;
    let count = last_start / stride + 1;
    if count < 2 {
        return None;
    }
    let shift = prefix[2 * n] - 2.0 * prefix[n] + prefix[0];
    let (sum, sum_sq) = if stride == 1 {
        // Dominant (overlapping) case: three zipped subslice walks, two independent
        // accumulator pairs to break the floating-point dependency chains.
        let p0 = &prefix[..last_start + 1];
        let p1 = &prefix[n..last_start + 1 + n];
        let p2 = &prefix[2 * n..last_start + 1 + 2 * n];
        let mut sums = [0.0f64; 4];
        let mut sqs = [0.0f64; 4];
        let mut i = 0;
        while i + 3 < count {
            for lane in 0..4 {
                let s = (p2[i + lane] - 2.0 * p1[i + lane] + p0[i + lane]) - shift;
                sums[lane] += s;
                sqs[lane] += s * s;
            }
            i += 4;
        }
        while i < count {
            let s = (p2[i] - 2.0 * p1[i] + p0[i]) - shift;
            sums[0] += s;
            sqs[0] += s * s;
            i += 1;
        }
        (sums.iter().sum(), sqs.iter().sum())
    } else {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut i = 0;
        while i <= last_start {
            let s = (prefix[i + 2 * n] - 2.0 * prefix[i + n] + prefix[i]) - shift;
            sum += s;
            sum_sq += s * s;
            i += stride;
        }
        (sum, sum_sq)
    };
    let m = count as f64;
    let var = ((sum_sq - sum * sum / m) / (m - 1.0)).max(0.0);
    Some((var, count))
}

/// Sweeps `σ²_N` over a list of accumulation depths.
///
/// Depths for which the series is too short are skipped (they are not an error: sweeps
/// are routinely requested beyond the acquisition length).
///
/// The prefix sums of the series are built once and every depth is reduced in a single
/// fused pass over them (no per-depth `s_N` vector, no per-depth finiteness re-scan), so
/// a full multi-depth sweep costs `O(len + Σ windows)` instead of the
/// `O(len·depths)`-with-allocations of the windowed reference implementation
/// ([`sigma2_n_sweep_windowed`]).
///
/// # Errors
///
/// Returns an error when the series contains non-finite samples, when `ns` is empty, or
/// when *no* requested depth could be evaluated.
pub fn sigma2_n_sweep(
    jitter: &[f64],
    ns: &[usize],
    sampling: SnSampling,
) -> Result<Vec<Sigma2NPoint>> {
    if ns.is_empty() {
        return Err(StatsError::InvalidParameter {
            name: "ns",
            reason: "at least one accumulation depth is required".to_string(),
        });
    }
    for &n in ns {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "ns",
                reason: "accumulation depths must be at least 1".to_string(),
            });
        }
    }
    // Fuse the first fitting overlapping depth into the prefix-sum construction pass:
    // the lagged reads hit cache lines written moments earlier, so the most expensive
    // (cold) sweep pass comes for free with the build.
    let fused_first = match sampling {
        SnSampling::Overlapping => ns.iter().position(|&n| jitter.len() > 2 * n),
        _ => None,
    };
    let (prefix, first_point) = match fused_first {
        Some(pos) => {
            let (prefix, var, samples) = prefix_sums_with_depth(jitter, ns[pos]);
            (prefix, Some((pos, var, samples)))
        }
        None => (prefix_sums(jitter), None),
    };
    ensure_prefix_finite(jitter, &prefix)?;
    let mut out = Vec::with_capacity(ns.len());
    for (idx, &n) in ns.iter().enumerate() {
        if let Some((pos, var, samples)) = first_point {
            if idx == pos {
                out.push(Sigma2NPoint {
                    n,
                    sigma2_n: var,
                    samples,
                });
                continue;
            }
        }
        if jitter.len() < 2 * n {
            continue;
        }
        if let Some((var, samples)) = sigma2_n_over_prefix(&prefix, n, sampling.stride(n)) {
            out.push(Sigma2NPoint {
                n,
                sigma2_n: var,
                samples,
            });
        }
    }
    if out.is_empty() {
        return Err(StatsError::SeriesTooShort {
            len: jitter.len(),
            needed: 2 * ns.iter().copied().min().unwrap_or(1) + 1,
        });
    }
    Ok(out)
}

/// Reference implementation of [`sigma2_n_sweep`]: materializes the `s_N` window series
/// for every depth and takes its two-pass sample variance.
///
/// Kept for equivalence testing and benchmarking of the fused prefix-sum sweep; prefer
/// [`sigma2_n_sweep`] everywhere else.
///
/// # Errors
///
/// Same conditions as [`sigma2_n_sweep`].
pub fn sigma2_n_sweep_windowed(
    jitter: &[f64],
    ns: &[usize],
    sampling: SnSampling,
) -> Result<Vec<Sigma2NPoint>> {
    if ns.is_empty() {
        return Err(StatsError::InvalidParameter {
            name: "ns",
            reason: "at least one accumulation depth is required".to_string(),
        });
    }
    ensure_finite(jitter)?;
    let mut out = Vec::with_capacity(ns.len());
    for &n in ns {
        if n == 0 {
            return Err(StatsError::InvalidParameter {
                name: "ns",
                reason: "accumulation depths must be at least 1".to_string(),
            });
        }
        match sn_series(jitter, n, sampling) {
            Ok(s) if s.len() >= 2 => {
                let var = sample_variance(&s)?;
                out.push(Sigma2NPoint {
                    n,
                    sigma2_n: var,
                    samples: s.len(),
                });
            }
            _ => continue,
        }
    }
    if out.is_empty() {
        return Err(StatsError::SeriesTooShort {
            len: jitter.len(),
            needed: 2 * ns.iter().copied().min().unwrap_or(1) + 1,
        });
    }
    Ok(out)
}

/// Variance predicted by Bienaymé's identity for mutually independent realizations with
/// per-period variance `sigma2` (Eq. 6 of the paper): `σ²_N = 2·N·σ²`.
pub fn sigma2_n_independent(n: usize, sigma2: f64) -> f64 {
    2.0 * n as f64 * sigma2
}

/// Builds a deduplicated, sorted, approximately log-spaced list of accumulation depths in
/// `[min_n, max_n]` with at most `count` entries.
///
/// # Errors
///
/// Returns an error when `min_n == 0`, `max_n < min_n` or `count == 0`.
pub fn log_spaced_depths(min_n: usize, max_n: usize, count: usize) -> Result<Vec<usize>> {
    if min_n == 0 {
        return Err(StatsError::InvalidParameter {
            name: "min_n",
            reason: "must be at least 1".to_string(),
        });
    }
    if max_n < min_n {
        return Err(StatsError::InvalidParameter {
            name: "max_n",
            reason: format!("must be >= min_n ({min_n}), got {max_n}"),
        });
    }
    if count == 0 {
        return Err(StatsError::InvalidParameter {
            name: "count",
            reason: "must be at least 1".to_string(),
        });
    }
    if count == 1 || min_n == max_n {
        return Ok(vec![min_n]);
    }
    let lo = (min_n as f64).ln();
    let hi = (max_n as f64).ln();
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let t = k as f64 / (count - 1) as f64;
        let v = (lo + t * (hi - lo)).exp().round() as usize;
        let v = v.clamp(min_n, max_n);
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    Ok(out)
}

/// Adjacent differences of a series: `x[i+1] - x[i]`.
///
/// This is the operation the paper's measurement circuit applies to successive counter
/// values `Q_i^N` (Eq. 12) to obtain `s_N` up to a `1/f0` scale.
///
/// # Errors
///
/// Returns an error when the series has fewer than two samples or non-finite values.
pub fn adjacent_differences(series: &[f64]) -> Result<Vec<f64>> {
    ensure_finite(series)?;
    ensure_len(series, 2)?;
    Ok(series.windows(2).map(|w| w[1] - w[0]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(len · N) reference implementation of Eq. 4.
    fn sn_naive(jitter: &[f64], n: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0..=(jitter.len() - 2 * n) {
            let mut s = 0.0;
            for j in 0..2 * n {
                let a = if j < n { -1.0 } else { 1.0 };
                s += a * jitter[i + j];
            }
            out.push(s);
        }
        out
    }

    fn pseudo_random(len: usize) -> Vec<f64> {
        // xorshift-style deterministic noise in [-0.5, 0.5)
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000_003) as f64 / 1_000_003.0 - 0.5
            })
            .collect()
    }

    #[test]
    fn sn_matches_naive_for_various_n() {
        let jitter = pseudo_random(257);
        for n in [1usize, 2, 3, 7, 16, 50] {
            let fast = sn_series(&jitter, n, SnSampling::Overlapping).unwrap();
            let naive = sn_naive(&jitter, n);
            assert_eq!(fast.len(), naive.len());
            for (a, b) in fast.iter().zip(naive.iter()) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn constant_offset_cancels() {
        let jitter = pseudo_random(128);
        let shifted: Vec<f64> = jitter.iter().map(|x| x + 42.0).collect();
        let a = sn_series(&jitter, 5, SnSampling::Overlapping).unwrap();
        let b = sn_series(&shifted, 5, SnSampling::Overlapping).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn disjoint_sampling_strides_correctly() {
        let jitter = pseudo_random(64);
        let overl = sn_series(&jitter, 4, SnSampling::Overlapping).unwrap();
        let disj = sn_series(&jitter, 4, SnSampling::Disjoint).unwrap();
        let half = sn_series(&jitter, 4, SnSampling::HalfOverlapping).unwrap();
        assert_eq!(overl.len(), 64 - 8 + 1);
        assert_eq!(disj.len(), 8); // floor((57 - 1)/8) + 1
        assert_eq!(half.len(), 15);
        assert_eq!(disj[0], overl[0]);
        assert_eq!(disj[1], overl[8]);
        assert_eq!(half[1], overl[4]);
    }

    #[test]
    fn sigma2_n_linear_for_iid_series() {
        let jitter = pseudo_random(200_000);
        let sigma2 = crate::descriptive::sample_variance(&jitter).unwrap();
        for n in [1usize, 4, 16, 64] {
            let measured = sigma2_n(&jitter, n).unwrap();
            let predicted = sigma2_n_independent(n, sigma2);
            let rel = (measured - predicted).abs() / predicted;
            assert!(
                rel < 0.1,
                "n={n}: measured {measured}, predicted {predicted}"
            );
        }
    }

    #[test]
    fn sigma2_n_detects_random_walk_excess() {
        // A random walk has strongly dependent increments once re-expressed as levels;
        // feeding the *levels* as if they were jitter must blow up σ²_N superlinearly.
        let steps = pseudo_random(50_000);
        let mut walk = Vec::with_capacity(steps.len());
        let mut acc = 0.0;
        for s in &steps {
            acc += s;
            walk.push(acc);
        }
        let sigma2 = crate::descriptive::sample_variance(&walk).unwrap();
        let n = 256;
        let measured = sigma2_n(&walk, n).unwrap();
        let predicted = sigma2_n_independent(n, sigma2);
        // The walk's σ²_N is far below 2Nσ² (σ² itself diverges with the record length)
        // but very far from linear in N: check the ratio at two depths instead.
        let m2 = sigma2_n(&walk, 2 * n).unwrap();
        assert!(
            m2 / measured > 3.0,
            "expected superlinear growth, got ratio {}",
            m2 / measured
        );
        assert!(predicted.is_finite());
    }

    #[test]
    fn sweep_skips_depths_that_do_not_fit() {
        let jitter = pseudo_random(100);
        let points = sigma2_n_sweep(&jitter, &[1, 10, 49, 60], SnSampling::Overlapping).unwrap();
        let depths: Vec<usize> = points.iter().map(|p| p.n).collect();
        assert_eq!(depths, vec![1, 10, 49]);
        for p in &points {
            assert!(p.samples >= 2);
            assert!(p.sigma2_n >= 0.0);
        }
    }

    #[test]
    fn fused_sweep_matches_windowed_reference() {
        let jitter = pseudo_random(4096);
        let depths = [1usize, 2, 5, 16, 100, 640, 2000];
        for sampling in [
            SnSampling::Overlapping,
            SnSampling::Disjoint,
            SnSampling::HalfOverlapping,
        ] {
            let fused = sigma2_n_sweep(&jitter, &depths, sampling).unwrap();
            let windowed = sigma2_n_sweep_windowed(&jitter, &depths, sampling).unwrap();
            assert_eq!(fused.len(), windowed.len());
            for (a, b) in fused.iter().zip(windowed.iter()) {
                assert_eq!(a.n, b.n);
                assert_eq!(a.samples, b.samples);
                let scale = a.sigma2_n.abs().max(b.sigma2_n.abs()).max(1e-300);
                assert!(
                    (a.sigma2_n - b.sigma2_n).abs() / scale < 1e-9,
                    "n={}: fused {} vs windowed {}",
                    a.n,
                    a.sigma2_n,
                    b.sigma2_n
                );
            }
        }
    }

    #[test]
    fn fused_sweep_is_stable_on_smooth_series() {
        // A linear series has a constant s_N (zero variance); the shifted one-pass
        // accumulation must not blow up through cancellation.
        let jitter: Vec<f64> = (0..2048).map(|i| 1e6 + 3.0 * i as f64).collect();
        let points = sigma2_n_sweep(&jitter, &[4, 32, 256], SnSampling::Overlapping).unwrap();
        for p in &points {
            let typical = (3.0 * (p.n * p.n) as f64).powi(2);
            assert!(
                p.sigma2_n.abs() / typical < 1e-12,
                "n={}: variance {} should vanish",
                p.n,
                p.sigma2_n
            );
        }
    }

    #[test]
    fn sweep_errors_when_nothing_fits() {
        let jitter = pseudo_random(10);
        assert!(sigma2_n_sweep(&jitter, &[100], SnSampling::Overlapping).is_err());
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(sn_series(&[1.0, 2.0], 0, SnSampling::Overlapping).is_err());
        assert!(sn_series(&[1.0], 1, SnSampling::Overlapping).is_err());
        assert!(sn_series(&[1.0, f64::NAN], 1, SnSampling::Overlapping).is_err());
        assert!(sigma2_n_sweep(&[1.0, 2.0, 3.0], &[], SnSampling::Overlapping).is_err());
        assert!(sigma2_n_sweep(&[1.0, 2.0, 3.0], &[0], SnSampling::Overlapping).is_err());
    }

    #[test]
    fn log_spaced_depths_are_sorted_unique_and_bounded() {
        let depths = log_spaced_depths(1, 30_000, 40).unwrap();
        assert!(depths.len() <= 40);
        assert_eq!(*depths.first().unwrap(), 1);
        assert_eq!(*depths.last().unwrap(), 30_000);
        for w in depths.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn log_spaced_depths_edge_cases() {
        assert_eq!(log_spaced_depths(5, 5, 10).unwrap(), vec![5]);
        assert_eq!(log_spaced_depths(3, 100, 1).unwrap(), vec![3]);
        assert!(log_spaced_depths(0, 10, 5).is_err());
        assert!(log_spaced_depths(10, 5, 5).is_err());
        assert!(log_spaced_depths(1, 10, 0).is_err());
    }

    #[test]
    fn adjacent_differences_basic() {
        let d = adjacent_differences(&[1.0, 4.0, 9.0]).unwrap();
        assert_eq!(d, vec![3.0, 5.0]);
        assert!(adjacent_differences(&[1.0]).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prefix_sum_matches_naive(
                data in proptest::collection::vec(-1e3f64..1e3, 8..200),
                n in 1usize..8,
            ) {
                prop_assume!(data.len() >= 2 * n);
                let fast = sn_series(&data, n, SnSampling::Overlapping).unwrap();
                let naive = sn_naive(&data, n);
                prop_assert_eq!(fast.len(), naive.len());
                for (a, b) in fast.iter().zip(naive.iter()) {
                    prop_assert!((a - b).abs() < 1e-6);
                }
            }

            #[test]
            fn sn_is_shift_invariant(
                data in proptest::collection::vec(-10.0f64..10.0, 16..128),
                shift in -1e3f64..1e3,
                n in 1usize..6,
            ) {
                prop_assume!(data.len() >= 2 * n);
                let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
                let a = sn_series(&data, n, SnSampling::Overlapping).unwrap();
                let b = sn_series(&shifted, n, SnSampling::Overlapping).unwrap();
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert!((x - y).abs() < 1e-6);
                }
            }

            #[test]
            fn fused_sweep_matches_windowed(
                data in proptest::collection::vec(-1e3f64..1e3, 16..300),
                depths in proptest::collection::vec(1usize..12, 1..6),
            ) {
                prop_assume!(data.len() > 2 * depths.iter().copied().max().unwrap_or(1));
                for sampling in [
                    SnSampling::Overlapping,
                    SnSampling::Disjoint,
                    SnSampling::HalfOverlapping,
                ] {
                    let fused = sigma2_n_sweep(&data, &depths, sampling).unwrap();
                    let windowed = sigma2_n_sweep_windowed(&data, &depths, sampling).unwrap();
                    prop_assert_eq!(fused.len(), windowed.len());
                    for (a, b) in fused.iter().zip(windowed.iter()) {
                        prop_assert_eq!(a.n, b.n);
                        prop_assert_eq!(a.samples, b.samples);
                        let scale = a.sigma2_n.abs().max(b.sigma2_n.abs()).max(1.0);
                        prop_assert!((a.sigma2_n - b.sigma2_n).abs() / scale < 1e-9);
                    }
                }
            }

            #[test]
            fn sigma2_n_is_nonnegative(
                data in proptest::collection::vec(-1.0f64..1.0, 32..256),
                n in 1usize..8,
            ) {
                prop_assume!(data.len() > 2 * n);
                let v = sigma2_n(&data, n).unwrap();
                prop_assert!(v >= 0.0);
            }
        }
    }
}
