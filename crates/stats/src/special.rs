//! Special functions needed by the hypothesis tests: error function, log-gamma,
//! regularized incomplete gamma, normal and chi-squared distribution functions.
//!
//! Implementations follow the classical Numerical-Recipes-style series/continued-fraction
//! expansions; accuracy (≈1e-10 relative) is far beyond what the statistical tests need.

use crate::{Result, StatsError};

/// Error function `erf(x)`, accurate to about 1.2e-7 (Abramowitz & Stegun 7.1.26 with the
/// higher-accuracy rational refinement used by Numerical Recipes `erfc`).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 - Φ(x)`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Natural logarithm of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// # Errors
///
/// Returns an error for `a <= 0` or `x < 0`, or when the expansion fails to converge.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "gamma_p",
            reason: format!("requires a > 0 and x >= 0, got a = {a}, x = {x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_continued_fraction(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Errors
///
/// Same domain requirements as [`gamma_p`].
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    Ok(1.0 - gamma_p(a, x)?)
}

fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return Ok(sum * (-x + a * x.ln() - ln_gamma(a)).exp());
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_p_series",
    })
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> Result<f64> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok((-x + a * x.ln() - ln_gamma(a)).exp() * h);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_q_continued_fraction",
    })
}

/// Cumulative distribution function of the χ² distribution with `k` degrees of freedom.
///
/// # Errors
///
/// Returns an error for `k == 0` or `x < 0`.
pub fn chi_squared_cdf(x: f64, k: usize) -> Result<f64> {
    if k == 0 {
        return Err(StatsError::InvalidParameter {
            name: "k",
            reason: "degrees of freedom must be at least 1".to_string(),
        });
    }
    gamma_p(k as f64 / 2.0, x / 2.0)
}

/// Survival function (upper tail probability) of the χ² distribution.
///
/// # Errors
///
/// Returns an error for `k == 0` or `x < 0`.
pub fn chi_squared_sf(x: f64, k: usize) -> Result<f64> {
    if k == 0 {
        return Err(StatsError::InvalidParameter {
            name: "k",
            reason: "degrees of freedom must be at least 1".to_string(),
        });
    }
    gamma_q(k as f64 / 2.0, x / 2.0)
}

/// Asymptotic Kolmogorov–Smirnov survival function
/// `Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} e^{-2 j² λ²}`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.0), 0.0, 2e-7);
        assert_close(erf(1.0), 0.842_700_792_949_715, 2e-7);
        assert_close(erf(-1.0), -0.842_700_792_949_715, 2e-7);
        assert_close(erf(2.0), 0.995_322_265_018_953, 2e-7);
        assert_close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-9);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert_close(normal_cdf(0.0), 0.5, 2e-7);
        assert_close(normal_cdf(1.96), 0.975_002_104_851_78, 1e-6);
        assert_close(normal_cdf(-1.96), 0.024_997_895_148_22, 1e-6);
        assert_close(normal_sf(1.6448536269514722), 0.05, 1e-6);
        assert_close(normal_pdf(0.0), 0.398_942_280_401_432_7, 1e-12);
    }

    #[test]
    fn ln_gamma_reference_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-10);
        assert_close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-10);
        // ln Γ(10.3) ≈ 13.482 036 79 (Stirling series cross-check).
        assert_close(ln_gamma(10.3), 13.482_036_79, 1e-6);
    }

    #[test]
    fn gamma_p_matches_chi_squared_tables() {
        // χ² with 2 dof: CDF(x) = 1 - e^{-x/2}.
        for x in [0.1, 1.0, 3.0, 10.0] {
            let expected = 1.0 - (-x / 2.0f64).exp();
            assert_close(chi_squared_cdf(x, 2).unwrap(), expected, 1e-10);
        }
        // Standard critical values: P(χ²_1 <= 3.841) ≈ 0.95, P(χ²_5 <= 11.070) ≈ 0.95.
        assert_close(chi_squared_cdf(3.841, 1).unwrap(), 0.95, 1e-3);
        assert_close(chi_squared_cdf(11.070, 5).unwrap(), 0.95, 1e-3);
        assert_close(chi_squared_sf(11.070, 5).unwrap(), 0.05, 1e-3);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for a in [0.5, 1.0, 3.7, 25.0] {
            for x in [0.01, 0.5, 2.0, 40.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert_close(p + q, 1.0, 1e-10);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn gamma_p_rejects_bad_domain() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
        assert!(chi_squared_cdf(1.0, 0).is_err());
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        assert_close(kolmogorov_sf(0.0), 1.0, 1e-12);
        // Q_KS(1.3581) ≈ 0.05 and Q_KS(1.2238) ≈ 0.10 (classical critical values).
        assert_close(kolmogorov_sf(1.3581), 0.05, 2e-3);
        assert_close(kolmogorov_sf(1.2238), 0.10, 3e-3);
        assert!(kolmogorov_sf(5.0) < 1e-10);
    }

    #[test]
    fn ln_binomial_reference_values() {
        assert_close(ln_binomial(5, 2), (10.0f64).ln(), 1e-10);
        assert_close(ln_binomial(10, 0), 0.0, 1e-10);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
        // C(50, 25) = 126410606437752
        assert_close(ln_binomial(50, 25), (1.264_106_064_377_52e14f64).ln(), 1e-8);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn normal_cdf_is_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
            }

            #[test]
            fn gamma_p_is_monotone_in_x(a in 0.1f64..20.0, x in 0.0f64..40.0, dx in 0.0f64..5.0) {
                let p1 = gamma_p(a, x).unwrap();
                let p2 = gamma_p(a, x + dx).unwrap();
                prop_assert!(p2 + 1e-12 >= p1);
            }

            #[test]
            fn erf_is_odd(x in -5.0f64..5.0) {
                prop_assert!((erf(x) + erf(-x)).abs() < 1e-7);
            }
        }
    }
}
