//! Least-squares fitting.
//!
//! Besides generic linear/polynomial fits, this module provides the fit at the heart of
//! the paper's Section IV: `σ²_N = a·N + b·N²` (no intercept), from which the thermal and
//! flicker phase-noise coefficients are recovered as `a = 2·b_th/f0³` and
//! `b = 8·ln2·b_fl/f0⁴`.

use serde::{Deserialize, Serialize};

use crate::{ensure_finite, Result, StatsError};

/// Result of a simple linear regression `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Residual variance (sum of squared residuals divided by `n - 2`, or 0 if `n <= 2`).
    pub residual_variance: f64,
}

/// Result of a polynomial fit `y = Σ_k c_k·x^k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolynomialFit {
    /// Coefficients ordered by increasing power (`c_0` first).
    pub coefficients: Vec<f64>,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl PolynomialFit {
    /// Evaluates the fitted polynomial at `x`.
    pub fn evaluate(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coefficients.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }
}

/// Result of the paper's two-parameter fit `σ²_N = a·N + b·N²`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmaNFit {
    /// Linear coefficient `a = 2·b_th/f0³` (thermal contribution).
    pub linear: f64,
    /// Quadratic coefficient `b = 8·ln2·b_fl/f0⁴` (flicker contribution).
    pub quadratic: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl SigmaNFit {
    /// Evaluates the fitted model at accumulation depth `n`.
    pub fn evaluate(&self, n: f64) -> f64 {
        self.linear * n + self.quadratic * n * n
    }

    /// Depth at which the quadratic (flicker) term equals the linear (thermal) term.
    ///
    /// Returns `None` when the quadratic coefficient is not positive (pure thermal fit).
    pub fn crossover_depth(&self) -> Option<f64> {
        if self.quadratic > 0.0 && self.linear > 0.0 {
            Some(self.linear / self.quadratic)
        } else {
            None
        }
    }
}

fn validate_xy(x: &[f64], y: &[f64], min_len: usize) -> Result<()> {
    ensure_finite(x)?;
    ensure_finite(y)?;
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter {
            name: "x/y",
            reason: format!("length mismatch: {} vs {}", x.len(), y.len()),
        });
    }
    if x.len() < min_len {
        return Err(StatsError::SeriesTooShort {
            len: x.len(),
            needed: min_len,
        });
    }
    Ok(())
}

fn r_squared(y: &[f64], predicted: impl Fn(usize) -> f64) -> f64 {
    let n = y.len() as f64;
    let mean = y.iter().sum::<f64>() / n;
    let ss_tot: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    let ss_res: f64 = y
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let r = v - predicted(i);
            r * r
        })
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Ordinary least-squares fit of `y = slope·x + intercept`.
///
/// # Errors
///
/// Returns an error for mismatched lengths, fewer than two points, non-finite values, or
/// degenerate `x` (all identical).
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit> {
    validate_xy(x, y, 2)?;
    let n = x.len() as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return Err(StatsError::SingularSystem {
            context: "linear_fit",
        });
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let r2 = r_squared(y, |i| slope * x[i] + intercept);
    let ss_res: f64 = x
        .iter()
        .zip(y.iter())
        .map(|(a, b)| {
            let r = b - (slope * a + intercept);
            r * r
        })
        .sum();
    let residual_variance = if x.len() > 2 {
        ss_res / (x.len() as f64 - 2.0)
    } else {
        0.0
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared: r2,
        residual_variance,
    })
}

/// Solves the square linear system `A·x = b` by Gaussian elimination with partial
/// pivoting.  `a` is given row-major and is consumed as scratch space.
///
/// # Errors
///
/// Returns an error when the matrix is singular (pivot below `1e-300`).
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    if a.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(StatsError::InvalidParameter {
            name: "a",
            reason: "matrix must be square and match the right-hand side".to_string(),
        });
    }
    for col in 0..n {
        // Partial pivoting.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-300 {
            return Err(StatsError::SingularSystem {
                context: "solve_linear_system",
            });
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (entry, pivot_entry) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *entry -= factor * pivot_entry;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

/// Weighted least-squares fit against arbitrary basis functions.
///
/// `basis(i, x)` returns the value of the `i`-th basis function at `x`; `weights` may be
/// `None` for an unweighted fit.  Returns the coefficient vector.
///
/// # Errors
///
/// Returns an error for degenerate inputs or a singular normal system.
pub fn basis_fit(
    x: &[f64],
    y: &[f64],
    weights: Option<&[f64]>,
    n_basis: usize,
    basis: impl Fn(usize, f64) -> f64,
) -> Result<Vec<f64>> {
    validate_xy(x, y, n_basis.max(1))?;
    if n_basis == 0 {
        return Err(StatsError::InvalidParameter {
            name: "n_basis",
            reason: "at least one basis function is required".to_string(),
        });
    }
    if let Some(w) = weights {
        if w.len() != x.len() {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                reason: "length must match x".to_string(),
            });
        }
        ensure_finite(w)?;
        if w.iter().any(|&v| v < 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                reason: "weights must be non-negative".to_string(),
            });
        }
    }
    let mut ata = vec![vec![0.0; n_basis]; n_basis];
    let mut atb = vec![0.0; n_basis];
    for (k, (&xk, &yk)) in x.iter().zip(y.iter()).enumerate() {
        let w = weights.map_or(1.0, |w| w[k]);
        let phi: Vec<f64> = (0..n_basis).map(|i| basis(i, xk)).collect();
        for i in 0..n_basis {
            atb[i] += w * phi[i] * yk;
            for j in 0..n_basis {
                ata[i][j] += w * phi[i] * phi[j];
            }
        }
    }
    solve_linear_system(ata, atb)
}

/// Polynomial least-squares fit of the given `degree` (number of coefficients is
/// `degree + 1`).
///
/// # Errors
///
/// Returns an error for fewer than `degree + 1` points or a singular system.
pub fn polynomial_fit(x: &[f64], y: &[f64], degree: usize) -> Result<PolynomialFit> {
    let coefficients = basis_fit(x, y, None, degree + 1, |i, v| v.powi(i as i32))?;
    let coeffs = coefficients.clone();
    let r2 = r_squared(y, |i| {
        let mut acc = 0.0;
        for &c in coeffs.iter().rev() {
            acc = acc * x[i] + c;
        }
        acc
    });
    Ok(PolynomialFit {
        coefficients,
        r_squared: r2,
    })
}

/// The paper's fit `σ²_N = a·N + b·N²` (no intercept term).
///
/// `ns` are the accumulation depths and `sigma2` the measured variances.  An optional
/// weight per point can be supplied (e.g. the number of `s_N` realizations behind each
/// estimate).
///
/// # Errors
///
/// Returns an error for fewer than two points, mismatched lengths, non-finite values or
/// a singular normal system.
pub fn sigma_n_fit(ns: &[f64], sigma2: &[f64], weights: Option<&[f64]>) -> Result<SigmaNFit> {
    let coeffs = basis_fit(ns, sigma2, weights, 2, |i, n| match i {
        0 => n,
        _ => n * n,
    })?;
    let (a, b) = (coeffs[0], coeffs[1]);
    let r2 = r_squared(sigma2, |i| a * ns[i] + b * ns[i] * ns[i]);
    Ok(SigmaNFit {
        linear: a,
        quadratic: b,
        r_squared: r2,
    })
}

/// Fit of `σ²_N = a·N` alone (the model valid under mutual independence).
///
/// # Errors
///
/// Returns an error for empty inputs, mismatched lengths or non-finite values.
pub fn linear_through_origin_fit(ns: &[f64], sigma2: &[f64]) -> Result<LinearFit> {
    validate_xy(ns, sigma2, 1)?;
    let sxx: f64 = ns.iter().map(|v| v * v).sum();
    if sxx == 0.0 {
        return Err(StatsError::SingularSystem {
            context: "linear_through_origin_fit",
        });
    }
    let sxy: f64 = ns.iter().zip(sigma2.iter()).map(|(a, b)| a * b).sum();
    let slope = sxy / sxx;
    let r2 = r_squared(sigma2, |i| slope * ns[i]);
    let ss_res: f64 = ns
        .iter()
        .zip(sigma2.iter())
        .map(|(a, b)| {
            let r = b - slope * a;
            r * r
        })
        .sum();
    let residual_variance = if ns.len() > 1 {
        ss_res / (ns.len() as f64 - 1.0)
    } else {
        0.0
    };
    Ok(LinearFit {
        slope,
        intercept: 0.0,
        r_squared: r2,
        residual_variance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert_close(fit.slope, 3.0, 1e-10);
        assert_close(fit.intercept, -7.0, 1e-9);
        assert_close(fit.r_squared, 1.0, 1e-12);
        assert_close(fit.residual_variance, 0.0, 1e-12);
    }

    #[test]
    fn linear_fit_rejects_degenerate_x() {
        let x = vec![2.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(linear_fit(&x, &y).is_err());
    }

    #[test]
    fn solve_linear_system_known_solution() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear_system(a, b).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn solve_linear_system_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let b = vec![2.0, 3.0];
        let x = solve_linear_system(a, b).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_linear_system_detects_singularity() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert!(solve_linear_system(a, b).is_err());
    }

    #[test]
    fn polynomial_fit_recovers_quadratic() {
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = x.iter().map(|v| 1.0 - 2.0 * v + 0.5 * v * v).collect();
        let fit = polynomial_fit(&x, &y, 2).unwrap();
        assert_close(fit.coefficients[0], 1.0, 1e-8);
        assert_close(fit.coefficients[1], -2.0, 1e-8);
        assert_close(fit.coefficients[2], 0.5, 1e-9);
        assert_close(fit.evaluate(4.0), 1.0 - 8.0 + 8.0, 1e-7);
        assert_close(fit.r_squared, 1.0, 1e-12);
    }

    #[test]
    fn sigma_n_fit_recovers_paper_shape() {
        // Use the paper's fitted values: σ²_N·f0² = 5.36e-6·N + quadratic term with
        // crossover at N = 5354.
        let a = 5.36e-6;
        let b = a / 5354.0;
        let ns: Vec<f64> = (1..=200).map(|i| (i * 50) as f64).collect();
        let sigma2: Vec<f64> = ns.iter().map(|n| a * n + b * n * n).collect();
        let fit = sigma_n_fit(&ns, &sigma2, None).unwrap();
        assert_close(fit.linear, a, a * 1e-6);
        assert_close(fit.quadratic, b, b * 1e-6);
        assert_close(fit.crossover_depth().unwrap(), 5354.0, 0.5);
        assert_close(fit.evaluate(100.0), a * 100.0 + b * 1e4, 1e-12);
    }

    #[test]
    fn sigma_n_fit_pure_thermal_has_no_crossover() {
        let ns: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let sigma2: Vec<f64> = ns.iter().map(|n| 2.0 * n).collect();
        let fit = sigma_n_fit(&ns, &sigma2, None).unwrap();
        assert_close(fit.linear, 2.0, 1e-9);
        assert!(fit.quadratic.abs() < 1e-9);
        assert!(fit.crossover_depth().is_none());
    }

    #[test]
    fn weighted_fit_prefers_heavily_weighted_points() {
        // Two inconsistent groups of points; weights select the first group.
        let ns = vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0];
        let sigma2 = vec![2.0, 4.0, 6.0, 20.0, 40.0, 60.0];
        let w_first = vec![1e6, 1e6, 1e6, 1e-6, 1e-6, 1e-6];
        let fit = sigma_n_fit(&ns, &sigma2, Some(&w_first)).unwrap();
        assert_close(fit.evaluate(1.0), 2.0, 1e-3);
    }

    #[test]
    fn linear_through_origin_fit_behaviour() {
        let ns: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let y: Vec<f64> = ns.iter().map(|n| 4.0 * n).collect();
        let fit = linear_through_origin_fit(&ns, &y).unwrap();
        assert_close(fit.slope, 4.0, 1e-12);
        assert_eq!(fit.intercept, 0.0);
        assert_close(fit.r_squared, 1.0, 1e-12);
    }

    #[test]
    fn basis_fit_validates_weights() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![1.0, 2.0, 3.0];
        assert!(basis_fit(&x, &y, Some(&[1.0, 1.0]), 1, |_, v| v).is_err());
        assert!(basis_fit(&x, &y, Some(&[1.0, -1.0, 1.0]), 1, |_, v| v).is_err());
        assert!(basis_fit(&x, &y, None, 0, |_, v| v).is_err());
    }

    #[test]
    fn fit_rejects_mismatched_and_non_finite() {
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_err());
        assert!(linear_fit(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
        assert!(sigma_n_fit(&[1.0], &[1.0], None).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn linear_fit_exact_on_noiseless_lines(
                slope in -100.0f64..100.0,
                intercept in -100.0f64..100.0,
            ) {
                let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
                let y: Vec<f64> = x.iter().map(|v| slope * v + intercept).collect();
                let fit = linear_fit(&x, &y).unwrap();
                prop_assert!((fit.slope - slope).abs() < 1e-6);
                prop_assert!((fit.intercept - intercept).abs() < 1e-5);
            }

            #[test]
            fn sigma_n_fit_exact_on_noiseless_model(
                a in 1e-9f64..1e-3,
                b in 1e-12f64..1e-6,
            ) {
                let ns: Vec<f64> = (1..=50).map(|i| (i * 13) as f64).collect();
                let y: Vec<f64> = ns.iter().map(|n| a * n + b * n * n).collect();
                let fit = sigma_n_fit(&ns, &y, None).unwrap();
                prop_assert!((fit.linear - a).abs() / a < 1e-5);
                prop_assert!((fit.quadratic - b).abs() / b < 1e-5);
            }
        }
    }
}
