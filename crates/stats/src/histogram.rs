//! Histograms and empirical distribution functions.

use serde::{Deserialize, Serialize};

use crate::{ensure_finite, ensure_len, Result, StatsError};

/// A fixed-width histogram over a closed interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error when `bins == 0`, the bounds are not finite, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                reason: "at least one bin is required".to_string(),
            });
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "bounds",
                reason: format!("need finite lo < hi, got [{lo}, {hi}]"),
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
            total: 0,
        })
    }

    /// Creates a histogram whose bounds are taken from the minimum and maximum of `data`
    /// and fills it with the data.
    ///
    /// # Errors
    ///
    /// Returns an error for empty or non-finite data, zero bins, or constant data.
    pub fn from_data(data: &[f64], bins: usize) -> Result<Self> {
        ensure_len(data, 1)?;
        ensure_finite(data)?;
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo {
            return Err(StatsError::InvalidParameter {
                name: "data",
                reason: "all samples are identical".to_string(),
            });
        }
        let mut h = Self::new(lo, hi, bins)?;
        for &x in data {
            h.add(x);
        }
        Ok(h)
    }

    /// Adds one sample.  Samples outside the bounds are tallied in the under/overflow
    /// counters rather than dropped.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.below += 1;
            return;
        }
        if x > self.hi {
            self.above += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((x - self.lo) / width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // x == hi lands in the last bin
        }
        self.counts[idx] += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Samples above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Normalized densities (integrate to ≈1 over the covered range).
    pub fn densities(&self) -> Vec<f64> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / (in_range as f64 * width))
            .collect()
    }
}

/// Empirical cumulative distribution function of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the ECDF from a sample.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty or non-finite sample.
    pub fn new(data: &[f64]) -> Result<Self> {
        ensure_len(data, 1)?;
        ensure_finite(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples are comparable"));
        Ok(Self { sorted })
    }

    /// Evaluates the ECDF at `x` (fraction of samples `<= x`).
    pub fn evaluate(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of samples behind the ECDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the ECDF was built from zero samples (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample underlying the ECDF.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_uniform_data_evenly() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let h = Histogram::from_data(&data, 10).unwrap();
        assert_eq!(h.total(), 1000);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        for &c in h.counts() {
            assert!((c as i64 - 100).abs() <= 1, "count {c}");
        }
    }

    #[test]
    fn histogram_boundary_values() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.add(0.0);
        h.add(1.0);
        h.add(-0.1);
        h.add(1.1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_densities_integrate_to_one() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin()).collect();
        let h = Histogram::from_data(&data, 20).unwrap();
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = (hi - lo) / 20.0;
        let integral: f64 = h.densities().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bin_centers_are_monotone() {
        let h = Histogram::new(-2.0, 2.0, 8).unwrap();
        for i in 1..8 {
            assert!(h.bin_center(i) > h.bin_center(i - 1));
        }
        assert!((h.bin_center(0) - (-1.75)).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::from_data(&[], 4).is_err());
        assert!(Histogram::from_data(&[3.0, 3.0], 4).is_err());
    }

    #[test]
    fn ecdf_basic_properties() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.evaluate(0.0), 0.0);
        assert_eq!(cdf.evaluate(1.0), 0.25);
        assert_eq!(cdf.evaluate(2.5), 0.5);
        assert_eq!(cdf.evaluate(10.0), 1.0);
        assert_eq!(cdf.sorted_samples(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn ecdf_rejects_bad_input() {
        assert!(EmpiricalCdf::new(&[]).is_err());
        assert!(EmpiricalCdf::new(&[f64::NAN]).is_err());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn ecdf_is_monotone(data in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
                let cdf = EmpiricalCdf::new(&data).unwrap();
                let mut prev = 0.0;
                for x in (-1000..1000).step_by(100) {
                    let v = cdf.evaluate(x as f64);
                    prop_assert!(v >= prev);
                    prop_assert!((0.0..=1.0).contains(&v));
                    prev = v;
                }
            }

            #[test]
            fn histogram_conserves_samples(
                data in proptest::collection::vec(-10.0f64..10.0, 2..200),
                bins in 1usize..32,
            ) {
                prop_assume!(data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    > data.iter().cloned().fold(f64::INFINITY, f64::min));
                let h = Histogram::from_data(&data, bins).unwrap();
                let in_bins: u64 = h.counts().iter().sum();
                prop_assert_eq!(in_bins + h.underflow() + h.overflow(), data.len() as u64);
            }
        }
    }
}
