//! Readiness notification for the nonblocking serving plane: `poll(2)` declared
//! through the same minimal-unsafe discipline as the `signal(2)` hookup in
//! [`crate::server`] — one tiny SAFETY-commented `sys` module, everything above it
//! safe code.
//!
//! [`Poller`] is a per-iteration pollfd set: the event loop [`Poller::clear`]s it,
//! [`Poller::push`]es the listener, the worker wake pipe and every connection with
//! the interests that match its state, calls [`Poller::poll`], and reads each
//! slot's [`Readiness`] back.  Rebuilding the set every iteration keeps the
//! interface trivially safe (no registration lifecycle to desynchronise) and costs
//! one `memcpy`-sized pass over the connections — poll(2) re-reads the whole array
//! anyway, which is exactly the complexity class this server needs: thousands of
//! connections, one syscall.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

mod sys {
    //! The one unsafe corner: the `poll(2)` FFI declaration.  The container has no
    //! `libc` crate, so the prototype and the `pollfd` ABI are declared by hand,
    //! exactly like the `signal(2)` hookup in `server.rs`.
    #![allow(unsafe_code)]

    use std::os::raw::{c_int, c_short, c_ulong};

    pub(super) const POLLIN: c_short = 0x001;
    pub(super) const POLLOUT: c_short = 0x004;
    pub(super) const POLLERR: c_short = 0x008;
    pub(super) const POLLHUP: c_short = 0x010;
    pub(super) const POLLNVAL: c_short = 0x020;

    /// Mirror of `struct pollfd` from `<poll.h>` (identical layout on every
    /// supported Unix: int fd, short events, short revents).
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub(super) struct PollFd {
        pub(super) fd: c_int,
        pub(super) events: c_short,
        pub(super) revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Safe wrapper: polls the slice, returns the number of ready entries.
    pub(super) fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> std::io::Result<usize> {
        if fds.is_empty() {
            // poll(2) with nfds=0 is a portable sleep, but an empty slice's
            // pointer is dangling; skip the syscall entirely.
            if timeout_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
            }
            return Ok(0);
        }
        // SAFETY: `fds` is a valid, exclusively borrowed slice of `#[repr(C)]`
        // structs matching the kernel's pollfd layout; `nfds` is its exact
        // length, so the kernel writes `revents` only inside the borrow.  poll(2)
        // has no other side effects on the process.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// What a polled descriptor reported back.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Readiness {
    /// `POLLIN`: a read will not block (data, EOF, or a pending accept).
    pub(crate) readable: bool,
    /// `POLLOUT`: a write will not block.  The event loop registers write
    /// interest so poll wakes when a stalled socket drains, but then flushes
    /// optimistically (a failed attempt is one cheap `EAGAIN`), so outside the
    /// tests nothing reads the flag back.
    #[allow(dead_code)]
    pub(crate) writable: bool,
    /// `POLLERR | POLLHUP | POLLNVAL`: the peer is gone or the fd is broken.
    pub(crate) hangup: bool,
}

/// A rebuild-per-iteration pollfd set (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct Poller {
    fds: Vec<sys::PollFd>,
}

impl Poller {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Empties the set, keeping its allocation for the next iteration.
    pub(crate) fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` with the given interests and returns its slot index.
    ///
    /// A descriptor registered with neither interest still reports errors and
    /// hangups — poll(2) always delivers `POLLERR`/`POLLHUP`/`POLLNVAL` — which is
    /// how busy connections (not currently reading or writing) learn their peer
    /// disappeared.
    pub(crate) fn push(&mut self, fd: RawFd, read: bool, write: bool) -> usize {
        let mut events = 0;
        if read {
            events |= sys::POLLIN;
        }
        if write {
            events |= sys::POLLOUT;
        }
        self.fds.push(sys::PollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Polls every registered descriptor, waiting at most `timeout`.
    ///
    /// A signal interruption (`EINTR`) is reported as zero ready descriptors: the
    /// caller's loop re-checks its shutdown flag and polls again.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` poll(2) failures.
    pub(crate) fn poll(&mut self, timeout: Duration) -> io::Result<usize> {
        for fd in &mut self.fds {
            fd.revents = 0;
        }
        // Round up so sub-millisecond deadlines do not spin at timeout 0.
        let ms = timeout.as_millis().min(i32::MAX as u128) as i64;
        let ms = if ms == 0 && !timeout.is_zero() { 1 } else { ms };
        match sys::poll_fds(&mut self.fds, ms as i32) {
            Ok(ready) => Ok(ready),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Readiness of the descriptor at `slot` (as returned by [`Poller::push`])
    /// after the last [`Poller::poll`].
    pub(crate) fn revents(&self, slot: usize) -> Readiness {
        let revents = self.fds[slot].revents;
        Readiness {
            readable: revents & sys::POLLIN != 0,
            writable: revents & sys::POLLOUT != 0,
            hangup: revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn empty_set_sleeps_out_the_timeout() {
        let mut poller = Poller::new();
        let start = Instant::now();
        let ready = poller.poll(Duration::from_millis(30)).unwrap();
        assert_eq!(ready, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pipe_read_readiness_is_reported() {
        let (mut rx, mut tx) = std::io::pipe().unwrap();
        let mut poller = Poller::new();
        let slot = poller.push(rx.as_raw_fd(), true, false);
        // Nothing written yet: the poll times out with the slot quiet.
        assert_eq!(poller.poll(Duration::from_millis(10)).unwrap(), 0);
        assert!(!poller.revents(slot).readable);

        tx.write_all(&[7]).unwrap();
        poller.clear();
        let slot = poller.push(rx.as_raw_fd(), true, false);
        assert_eq!(poller.poll(Duration::from_millis(1000)).unwrap(), 1);
        assert!(poller.revents(slot).readable);
        let mut byte = [0u8; 1];
        rx.read_exact(&mut byte).unwrap();
        assert_eq!(byte[0], 7);
    }

    #[test]
    fn writable_sockets_and_closed_peers_are_distinguished() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (served, _peer) = listener.accept().unwrap();

        let mut poller = Poller::new();
        let slot = poller.push(served.as_raw_fd(), false, true);
        assert!(poller.poll(Duration::from_millis(1000)).unwrap() >= 1);
        assert!(poller.revents(slot).writable, "fresh socket is writable");
        assert!(!poller.revents(slot).hangup);

        drop(client);
        // Give the loopback a beat to deliver the FIN, then the peer's absence
        // shows up as readable-EOF (and usually POLLHUP once both halves close).
        std::thread::sleep(Duration::from_millis(20));
        poller.clear();
        let slot = poller.push(served.as_raw_fd(), true, false);
        assert!(poller.poll(Duration::from_millis(1000)).unwrap() >= 1);
        assert!(poller.revents(slot).readable, "EOF reports as readable");
    }
}
