//! Per-connection state for the nonblocking event loop: one [`Connection`] per
//! accepted socket, holding its buffered input, pending output, lifecycle state
//! and deadline.  The struct is plain data plus nonblocking I/O helpers — all
//! protocol decisions (parsing, routing, pump scheduling, reaping) live in the
//! loop in [`crate::server`], so the state machine reads top-to-bottom there.

use std::io::{Read, Write};
use std::net::{IpAddr, TcpStream};
use std::time::Instant;

/// Where a connection is in its request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Waiting for (more of) a request head; the header deadline applies.
    ReadingHead,
    /// A request is being routed/streamed; reads are paused for backpressure.
    Busy,
    /// Between keep-alive requests; the idle deadline applies.
    Idle,
}

/// Which tier a streaming response body draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamTier {
    /// `/entropy` — blocking [`ptrng_engine::tap::EntropyTap`] draws.
    Entropy,
    /// `/random` — the DRBG expansion tier.
    Random,
}

/// An in-flight chunked response body: the remainder a worker still has to draw
/// and frame.  Travels loop → worker (as a pump job) and back (with the
/// not-yet-drawn remainder) so exactly one side owns it at any time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StreamBody {
    pub(crate) tier: StreamTier,
    /// Body bytes still to be drawn and framed (excludes the terminator).
    pub(crate) remaining: u64,
}

/// What one nonblocking read burst observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// New bytes were appended to `inbuf`.
    Data,
    /// Nothing to read right now.
    WouldBlock,
    /// The peer closed its write half (or reset): no more input will arrive.
    Eof,
}

/// Per-read burst cap: bounds the input buffered for one connection in one loop
/// iteration (poll(2) is level-triggered, so leftover bytes re-report readable).
/// It is also the hard bound on one request head: a head that does not fit is
/// rejected, since the parser could otherwise never see it complete.
pub(crate) const READ_BURST_BYTES: usize = 16 << 10;

/// One accepted connection owned by the event loop.
#[derive(Debug)]
pub(crate) struct Connection {
    pub(crate) stream: TcpStream,
    pub(crate) peer: IpAddr,
    /// Bytes read off the socket, not yet consumed by the head parser.
    pub(crate) inbuf: Vec<u8>,
    /// Rendered response bytes not yet written to the socket.
    out: Vec<u8>,
    /// Write offset into `out` (drained front; reset when fully flushed).
    out_pos: usize,
    pub(crate) state: ConnState,
    /// The reap deadline for the current state (header / idle / write-stall).
    pub(crate) deadline: Instant,
    /// Requests completed on this connection (keep-alive budget).
    pub(crate) served: usize,
    /// When the in-flight request's head finished parsing (latency probe).
    pub(crate) request_started: Option<Instant>,
    /// Status of the in-flight response, once routed (0 = not yet known).
    pub(crate) status: u16,
    /// A worker currently owns a job for this connection.
    pub(crate) pending_job: bool,
    /// The unstreamed remainder of a chunked body, when no worker holds it.
    pub(crate) stream_body: Option<StreamBody>,
    /// Whether the connection stays open after the in-flight response, as
    /// decided by the handler (the `Connection` header actually written).
    pub(crate) keep_alive_after: bool,
    /// The peer half-closed: report [`ReadOutcome::Eof`] once `inbuf` drains.
    eof: bool,
}

impl Connection {
    pub(crate) fn new(stream: TcpStream, peer: IpAddr, header_deadline: Instant) -> Self {
        Self {
            stream,
            peer,
            inbuf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::ReadingHead,
            deadline: header_deadline,
            served: 0,
            request_started: None,
            status: 0,
            pending_job: false,
            stream_body: None,
            keep_alive_after: false,
            eof: false,
        }
    }

    /// Response bytes still queued for the socket.
    pub(crate) fn out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Queues rendered response bytes for writing.
    pub(crate) fn queue_output(&mut self, bytes: &[u8]) {
        // Compact the drained front first so the buffer cannot creep upward
        // across a long streaming response.
        if self.out_pos > 0 && self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Reads whatever the socket has ready, up to one burst, into `inbuf`.
    ///
    /// A peer that writes a request and immediately half-closes delivers data
    /// *and* EOF in one burst; the data wins ([`ReadOutcome::Data`]) and the
    /// EOF is remembered, reported on the next call once the buffer is served.
    pub(crate) fn read_some(&mut self) -> ReadOutcome {
        let mut scratch = [0u8; 4096];
        let mut appended = false;
        while !self.eof && self.inbuf.len() < READ_BURST_BYTES {
            match self.stream.read(&mut scratch) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    appended = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Resets and other hard errors: the peer is unreachable.
                Err(_) => {
                    self.eof = true;
                }
            }
        }
        if appended {
            ReadOutcome::Data
        } else if self.eof {
            ReadOutcome::Eof
        } else {
            ReadOutcome::WouldBlock
        }
    }

    /// Writes as much queued output as the socket accepts without blocking.
    ///
    /// Returns whether any bytes moved (write progress refreshes the
    /// write-stall deadline) — `Err` means the peer is gone.
    pub(crate) fn flush(&mut self) -> std::io::Result<bool> {
        let mut progressed = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "")),
                Ok(n) => {
                    self.out_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() && self.out_pos > 0 {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        (client, served)
    }

    #[test]
    fn reads_are_buffered_and_eof_is_reported() {
        let (mut client, served) = pair();
        let peer = served.peer_addr().unwrap().ip();
        let mut conn = Connection::new(served, peer, Instant::now());
        assert_eq!(conn.read_some(), ReadOutcome::WouldBlock);
        client.write_all(b"GET /healthz").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.read_some(), ReadOutcome::Data);
        assert_eq!(conn.inbuf, b"GET /healthz");
        drop(client);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.read_some(), ReadOutcome::Eof);
    }

    #[test]
    fn data_delivered_with_eof_is_not_lost() {
        let (mut client, served) = pair();
        let peer = served.peer_addr().unwrap().ip();
        let mut conn = Connection::new(served, peer, Instant::now());
        // Write-then-half-close in one shot, the pipelined-close client shape.
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        drop(client);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.read_some(), ReadOutcome::Data, "buffered bytes win");
        assert_eq!(conn.inbuf, b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(conn.read_some(), ReadOutcome::Eof, "EOF surfaces next call");
    }

    #[test]
    fn queued_output_flushes_and_compacts() {
        let (mut client, served) = pair();
        let peer = served.peer_addr().unwrap().ip();
        let mut conn = Connection::new(served, peer, Instant::now());
        conn.queue_output(b"hello ");
        conn.queue_output(b"world");
        assert_eq!(conn.out_len(), 11);
        assert!(conn.flush().unwrap());
        assert_eq!(conn.out_len(), 0);
        let mut got = [0u8; 11];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");
    }
}
