//! The entropy server: a nonblocking `poll(2)` event loop, a worker pool for
//! blocking draws and CPU-bound batteries, routing and the endpoint handlers.
//!
//! # Architecture
//!
//! ```text
//!                  ┌────────────────────────────── Server ──────────────────────────────┐
//!  SIGTERM ──────▶ │ poll(2) event loop (one thread, one pollfd per connection)         │
//!  (flag)          │   accept ─ read ─ parse head ─┐                ┌─ flush ─ keep-alive│
//!                  │   per-conn state machine:     │ Job queue      │   idle / reap      │
//!                  │   ReadingHead→Busy→Idle       ▼                │                    │
//!                  │                        worker pool (N threads) │                    │
//!                  │                        route ── draw ── frame  │                    │
//!                  │                               │                │                    │
//!                  │   ◀── wake pipe ── WorkDone {bytes, stream remainder} ─┘           │
//!                  │                               │                                    │
//!                  │             /entropy draws ──▶ EntropyTap (engine shards,          │
//!                  │             /random draws  ──▶ ExpandedTap  bounded channels)      │
//!                  └─────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Connections are cheap, threads are spent wisely** — thousands of idle or
//!   slow connections cost one pollfd each; only requests actually drawing from
//!   the engine or running a battery occupy one of the `threads` workers.  The
//!   loop itself never blocks on the engine.
//! * **Backpressure, end to end** — a worker streams at most one pump budget
//!   (4 × `chunk_bytes`) per job, and the loop schedules the next pump only while
//!   the connection's output buffer sits below its high-water mark; when clients
//!   stop reading, pumping stops, the tap stops draining, and the shard workers
//!   park on their full queue.  Nothing buffers unboundedly anywhere on the path.
//! * **Time-domain defenses** — a head must arrive whole within the header
//!   deadline (slow-loris), responses must keep making write progress
//!   (stalled readers), idle keep-alive connections are reaped on the idle
//!   deadline, and per-IP concurrency is capped by the [`ConnectionGate`]
//!   underneath the byte-denominated [`RateLimiter`].
//! * **Entropy policy is the contract** — the accounted ledger travels in the
//!   `X-PTRNG-MinEntropy` / `X-PTRNG-Ledger` response headers; a configuration whose
//!   accounted entropy misses `min_output_entropy` starts in *refusing* mode and
//!   answers `/entropy` with HTTP 503 and the ledger JSON as the body, exactly the
//!   refusal `ptrngd` expresses with exit code 2.
//! * **Graceful shutdown** — SIGTERM (or [`ShutdownHandle::shutdown`]) stops the
//!   accept loop and closes idle connections; in-flight responses complete, worker
//!   threads are joined, and the engine is drained deterministically.

use std::collections::HashMap;
use std::io::{PipeReader, PipeWriter, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ptrng_ais::estimators::MIN_BATTERY_BITS;
use ptrng_engine::audit::{AuditConfig, EntropyAudit, DEFAULT_AUDIT_WINDOW_BITS};
use ptrng_engine::expanded::{DrbgPolicy, ExpandedTap};
use ptrng_engine::metrics::ShardAlarm;
use ptrng_engine::observatory::Observatory;
use ptrng_engine::pool::{Engine, EngineConfig};
use ptrng_engine::tap::EntropyTap;
use ptrng_engine::EngineError;
use ptrng_obs::probe::elapsed_ns;
use ptrng_obs::{
    Event, EventKind, FlightRecorder, Journal, LogLinearHistogram, MetricKind, ObsClock,
    Postmortem, Probe, TextEncoder, DEFAULT_TIME_BOUNDS_NS,
};
use ptrng_trng::conditioning::EntropyLedger;
use serde::{Serialize, Value};

use crate::conn::{ConnState, Connection, ReadOutcome, StreamBody, StreamTier, READ_BURST_BYTES};
use crate::event::{Poller, Readiness};
use crate::http::{
    encode_chunk, encode_chunk_end, write_response, ChunkedWriter, Request, ResponseHead,
};
use crate::limiter::{ConnectionGate, RateLimiter};
use crate::metrics::{render_prometheus_into, ServerMetrics};
use crate::{Result, ServeError};

/// Upper bound on one poll(2) wait: the loop re-checks the shutdown flag at
/// least this often even with nothing ready and no deadline near.
const LOOP_TICK: Duration = Duration::from_millis(25);

/// Maximum connections accepted per loop iteration, so one accept flood cannot
/// starve connections that are mid-request.
const ACCEPT_BURST: usize = 64;

/// `Retry-After` advice on the 503 entropy-deficit refusal: the deficit is a
/// configuration property, so it will not clear on its own — but an operator
/// redeploying with a fixed accounting is plausible on this horizon, and the
/// header keeps well-behaved clients from hot-polling a refusing server.
const DEFICIT_RETRY_AFTER_SECS: u64 = 30;

/// Per-client token-bucket parameters (see [`crate::limiter::RateLimiter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained entropy budget per client, in bytes per second.
    pub bytes_per_sec: u64,
    /// Burst capacity per client, in bytes.
    pub burst_bytes: u64,
}

/// Configuration of the HTTP entropy server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 binds an ephemeral port).
    pub listen: String,
    /// Worker threads running handlers (blocking draws, CPU-bound batteries).
    /// Concurrency of *connections* is bounded by `max_connections` instead.
    pub threads: usize,
    /// Hard cap on the `bytes` parameter of one `/entropy` request.
    pub max_request_bytes: u64,
    /// Optional per-client rate limit; `None` serves every request.
    pub rate_limit: Option<RateLimit>,
    /// Draw/write granularity of streamed entropy responses.
    pub chunk_bytes: usize,
    /// Requests served per connection before it is closed.
    pub keep_alive_requests: usize,
    /// Fallback deadline for `header_timeout` and `idle_timeout` when those are
    /// not set explicitly (retains the pre-event-loop knob's meaning: how long a
    /// quiet connection may sit before it is reaped).
    pub read_timeout: Duration,
    /// Hard cap on concurrently open connections; excess accepts are answered
    /// with a best-effort 503 and closed immediately.
    pub max_connections: usize,
    /// Cap on concurrent connections per client IP (`0` disables); a client at
    /// its cap has further connections answered 429 and closed.
    pub per_ip_connections: usize,
    /// How long a connection may take to deliver one complete request head
    /// before it is reaped (the slow-loris guard); `None` uses `read_timeout`.
    pub header_timeout: Option<Duration>,
    /// How long an idle keep-alive connection is retained between requests;
    /// `None` uses `read_timeout`.
    pub idle_timeout: Option<Duration>,
    /// How long a response may go without write progress before the connection
    /// is reaped (the stalled-reader guard).
    pub write_timeout: Duration,
    /// The engine configuration to serve from (its `budget_bytes` should be `None`:
    /// a serving engine runs until shutdown).
    pub engine: EngineConfig,
    /// Optional JSONL journal sink (`--journal <path>`): the engine appends alarm
    /// postmortems to it as they are captured.
    pub journal: Option<Arc<Journal>>,
    /// Enables the `/random` DRBG expansion tier with this reseed policy
    /// (`--drbg`); `None` leaves the tier disabled and `/random` answers 404.
    pub drbg: Option<DrbgPolicy>,
}

impl ServeConfig {
    /// Defaults for the given engine: `127.0.0.1:7878`, 4 workers, 4 MiB request
    /// cap, no rate limit, 64 KiB chunks, 64 requests per connection, 5 s
    /// header/idle deadlines, 1024 connections, no per-IP cap, 10 s write-stall
    /// deadline.
    pub fn new(engine: EngineConfig) -> Self {
        Self {
            listen: "127.0.0.1:7878".to_string(),
            threads: 4,
            max_request_bytes: 4 << 20,
            rate_limit: None,
            chunk_bytes: 64 << 10,
            keep_alive_requests: 64,
            read_timeout: Duration::from_secs(5),
            max_connections: 1024,
            per_ip_connections: 0,
            header_timeout: None,
            idle_timeout: None,
            write_timeout: Duration::from_secs(10),
            engine,
            journal: None,
            drbg: None,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(ServeError::Config("threads must be at least 1".into()));
        }
        if self.chunk_bytes == 0 {
            return Err(ServeError::Config("chunk_bytes must be at least 1".into()));
        }
        if self.keep_alive_requests == 0 {
            return Err(ServeError::Config(
                "keep_alive_requests must be at least 1".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(ServeError::Config(
                "max_connections must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// What the server is serving from: a live tap, or a refusal captured at spawn.
enum Supply {
    /// The engine spawned and its accounted entropy satisfies the policy.
    Serving(EntropyTap),
    /// The engine refused to spawn with [`EngineError::EntropyDeficit`]; `/entropy`
    /// answers 503 with this accounting.
    Refusing {
        ledger: EntropyLedger,
        accounted: f64,
        required: f64,
    },
}

/// State shared between the event loop and the worker pool.
struct SharedState {
    supply: Supply,
    /// The `/random` expansion tier (`None`: disabled by config or refusing).
    expanded: Option<Arc<ExpandedTap>>,
    limiter: Option<RateLimiter>,
    /// Separate token bucket for the `/random` tier: expanded bytes are cheap,
    /// so a `/random` consumer must not drain the full-entropy budget of
    /// `/entropy` clients behind the same IP (and vice versa).
    drbg_limiter: Option<RateLimiter>,
    metrics: ServerMetrics,
    shutdown: Arc<AtomicBool>,
    max_request_bytes: u64,
    chunk_bytes: usize,
    shards: usize,
    /// The engine's observability surface (`None` in refusing mode — no engine ran).
    obs: Option<Arc<Observatory>>,
    /// HTTP-layer flight recorder, on the engine's clock when one is running.
    http_recorder: Arc<FlightRecorder>,
    /// Request-latency histogram + recorder binding for `HttpRequest` events.
    http_probe: Probe,
}

/// Cooperative shutdown trigger for a running [`Server`] (the programmatic
/// equivalent of SIGTERM; cloneable and safe to fire from any thread).
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown: accepting stops, idle connections close, in-flight
    /// responses complete, then [`Server::serve`] returns.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Process-wide flag set by the signal handler (SIGTERM/SIGINT).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod signals {
    //! Minimal hand-rolled signal hookup: the container has no `libc`/`signal-hook`
    //! crate, and `std` exposes no signal API, so the two `signal(2)` registrations
    //! are declared directly.  The handler only performs an atomic store, which is
    //! async-signal-safe.  (The poll(2) declaration in [`crate::event`] follows the
    //! same discipline.)
    #![allow(unsafe_code)]

    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn on_signal(_signum: c_int) {
        super::SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `signal(2)` with a handler that is async-signal-safe (a single
        // atomic store, no allocation, no locks); replacing the default disposition
        // of SIGTERM/SIGINT is the entire point.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// A bound entropy server, ready to [`Server::serve`].
pub struct Server {
    listener: TcpListener,
    state: Arc<SharedState>,
    threads: usize,
    keep_alive_requests: usize,
    max_connections: usize,
    per_ip_connections: usize,
    header_timeout: Duration,
    idle_timeout: Duration,
    write_timeout: Duration,
}

impl Server {
    /// Spawns the engine and binds the listener.
    ///
    /// An [`EngineError::EntropyDeficit`] at spawn does **not** fail the bind: the
    /// server starts in *refusing* mode, answering `/entropy` with HTTP 503 and the
    /// accounted ledger, and `/healthz` with `"refusing"` — an operator can then
    /// inspect the accounting over the wire instead of a dead port.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations, non-deficit engine spawn
    /// failures, and bind failures.
    pub fn bind(config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let shards = config.engine.shards;
        let supply = match Engine::spawn_with_journal(config.engine.clone(), config.journal.clone())
        {
            Ok(engine) => Supply::Serving(engine.into_tap()),
            Err(EngineError::EntropyDeficit {
                ledger,
                accounted,
                required,
                ..
            }) => Supply::Refusing {
                ledger: *ledger,
                accounted,
                required,
            },
            Err(other) => return Err(other.into()),
        };
        let expanded = match (&supply, config.drbg) {
            (Supply::Serving(tap), Some(policy)) => {
                Some(Arc::new(ExpandedTap::new(tap.clone(), policy)?))
            }
            _ => None,
        };
        let build_limiter = || match config.rate_limit {
            Some(limit) => Ok(Some(
                RateLimiter::new(limit.bytes_per_sec, limit.burst_bytes)
                    .map_err(ServeError::Config)?,
            )),
            None => Ok::<_, ServeError>(None),
        };
        let limiter = build_limiter()?;
        let drbg_limiter = if expanded.is_some() {
            build_limiter()?
        } else {
            None
        };
        // The HTTP flight recorder shares the engine's clock when one is running so
        // request events interleave with shard events on /debug/trace; in refusing
        // mode there is no engine and the HTTP layer gets its own epoch.
        let obs = match &supply {
            Supply::Serving(tap) => Some(Arc::clone(tap.observatory())),
            Supply::Refusing { .. } => None,
        };
        let clock = obs.as_ref().map_or_else(ObsClock::new, |obs| obs.clock());
        let http_recorder = Arc::new(FlightRecorder::new(
            clock,
            config.engine.obs.ring_events.max(1),
            config.engine.obs.recorder,
        ));
        let http_probe = Probe::new(Arc::new(LogLinearHistogram::new()), EventKind::HttpRequest)
            .with_recorder(Arc::clone(&http_recorder), None);
        let listener = TcpListener::bind(&config.listen)?;
        Ok(Self {
            listener,
            state: Arc::new(SharedState {
                supply,
                expanded,
                limiter,
                drbg_limiter,
                metrics: ServerMetrics::new(),
                shutdown: Arc::new(AtomicBool::new(false)),
                max_request_bytes: config.max_request_bytes,
                chunk_bytes: config.chunk_bytes,
                shards,
                obs,
                http_recorder,
                http_probe,
            }),
            threads: config.threads,
            keep_alive_requests: config.keep_alive_requests,
            max_connections: config.max_connections,
            per_ip_connections: config.per_ip_connections,
            header_timeout: config.header_timeout.unwrap_or(config.read_timeout),
            idle_timeout: config.idle_timeout.unwrap_or(config.read_timeout),
            write_timeout: config.write_timeout,
        })
    }

    /// The end-to-end request-latency histogram, fed by every served request.
    ///
    /// Cloning the `Arc` before [`Server::serve`] consumes the server lets a
    /// harness query p50/p99 (via [`ptrng_obs::HistogramSnapshot::quantile`]) after the
    /// serving thread has drained.
    pub fn request_latency(&self) -> Arc<LogLinearHistogram> {
        Arc::clone(self.state.http_probe.histogram())
    }

    /// The bound socket address (resolves port 0 binds).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Whether the server is serving entropy (vs. refusing on a deficit).
    pub fn is_serving(&self) -> bool {
        matches!(self.state.supply, Supply::Serving(_))
    }

    /// A cloneable trigger that ends [`Server::serve`] gracefully.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.state.shutdown))
    }

    /// Registers SIGTERM/SIGINT handlers that trigger the same graceful shutdown as
    /// [`ShutdownHandle::shutdown`] (no-op on non-Unix targets).
    pub fn install_signal_handlers(&self) {
        #[cfg(unix)]
        signals::install();
    }

    /// Runs the event loop until shutdown, then drains: in-flight responses
    /// complete, workers are joined, and the engine is shut down.
    ///
    /// # Errors
    ///
    /// Returns an error when the listener or poller fails fatally or an engine
    /// worker panicked during drain.
    pub fn serve(self) -> Result<()> {
        self.listener.set_nonblocking(true)?;
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, done_rx) = channel::<WorkDone>();
        let (wake_rx, wake_tx) = std::io::pipe()?;
        let workers: Vec<_> = (0..self.threads)
            .map(|index| {
                let jobs = Arc::clone(&job_rx);
                let done = done_tx.clone();
                let state = Arc::clone(&self.state);
                let mut wake = wake_tx.try_clone()?;
                Ok(std::thread::Builder::new()
                    .name(format!("ptrng-serve-{index}"))
                    .spawn(move || worker_loop(&state, &jobs, &done, &mut wake))
                    .expect("worker thread spawns"))
            })
            .collect::<std::io::Result<_>>()?;
        // The loop holds the only job sender; workers hold the only done senders
        // and wake writers, so each channel closes exactly when its side exits.
        drop(done_tx);
        drop(wake_tx);

        let state = Arc::clone(&self.state);
        let mut event_loop = EventLoop {
            state: Arc::clone(&self.state),
            listener: self.listener,
            gate: ConnectionGate::new(self.per_ip_connections),
            conns: HashMap::new(),
            next_conn: 0,
            poller: Poller::new(),
            job_tx,
            done_rx,
            wake_rx,
            keep_alive_requests: self.keep_alive_requests,
            max_connections: self.max_connections,
            header_timeout: self.header_timeout,
            idle_timeout: self.idle_timeout,
            write_timeout: self.write_timeout,
            high_water: 4 * self.state.chunk_bytes,
            draining: false,
        };
        let outcome = event_loop.run();
        // Dropping the loop closes the listener (new connects are refused) and the
        // job queue (workers finish in-flight jobs, observe the closed queue, exit).
        drop(event_loop);
        for worker in workers {
            let _ = worker.join();
        }
        let drain = (|| -> Result<()> {
            if let Some(expanded) = &state.expanded {
                // Zeroizes the DRBG working state; the tap shutdown underneath is
                // idempotent with the one below (clones share the engine).
                expanded.shutdown()?;
            }
            if let Supply::Serving(tap) = &state.supply {
                tap.shutdown()?;
            }
            Ok(())
        })();
        outcome.and(drain)
    }
}

/// A handler's finished verdict: rendered head (+ inline body) bytes, the status
/// actually written, the keep-alive semantics the `Connection` header promised,
/// and the streamed remainder for chunked bodies.
struct Routed {
    bytes: Vec<u8>,
    status: u16,
    keep_alive: bool,
    stream: Option<StreamBody>,
}

/// Work the event loop hands to the pool.
enum Job {
    /// Route one parsed request (may block on the engine or burn CPU).
    Route {
        conn: u64,
        request: Request,
        peer: IpAddr,
        keep_alive: bool,
    },
    /// Draw and frame the next budget of a streaming body.
    Pump { conn: u64, body: StreamBody },
}

/// A worker's result, reported back to the loop over the done channel (with one
/// byte on the wake pipe so a sleeping poll notices).
struct WorkDone {
    conn: u64,
    /// Rendered bytes to queue on the connection.
    bytes: Vec<u8>,
    /// The unstreamed remainder, returned to the loop for pump scheduling.
    stream: Option<StreamBody>,
    /// Keep-alive as written in the response head (only meaningful with
    /// `status != 0`).
    keep_alive: bool,
    /// Status of a routed response; `0` marks a pump continuation, which must
    /// not clobber the connection's routed status or keep-alive verdict.
    status: u16,
    /// The supply died mid-stream: close without the terminating chunk so the
    /// client observes a truncated transfer, never short bytes.
    abort: bool,
}

fn worker_loop(
    state: &SharedState,
    jobs: &Mutex<Receiver<Job>>,
    done: &Sender<WorkDone>,
    wake: &mut PipeWriter,
) {
    loop {
        // The guard is held only for the blocking recv (the temporary drops at
        // the end of the statement), released before the job executes.
        let job = jobs.lock().expect("job queue lock poisoned").recv();
        let Ok(job) = job else { break };
        let result = match job {
            Job::Route {
                conn,
                request,
                peer,
                keep_alive,
            } => {
                let routed = route(state, &request, peer, keep_alive);
                WorkDone {
                    conn,
                    bytes: routed.bytes,
                    stream: routed.stream,
                    keep_alive: routed.keep_alive,
                    status: routed.status,
                    abort: false,
                }
            }
            Job::Pump { conn, body } => pump(state, conn, body),
        };
        if done.send(result).is_err() {
            break;
        }
        let _ = wake.write(&[1]);
    }
}

/// Draws and frames up to one budget (4 × `chunk_bytes`) of a streaming body.
///
/// Bounding the per-job budget keeps large draws fair: a 4 MiB `/entropy`
/// response is sixteen pump jobs interleaved with everyone else's work, not one
/// worker pinned for the stream's lifetime.
fn pump(state: &SharedState, conn: u64, body: StreamBody) -> WorkDone {
    let budget = (4 * state.chunk_bytes as u64).min(body.remaining);
    let mut scratch = vec![0u8; state.chunk_bytes.min(budget as usize)];
    let mut out = Vec::with_capacity(budget as usize + 64);
    let mut remaining = body.remaining;
    let mut pumped = 0u64;
    let mut abort = false;
    while pumped < budget && remaining > 0 {
        let want = (scratch.len() as u64).min(budget - pumped).min(remaining) as usize;
        let drawn = match body.tier {
            StreamTier::Entropy => {
                let Supply::Serving(tap) = &state.supply else {
                    abort = true;
                    break;
                };
                let drawn = tap.draw(&mut scratch[..want]);
                if drawn == 0 {
                    // Every shard terminated (alarms).
                    abort = true;
                    break;
                }
                drawn
            }
            StreamTier::Random => {
                let Some(expanded) = &state.expanded else {
                    abort = true;
                    break;
                };
                if expanded.draw(&mut scratch[..want]).is_err() {
                    // A reseed came due mid-stream and could not be funded.
                    abort = true;
                    break;
                }
                want
            }
        };
        encode_chunk(&mut out, &scratch[..drawn]);
        state.metrics.record_bytes_served(drawn as u64);
        pumped += drawn as u64;
        remaining -= drawn as u64;
    }
    if remaining == 0 && !abort {
        encode_chunk_end(&mut out);
    }
    let stream = (remaining > 0 && !abort).then_some(StreamBody { remaining, ..body });
    WorkDone {
        conn,
        bytes: out,
        stream,
        keep_alive: false,
        status: 0,
        abort,
    }
}

/// The poll(2) event loop: owns the listener, every accepted [`Connection`], and
/// both ends of the worker conversation (job sender, done receiver, wake pipe).
struct EventLoop {
    state: Arc<SharedState>,
    listener: TcpListener,
    gate: ConnectionGate,
    conns: HashMap<u64, Connection>,
    next_conn: u64,
    poller: Poller,
    job_tx: Sender<Job>,
    done_rx: Receiver<WorkDone>,
    wake_rx: PipeReader,
    keep_alive_requests: usize,
    max_connections: usize,
    header_timeout: Duration,
    idle_timeout: Duration,
    write_timeout: Duration,
    /// Pump scheduling stops while a connection's output buffer holds at least
    /// this much (the client is not reading fast enough — backpressure).
    high_water: usize,
    /// Shutdown observed: the listener is parked, idle connections are closed,
    /// and the loop ends once the map drains.
    draining: bool,
}

impl EventLoop {
    fn shutting(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }

    fn run(&mut self) -> Result<()> {
        loop {
            if self.shutting() && !self.draining {
                self.draining = true;
                // Close connections between requests; Busy ones finish first.
                let parked: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, conn)| {
                        matches!(conn.state, ConnState::Idle | ConnState::ReadingHead)
                    })
                    .map(|(id, _)| *id)
                    .collect();
                for id in parked {
                    self.close_conn(id);
                }
            }
            if self.draining && self.conns.is_empty() {
                return Ok(());
            }

            let now = Instant::now();
            self.poller.clear();
            let listener_slot =
                (!self.draining).then(|| self.poller.push(self.listener.as_raw_fd(), true, false));
            let wake_slot = self.poller.push(self.wake_rx.as_raw_fd(), true, false);
            let mut conn_slots: Vec<(u64, usize)> = Vec::with_capacity(self.conns.len());
            for (id, conn) in &self.conns {
                // Busy connections pause reads (backpressure); a no-interest
                // pollfd still reports errors/hangups, which is how they learn
                // their peer died mid-response.
                let read = matches!(conn.state, ConnState::ReadingHead | ConnState::Idle);
                let write = conn.out_len() > 0;
                conn_slots.push((*id, self.poller.push(conn.stream.as_raw_fd(), read, write)));
            }
            self.poller.poll(self.poll_timeout(now))?;

            if self.poller.revents(wake_slot).readable {
                // Drain a batch of wake bytes; anything left re-reports readable.
                let mut sink = [0u8; 256];
                let _ = self.wake_rx.read(&mut sink);
            }
            let now = Instant::now();
            while let Ok(done) = self.done_rx.try_recv() {
                self.apply_done(done, now);
            }
            if let Some(slot) = listener_slot {
                if self.poller.revents(slot).readable {
                    self.accept_burst(now)?;
                }
            }
            // Service every connection: flush/parse/dispatch work is a no-op for
            // quiet ones, and the pass doubles as the deadline sweep.  Fresh
            // accepts (no slot) default to readable for their first read.
            let mut readiness: HashMap<u64, Readiness> = conn_slots
                .iter()
                .map(|(id, slot)| (*id, self.poller.revents(*slot)))
                .collect();
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                let ready = readiness.remove(&id).unwrap_or(Readiness {
                    readable: true,
                    ..Readiness::default()
                });
                let Some(mut conn) = self.conns.remove(&id) else {
                    continue;
                };
                if self.service_conn(id, &mut conn, ready, now) {
                    self.conns.insert(id, conn);
                } else {
                    self.gate.release(conn.peer);
                }
            }
        }
    }

    /// Next poll timeout: the loop tick, shortened to the nearest reapable
    /// deadline (connections waiting on a worker are not reapable).
    fn poll_timeout(&self, now: Instant) -> Duration {
        let mut timeout = LOOP_TICK;
        for conn in self.conns.values() {
            if conn.pending_job {
                continue;
            }
            timeout = timeout.min(conn.deadline.saturating_duration_since(now));
        }
        timeout
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            self.gate.release(conn.peer);
        }
    }

    /// Applies one worker result to its connection (which may be gone: reaped
    /// or hung up while the worker ran — the result is then discarded).
    fn apply_done(&mut self, done: WorkDone, now: Instant) {
        let Some(conn) = self.conns.get_mut(&done.conn) else {
            return;
        };
        conn.pending_job = false;
        conn.deadline = now + self.write_timeout;
        if done.status != 0 {
            conn.status = done.status;
            conn.keep_alive_after = done.keep_alive;
        }
        conn.queue_output(&done.bytes);
        conn.stream_body = done.stream;
        if done.abort {
            // Flush what was drawn, then close: the missing terminator makes
            // the truncation visible to the client.
            conn.stream_body = None;
            conn.keep_alive_after = false;
        }
    }

    /// Accepts up to one burst of pending connections, applying the hard
    /// connection limit and the per-IP gate.
    fn accept_burst(&mut self, now: Instant) -> Result<()> {
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, peer_addr)) => {
                    let peer = peer_addr.ip();
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if self.conns.len() >= self.max_connections {
                        refuse(
                            &self.state,
                            stream,
                            503,
                            "server busy",
                            "connection limit reached; retry shortly",
                        );
                        continue;
                    }
                    if !self.gate.try_register(peer) {
                        refuse(
                            &self.state,
                            stream,
                            429,
                            "too many connections",
                            "per-client concurrent connection cap reached",
                        );
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns
                        .insert(id, Connection::new(stream, peer, now + self.header_timeout));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Advances one connection's state machine; `false` closes it.
    fn service_conn(
        &mut self,
        id: u64,
        conn: &mut Connection,
        ready: Readiness,
        now: Instant,
    ) -> bool {
        if ready.hangup && !ready.readable {
            return false;
        }
        if matches!(conn.state, ConnState::Idle | ConnState::ReadingHead) && ready.readable {
            match conn.read_some() {
                ReadOutcome::Eof => return false,
                ReadOutcome::Data if conn.state == ConnState::Idle => {
                    conn.state = ConnState::ReadingHead;
                    conn.deadline = now + self.header_timeout;
                }
                ReadOutcome::Data | ReadOutcome::WouldBlock => {}
            }
        }
        loop {
            if conn.state == ConnState::ReadingHead && !conn.inbuf.is_empty() {
                match Request::parse_head(&conn.inbuf) {
                    Ok(Some((request, consumed))) => {
                        conn.inbuf.drain(..consumed);
                        self.state.metrics.record_request();
                        conn.request_started = Some(now);
                        conn.status = 0;
                        conn.state = ConnState::Busy;
                        conn.deadline = now + self.write_timeout;
                        conn.pending_job = true;
                        let keep_alive = !request.wants_close()
                            && conn.served + 1 < self.keep_alive_requests
                            && !self.shutting();
                        let job = Job::Route {
                            conn: id,
                            request,
                            peer: conn.peer,
                            keep_alive,
                        };
                        if self.job_tx.send(job).is_err() {
                            return false;
                        }
                    }
                    Ok(None) => {
                        if conn.inbuf.len() >= READ_BURST_BYTES {
                            // The buffer is full and still holds no complete
                            // head: it never will.
                            reject_request(
                                &self.state,
                                conn,
                                "request head too large",
                                now + self.write_timeout,
                            );
                        }
                    }
                    Err(error) => {
                        reject_request(
                            &self.state,
                            conn,
                            &error.to_string(),
                            now + self.write_timeout,
                        );
                    }
                }
            }
            if conn.out_len() > 0 {
                match conn.flush() {
                    Err(_) => return false,
                    Ok(progressed) => {
                        if progressed && conn.state == ConnState::Busy {
                            conn.deadline = now + self.write_timeout;
                        }
                    }
                }
            }
            if conn.state == ConnState::Busy
                && !conn.pending_job
                && conn.stream_body.is_some()
                && conn.out_len() < self.high_water
            {
                let body = conn.stream_body.take().expect("checked above");
                conn.pending_job = true;
                conn.deadline = now + self.write_timeout;
                if self.job_tx.send(Job::Pump { conn: id, body }).is_err() {
                    return false;
                }
            }
            if conn.state == ConnState::Busy
                && !conn.pending_job
                && conn.stream_body.is_none()
                && conn.out_len() == 0
                && conn.status != 0
            {
                // Response fully written: complete the request.
                if let Some(started) = conn.request_started.take() {
                    self.state
                        .http_probe
                        .record_tagged(elapsed_ns(started), u64::from(conn.status));
                }
                conn.served += 1;
                if !conn.keep_alive_after || self.shutting() {
                    return false;
                }
                conn.status = 0;
                if !conn.inbuf.is_empty() {
                    // A pipelined request is already buffered: parse it now.
                    conn.state = ConnState::ReadingHead;
                    conn.deadline = now + self.header_timeout;
                    continue;
                }
                conn.state = ConnState::Idle;
                conn.deadline = now + self.idle_timeout;
            }
            break;
        }
        // The deadline sweep: header, idle and write-stall deadlines all land
        // here.  Connections waiting on a worker are exempt (the job's draw may
        // legitimately block on the engine).
        now < conn.deadline || conn.pending_job
    }
}

/// Best-effort refusal of a connection the loop will not admit: one nonblocking
/// write of a rendered response, then the socket drops.
fn refuse(state: &SharedState, mut stream: TcpStream, status: u16, error: &str, detail: &str) {
    state.metrics.record_response(status);
    let body = error_body(error, detail);
    let head = ResponseHead::new(status)
        .header("Content-Type", "application/json")
        .header("Retry-After", "1");
    let mut bytes = Vec::with_capacity(body.len() + 128);
    write_response(&mut bytes, &head, body.as_bytes(), false, false)
        .expect("buffer writes are infallible");
    let _ = stream.write(&bytes);
}

/// Renders a local 400 (malformed or oversized head) straight onto the
/// connection — no worker round-trip, and the connection closes after the
/// flush: the parse position is unrecoverable.
fn reject_request(state: &SharedState, conn: &mut Connection, detail: &str, deadline: Instant) {
    state.metrics.record_response(400);
    let body = error_body("bad request", detail);
    let head = ResponseHead::new(400).header("Content-Type", "application/json");
    let mut bytes = Vec::with_capacity(body.len() + 128);
    write_response(&mut bytes, &head, body.as_bytes(), false, false)
        .expect("buffer writes are infallible");
    conn.queue_output(&bytes);
    conn.inbuf.clear();
    conn.state = ConnState::Busy;
    conn.status = 400;
    conn.keep_alive_after = false;
    conn.request_started = None;
    conn.deadline = deadline;
}

/// `/healthz` response body.
#[derive(Debug, Serialize)]
struct HealthzBody {
    /// `ok`, `degraded` (a terminal alarm with live shards remaining, or a pool
    /// child currently out of serving), `alarmed` (no live shards), or
    /// `refusing` (entropy deficit at spawn).  Non-terminal history (a pool
    /// child that quarantined and was since reinstated) does not stick: status
    /// reflects the current state, the alarm trail keeps the history.
    status: String,
    shards: usize,
    live_shards: usize,
    alarms: usize,
    alarm_reasons: Vec<ShardAlarm>,
    /// The currently accounted min-entropy per output bit (tracks pool
    /// quarantine; equals the static ledger claim for simple sources).
    min_entropy_per_bit: f64,
    required_min_entropy: Option<f64>,
    /// Per-child lifecycle of pool sources, one entry per (shard, child); empty
    /// for simple sources.
    pool_children: Vec<ptrng_engine::metrics::PoolChildSnapshot>,
    /// Recent alarm postmortems (bounded store, oldest first): the alarming
    /// shard's flight-recorder events plus the ledger in force at alarm time.
    postmortems: Vec<Postmortem>,
}

fn route(state: &SharedState, request: &Request, peer_ip: IpAddr, keep_alive: bool) -> Routed {
    let head_only = request.method == "HEAD";
    if request.method != "GET" && !head_only {
        let body = error_body("method not allowed", "only GET and HEAD are supported");
        return json_routed(state, 405, &body, keep_alive, false);
    }
    match request.path.as_str() {
        "/entropy" => entropy(state, request, peer_ip, keep_alive, head_only),
        "/random" => random(state, request, peer_ip, keep_alive, head_only),
        "/healthz" => healthz(state, keep_alive, head_only),
        "/metrics" => metrics(state, keep_alive, head_only),
        "/selftest" => selftest(state, request, peer_ip, keep_alive, head_only),
        "/debug/trace" => debug_trace(state, peer_ip, keep_alive, head_only),
        _ => {
            let body = error_body(
                "not found",
                "endpoints: /entropy?bytes=N, /random?bytes=N, /healthz, /metrics, /selftest, \
                 /debug/trace",
            );
            json_routed(state, 404, &body, keep_alive, head_only)
        }
    }
}

/// Nominal rate-limit cost of one `/debug/trace` dump, in bytes.  The trace draws
/// no entropy, but rendering the full event timeline is not free either, so it is
/// charged like a small draw to keep an unauthenticated polling loop from spinning.
const TRACE_COST_BYTES: u64 = 4096;

/// `GET /debug/trace` — the flight-recorder timeline and alarm postmortems as
/// JSONL: one `{"record":"event",…}` line per flight-recorder event (shards, tap
/// and HTTP layer merged in time order) followed by one
/// `{"record":"postmortem",…}` line per retained alarm postmortem.
fn debug_trace(state: &SharedState, peer_ip: IpAddr, keep_alive: bool, head_only: bool) -> Routed {
    let head = ResponseHead::new(200).header("Content-Type", "application/x-ndjson");
    // HEAD is a free probe on every endpoint: answered before the limiter.
    if head_only {
        return finish(state, &head, b"", keep_alive, true);
    }
    if let Some(limiter) = &state.limiter {
        if let Err(retry_secs) = limiter.try_acquire(peer_ip, TRACE_COST_BYTES, Instant::now()) {
            return rate_limited(state, "entropy", retry_secs, keep_alive);
        }
    }
    let mut events: Vec<Event> = state
        .obs
        .as_ref()
        .map(|obs| obs.events())
        .unwrap_or_default();
    events.extend(state.http_recorder.snapshot());
    events.sort_by_key(|event| event.t_ns);
    let mut body = String::with_capacity(events.len() * 96);
    for event in &events {
        if let Some(line) = jsonl_record("event", event) {
            body.push_str(&line);
            body.push('\n');
        }
    }
    let postmortems = state
        .obs
        .as_ref()
        .map(|obs| obs.postmortems().snapshot())
        .unwrap_or_default();
    for postmortem in &postmortems {
        if let Some(line) = jsonl_record("postmortem", postmortem) {
            body.push_str(&line);
            body.push('\n');
        }
    }
    finish(state, &head, body.as_bytes(), keep_alive, false)
}

/// Serializes `data` as one JSON object with a leading `"record":"<kind>"` field.
fn jsonl_record(kind: &str, data: &impl Serialize) -> Option<String> {
    let Value::Object(mut fields) = data.to_value() else {
        return None;
    };
    fields.insert(0, ("record".to_string(), Value::Str(kind.to_string())));
    serde_json::to_string(&Value::Object(fields)).ok()
}

/// Hard cap on one `/selftest` window (the battery is CPU-bound; a hostile client
/// must not be able to pin a worker for minutes).
const SELFTEST_MAX_BITS: usize = 1 << 20;

/// `GET /selftest[?bits=N&claim=H&margin=M]` — draws one window of conditioned
/// output from the engine, runs the SP 800-90B §6.3 estimator battery over it and
/// compares the assessment against the ledger claim (or an asserted `claim`).
///
/// Answers 200 with the audit report when the claim holds, 503 with the same body
/// on an overclaim (and in refusing mode, mirroring `/entropy`).  Note the drawn
/// window **consumes** real entropy output — the self-test competes with clients by
/// design, since auditing a stream other than the served one would prove nothing —
/// and is therefore charged against the caller's rate-limit budget like any other
/// entropy draw (the battery is also CPU-bound, so an unmetered loop would starve
/// both the entropy supply and the worker pool).  `HEAD` is the exception: it
/// answers the contract headers before the limiter and draws **nothing**, exactly
/// like `HEAD /entropy` — a probe must spend neither budget nor entropy.
fn selftest(
    state: &SharedState,
    request: &Request,
    peer_ip: IpAddr,
    keep_alive: bool,
    head_only: bool,
) -> Routed {
    let tap = match &state.supply {
        Supply::Serving(tap) => tap,
        Supply::Refusing {
            ledger,
            accounted,
            required,
        } => {
            let body = deficit_body(ledger, *accounted, *required);
            return json_routed(state, 503, &body, keep_alive, head_only);
        }
    };
    let parse_f64 = |name: &str| -> std::result::Result<Option<f64>, String> {
        match request.query_param(name).map(str::parse::<f64>) {
            None => Ok(None),
            Some(Ok(value)) => Ok(Some(value)),
            Some(Err(_)) => Err(format!("`{name}` must be a number")),
        }
    };
    let bits = match request.query_param("bits").map(str::parse::<usize>) {
        None => DEFAULT_AUDIT_WINDOW_BITS,
        Some(Ok(bits)) if (MIN_BATTERY_BITS..=SELFTEST_MAX_BITS).contains(&bits) => bits,
        Some(_) => {
            let body = error_body(
                "bad request",
                &format!("`bits` must be in {MIN_BATTERY_BITS}..={SELFTEST_MAX_BITS}"),
            );
            return json_routed(state, 400, &body, keep_alive, head_only);
        }
    };
    let (claim, margin) = match (parse_f64("claim"), parse_f64("margin")) {
        (Ok(claim), Ok(margin)) => (claim, margin),
        (Err(detail), _) | (_, Err(detail)) => {
            let body = error_body("bad request", &detail);
            return json_routed(state, 400, &body, keep_alive, head_only);
        }
    };

    let ledger = tap.ledger();
    let mut config = AuditConfig::default().window_bits(bits).claim(claim);
    if let Some(margin) = margin {
        config = config.margin(margin);
    }
    let mut audit = match EntropyAudit::new("conditioned", ledger.min_entropy_per_bit(), config) {
        Ok(audit) => audit,
        Err(error) => {
            let body = error_body("bad request", &error.to_string());
            return json_routed(state, 400, &body, keep_alive, head_only);
        }
    };
    if head_only {
        // The probe answers the contract (parameters validated above) without
        // charging the limiter, drawing a window, or running the battery.
        let head = ResponseHead::new(200)
            .header("Content-Type", "application/json")
            .header(
                "X-PTRNG-MinEntropy",
                format!("{:.6}", tap.min_entropy_per_bit()),
            )
            .header("X-PTRNG-Ledger", ledger.to_json());
        return finish(state, &head, b"", keep_alive, true);
    }
    if let Some(limiter) = &state.limiter {
        if let Err(retry_secs) =
            limiter.try_acquire(peer_ip, bits.div_ceil(8) as u64, Instant::now())
        {
            return rate_limited(state, "entropy", retry_secs, keep_alive);
        }
    }
    let mut window = vec![0u8; bits.div_ceil(8)];
    if tap.draw(&mut window) < window.len() {
        let body = error_body(
            "selftest unavailable",
            "the entropy stream ended before one audit window filled",
        );
        return json_routed(state, 503, &body, keep_alive, false);
    }
    let fed = audit.observe_bytes(&window).map(|_| ());
    let outcome = match fed {
        Ok(()) => audit.finalize().map(|_| ()),
        Err(error) => Err(error),
    };
    if let Err(error) = outcome {
        let body = error_body("selftest failed", &error.to_string());
        return json_routed(state, 500, &body, keep_alive, false);
    }
    let overclaim = audit.overclaimed();
    state.metrics.record_selftest(overclaim);
    let report = audit.report();
    // Per-estimator wall-clock cost of this window's battery, lifted to the top
    // level so operators sizing `bits` do not have to dig through the report.
    let timings = report
        .latest
        .as_ref()
        .map(|window| window.timings.clone())
        .unwrap_or_default();
    let timings_json = serde_json::to_string(&timings).expect("timings serialize");
    let report = serde_json::to_string(&report).expect("audit report serializes");
    let body = format!(
        "{{\"overclaim\":{overclaim},\"estimator_timings\":{timings_json},\
         \"audit\":{report},\"ledger\":{}}}",
        ledger.to_json()
    );
    let status = if overclaim { 503 } else { 200 };
    json_routed(state, status, &body, keep_alive, false)
}

/// Parses and bounds the `bytes` query parameter shared by the two entropy
/// tiers; `Err` carries the already-rendered refusal.
fn parse_bytes_param(
    state: &SharedState,
    request: &Request,
    keep_alive: bool,
    head_only: bool,
) -> std::result::Result<u64, Routed> {
    let bytes = match request.query_param("bytes").map(str::parse::<u64>) {
        Some(Ok(bytes)) => bytes,
        Some(Err(_)) => {
            let body = error_body("bad request", "`bytes` must be a non-negative integer");
            return Err(json_routed(state, 400, &body, keep_alive, head_only));
        }
        None => {
            let body = error_body("bad request", "missing `bytes` query parameter");
            return Err(json_routed(state, 400, &body, keep_alive, head_only));
        }
    };
    if bytes > state.max_request_bytes {
        let body = error_body(
            "request too large",
            &format!(
                "`bytes` is capped at {} per request (asked for {bytes})",
                state.max_request_bytes
            ),
        );
        return Err(json_routed(state, 413, &body, keep_alive, head_only));
    }
    Ok(bytes)
}

fn entropy(
    state: &SharedState,
    request: &Request,
    peer_ip: IpAddr,
    keep_alive: bool,
    head_only: bool,
) -> Routed {
    let bytes = match parse_bytes_param(state, request, keep_alive, head_only) {
        Ok(bytes) => bytes,
        Err(refusal) => return refusal,
    };

    let tap = match &state.supply {
        Supply::Serving(tap) => tap,
        Supply::Refusing {
            ledger,
            accounted,
            required,
        } => {
            // The refusal is the ledger: the canonical JSON form *is* the body.
            return deficit_refusal(state, ledger, *accounted, *required, keep_alive, head_only);
        }
    };

    // `X-PTRNG-MinEntropy` carries the *currently accounted* claim — for a pool
    // with a quarantined child this is the honestly reduced survivors-only
    // credit, not the spawn-time figure.  `X-PTRNG-Ledger` stays the static
    // accounting trail (the provenance document, not the live state).
    let ledger = tap.ledger();
    let head = ResponseHead::new(200)
        .header("Content-Type", "application/octet-stream")
        .header("X-PTRNG-Tier", "full-entropy")
        .header(
            "X-PTRNG-MinEntropy",
            format!("{:.6}", tap.min_entropy_per_bit()),
        )
        .header("X-PTRNG-Ledger", ledger.to_json());
    // HEAD serves only the contract headers and draws nothing, so it is answered
    // before the limiter: a probe must not spend the client's entropy budget.
    if head_only {
        return finish(state, &head, b"", keep_alive, true);
    }

    if let Some(limiter) = &state.limiter {
        if let Err(retry_secs) = limiter.try_acquire(peer_ip, bytes, Instant::now()) {
            // Keep-alive on purpose: a rate-limited client retries on this
            // socket after `Retry-After` instead of paying a reconnect.
            return rate_limited(state, "entropy", retry_secs, keep_alive);
        }
    }

    state.metrics.record_response(200);
    let mut out = Vec::with_capacity(512);
    ChunkedWriter::start(&mut out, &head, keep_alive).expect("buffer writes are infallible");
    let mut routed = Routed {
        bytes: out,
        status: 200,
        keep_alive,
        stream: None,
    };
    if bytes == 0 {
        // Zero-byte draws never touch the tap.
        encode_chunk_end(&mut routed.bytes);
    } else {
        routed.stream = Some(StreamBody {
            tier: StreamTier::Entropy,
            remaining: bytes,
        });
    }
    routed
}

/// `GET /random?bytes=N` — the DRBG expansion tier: Hash_DRBG output seeded
/// (and policy-reseeded) from ledger-accounted conditioned entropy.
///
/// The tier trades the full-entropy guarantee for throughput: between funded
/// reseeds it keeps serving even while the accounted credit dips (a quarantined
/// pool child), because the bits it emits were funded by a seed that *was*
/// accounted when drawn.  An unfundable **reseed**, however, answers the same
/// canonical 503-with-ledger refusal as `/entropy` — never silently degraded
/// output.  Disabled tiers (no `--drbg`) answer 404.
fn random(
    state: &SharedState,
    request: &Request,
    peer_ip: IpAddr,
    keep_alive: bool,
    head_only: bool,
) -> Routed {
    let bytes = match parse_bytes_param(state, request, keep_alive, head_only) {
        Ok(bytes) => bytes,
        Err(refusal) => return refusal,
    };
    if let Supply::Refusing {
        ledger,
        accounted,
        required,
    } = &state.supply
    {
        // No engine ran, so no seed can ever be funded: mirror /entropy.
        return deficit_refusal(state, ledger, *accounted, *required, keep_alive, head_only);
    }
    let Some(expanded) = &state.expanded else {
        let body = error_body(
            "drbg tier disabled",
            "start ptrng-serve with --drbg to enable /random",
        );
        return json_routed(state, 404, &body, keep_alive, head_only);
    };

    let head = ResponseHead::new(200)
        .header("Content-Type", "application/octet-stream")
        .header("X-PTRNG-Tier", "drbg-sha256")
        .header("X-PTRNG-Ledger", expanded.tap().ledger().to_json());
    if head_only {
        return finish(state, &head, b"", keep_alive, true);
    }

    if let Some(limiter) = &state.drbg_limiter {
        if let Err(retry_secs) = limiter.try_acquire(peer_ip, bytes, Instant::now()) {
            return rate_limited(state, "drbg", retry_secs, keep_alive);
        }
    }

    let mut routed = Routed {
        bytes: Vec::with_capacity(512),
        status: 200,
        keep_alive,
        stream: None,
    };
    if bytes == 0 {
        // Never touches the DRBG: a zero-byte request must not lazily
        // instantiate it and debit a full accounted seed for nothing.
        state.metrics.record_response(200);
        ChunkedWriter::start(&mut routed.bytes, &head, keep_alive)
            .expect("buffer writes are infallible");
        encode_chunk_end(&mut routed.bytes);
        return routed;
    }

    // The first chunk is drawn before the response head goes out, so a reseed
    // refusal surfaces as a clean 503 instead of a truncated 200.
    let first = (state.chunk_bytes as u64).min(bytes) as usize;
    let mut buffer = vec![0u8; first];
    if let Err(error) = expanded.draw(&mut buffer) {
        return drbg_refusal(state, &error, keep_alive);
    }
    state.metrics.record_response(200);
    routed.bytes.reserve(first + 128);
    ChunkedWriter::start(&mut routed.bytes, &head, keep_alive)
        .expect("buffer writes are infallible");
    encode_chunk(&mut routed.bytes, &buffer);
    state.metrics.record_bytes_served(first as u64);
    let remaining = bytes - first as u64;
    if remaining == 0 {
        encode_chunk_end(&mut routed.bytes);
    } else {
        routed.stream = Some(StreamBody {
            tier: StreamTier::Random,
            remaining,
        });
    }
    routed
}

/// The canonical 503 deficit refusal shared by the serving tiers: the accounted
/// ledger as body and `X-PTRNG-Ledger` header, plus retry advice.
fn deficit_refusal(
    state: &SharedState,
    ledger: &EntropyLedger,
    accounted: f64,
    required: f64,
    keep_alive: bool,
    head_only: bool,
) -> Routed {
    let body = deficit_body(ledger, accounted, required);
    let head = ResponseHead::new(503)
        .header("Content-Type", "application/json")
        .header("Retry-After", format!("{DEFICIT_RETRY_AFTER_SECS}"))
        .header("X-PTRNG-Ledger", ledger.to_json());
    finish(state, &head, body.as_bytes(), keep_alive, head_only)
}

fn deficit_body(ledger: &EntropyLedger, accounted: f64, required: f64) -> String {
    format!(
        "{{\"error\":\"entropy deficit\",\"accounted\":{accounted},\
         \"required\":{required},\"ledger\":{}}}",
        ledger.to_json()
    )
}

/// Renders the `/random` refusal for a draw that failed before the response
/// head was committed: entropy deficits carry the canonical ledger body.
fn drbg_refusal(
    state: &SharedState,
    error: &ptrng_engine::EngineError,
    keep_alive: bool,
) -> Routed {
    if let EngineError::EntropyDeficit {
        accounted,
        required,
        ledger,
        ..
    } = error
    {
        return deficit_refusal(state, ledger, *accounted, *required, keep_alive, false);
    }
    let body = error_body("drbg tier unavailable", &error.to_string());
    json_routed(state, 503, &body, keep_alive, false)
}

fn healthz(state: &SharedState, keep_alive: bool, head_only: bool) -> Routed {
    let (body, status) = match &state.supply {
        Supply::Serving(tap) => {
            let alarm_reasons = tap.alarms();
            let live_shards = tap.live_shards();
            let snapshot = tap.metrics_snapshot();
            let terminal_alarms = alarm_reasons
                .iter()
                .filter(|alarm| alarm.kind.is_terminal())
                .count();
            let children_degraded = snapshot
                .pool_children
                .iter()
                .any(|child| child.status.state != "serving");
            let status_text = if live_shards == 0 {
                "alarmed"
            } else if terminal_alarms > 0 || children_degraded {
                "degraded"
            } else {
                "ok"
            };
            let body = HealthzBody {
                status: status_text.to_string(),
                shards: state.shards,
                live_shards,
                alarms: alarm_reasons.len(),
                alarm_reasons,
                min_entropy_per_bit: tap.min_entropy_per_bit(),
                required_min_entropy: None,
                pool_children: snapshot.pool_children,
                postmortems: tap.observatory().postmortems().snapshot(),
            };
            (body, if live_shards == 0 { 503 } else { 200 })
        }
        Supply::Refusing {
            ledger,
            accounted: _,
            required,
        } => {
            let body = HealthzBody {
                status: "refusing".to_string(),
                shards: state.shards,
                live_shards: 0,
                alarms: 0,
                alarm_reasons: Vec::new(),
                min_entropy_per_bit: ledger.min_entropy_per_bit(),
                required_min_entropy: Some(*required),
                pool_children: Vec::new(),
                postmortems: Vec::new(),
            };
            (body, 503)
        }
    };
    let text = serde_json::to_string(&body).expect("healthz body serializes");
    json_routed(state, status, &text, keep_alive, head_only)
}

fn metrics(state: &SharedState, keep_alive: bool, head_only: bool) -> Routed {
    let (snapshot, h, live, serving) = match &state.supply {
        Supply::Serving(tap) => (
            tap.metrics_snapshot(),
            tap.min_entropy_per_bit(),
            tap.live_shards(),
            true,
        ),
        Supply::Refusing { ledger, .. } => (
            empty_snapshot(state.shards),
            ledger.min_entropy_per_bit(),
            0,
            false,
        ),
    };
    let mut enc = TextEncoder::new();
    render_prometheus_into(&mut enc, &snapshot, &state.metrics, h, live, serving);
    if let Some(expanded) = &state.expanded {
        let drbg = expanded.snapshot();
        enc.scalar(
            "ptrng_drbg_generates_total",
            "Completed Hash_DRBG generate calls on the /random tier.",
            MetricKind::Counter,
            drbg.generates,
        );
        enc.scalar(
            "ptrng_drbg_reseeds_total",
            "Ledger-funded DRBG (re)seeds, the instantiation included.",
            MetricKind::Counter,
            drbg.reseeds,
        );
        enc.scalar(
            "ptrng_drbg_bytes_total",
            "DRBG-expanded output bytes produced by the /random tier.",
            MetricKind::Counter,
            drbg.bytes_total,
        );
        enc.scalar(
            "ptrng_drbg_bytes_since_reseed",
            "DRBG output bytes emitted on the current seed (resets on reseed).",
            MetricKind::Gauge,
            drbg.bytes_since_reseed,
        );
        enc.scalar(
            "ptrng_drbg_seed_bits_debited_total",
            "Accounted min-entropy bits debited from the ledger for DRBG seeds.",
            MetricKind::Counter,
            drbg.seed_bits_debited,
        );
    }
    if let Some(obs) = &state.obs {
        obs.render_histograms(&mut enc);
    }
    enc.histogram(
        "ptrng_http_request_seconds",
        "End-to-end HTTP request service time (parse to last byte written).",
        &[],
        &state.http_probe.histogram().snapshot(),
        &DEFAULT_TIME_BOUNDS_NS,
    );
    let text = enc.finish();
    let head = ResponseHead::new(200).header("Content-Type", "text/plain; version=0.0.4");
    finish(state, &head, text.as_bytes(), keep_alive, head_only)
}

fn empty_snapshot(shards: usize) -> ptrng_engine::metrics::MetricsSnapshot {
    ptrng_engine::metrics::MetricsSnapshot {
        total_raw_bits: 0,
        total_output_bytes: 0,
        total_batches: 0,
        total_accounted_entropy_bits: 0.0,
        alarms: 0,
        audits: Vec::new(),
        pool_children: Vec::new(),
        per_shard: (0..shards)
            .map(|shard| ptrng_engine::metrics::ShardSnapshot {
                shard,
                raw_bits: 0,
                output_bytes: 0,
                batches: 0,
                entropy_per_output_bit: 0.0,
                accounted_entropy_bits: 0.0,
            })
            .collect(),
    }
}

fn error_body(error: &str, detail: &str) -> String {
    serde_json::to_string(&ErrorBody {
        error: error.to_string(),
        detail: detail.to_string(),
    })
    .expect("error body serializes")
}

#[derive(Debug, Serialize)]
struct ErrorBody {
    error: String,
    detail: String,
}

/// The uniform 429: `Retry-After` advice and — deliberately — **keep-alive**, so
/// a rate-limited client retries on the same socket instead of paying a
/// reconnect (the event loop honors the status actually written; all four
/// rate-limited endpoints share this path, so the header and the loop's behavior
/// cannot diverge).
fn rate_limited(state: &SharedState, budget: &str, retry_secs: f64, keep_alive: bool) -> Routed {
    let body = error_body(
        "rate limited",
        &format!("client {budget} budget exhausted; retry in {retry_secs:.1}s"),
    );
    let head = ResponseHead::new(429)
        .header("Content-Type", "application/json")
        .header("Retry-After", format!("{}", retry_secs.ceil() as u64));
    finish(state, &head, body.as_bytes(), keep_alive, false)
}

/// Renders a complete `Content-Length` response into a [`Routed`], counting it
/// in the metrics.
fn finish(
    state: &SharedState,
    head: &ResponseHead,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> Routed {
    state.metrics.record_response(head.status);
    let mut bytes = Vec::with_capacity(body.len() + 256);
    write_response(&mut bytes, head, body, keep_alive, head_only)
        .expect("buffer writes are infallible");
    Routed {
        bytes,
        status: head.status,
        keep_alive,
        stream: None,
    }
}

fn json_routed(
    state: &SharedState,
    status: u16,
    body: &str,
    keep_alive: bool,
    head_only: bool,
) -> Routed {
    let head = ResponseHead::new(status).header("Content-Type", "application/json");
    finish(state, &head, body.as_bytes(), keep_alive, head_only)
}
