//! The entropy server: accept loop, worker thread pool, routing and the endpoint
//! handlers.
//!
//! # Architecture
//!
//! ```text
//!                    ┌────────────────────────────── Server ───────────────────────────┐
//!  SIGTERM ──────▶   │ accept loop (non-blocking poll)                                 │
//!  (flag)            │      │ bounded sync_channel<TcpStream>                          │
//!                    │      ▼                                                          │
//!                    │ worker pool (N threads) ── Request parse ── route ── respond    │
//!                    │      │                                               │          │
//!                    │      └── /entropy draws from ──▶ EntropyTap ◀────────┘          │
//!                    │                                  (engine shards, bounded        │
//!                    │                                   channel backpressure)         │
//!                    └─────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Backpressure, end to end** — request handlers draw from the engine's bounded
//!   channels through the [`EntropyTap`]; when clients stop reading, TCP pushes back
//!   on the chunked writer, the tap stops draining, and the shard workers park on
//!   their full queue.  Nothing buffers unboundedly anywhere on the path.
//! * **Entropy policy is the contract** — the accounted ledger travels in the
//!   `X-PTRNG-MinEntropy` / `X-PTRNG-Ledger` response headers; a configuration whose
//!   accounted entropy misses `min_output_entropy` starts in *refusing* mode and
//!   answers `/entropy` with HTTP 503 and the ledger JSON as the body, exactly the
//!   refusal `ptrngd` expresses with exit code 2.
//! * **Graceful shutdown** — SIGTERM (or [`ShutdownHandle::shutdown`]) stops the
//!   accept loop; queued connections are still served, in-flight responses complete,
//!   worker threads are joined, and the engine is drained deterministically.

use std::io::{BufReader, BufWriter, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ptrng_ais::estimators::MIN_BATTERY_BITS;
use ptrng_engine::audit::{AuditConfig, EntropyAudit, DEFAULT_AUDIT_WINDOW_BITS};
use ptrng_engine::expanded::{DrbgPolicy, ExpandedTap};
use ptrng_engine::metrics::ShardAlarm;
use ptrng_engine::observatory::Observatory;
use ptrng_engine::pool::{Engine, EngineConfig};
use ptrng_engine::tap::EntropyTap;
use ptrng_engine::EngineError;
use ptrng_obs::probe::elapsed_ns;
use ptrng_obs::{
    Event, EventKind, FlightRecorder, Journal, LogLinearHistogram, MetricKind, ObsClock,
    Postmortem, Probe, TextEncoder, DEFAULT_TIME_BOUNDS_NS,
};
use ptrng_trng::conditioning::EntropyLedger;
use serde::{Serialize, Value};

use crate::http::{write_response, ChunkedWriter, HttpError, Request, ResponseHead};
use crate::limiter::RateLimiter;
use crate::metrics::{render_prometheus_into, ServerMetrics};
use crate::{Result, ServeError};

/// Interval at which the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// `Retry-After` advice on the 503 entropy-deficit refusal: the deficit is a
/// configuration property, so it will not clear on its own — but an operator
/// redeploying with a fixed accounting is plausible on this horizon, and the
/// header keeps well-behaved clients from hot-polling a refusing server.
const DEFICIT_RETRY_AFTER_SECS: u64 = 30;

/// Per-client token-bucket parameters (see [`crate::limiter::RateLimiter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained entropy budget per client, in bytes per second.
    pub bytes_per_sec: u64,
    /// Burst capacity per client, in bytes.
    pub burst_bytes: u64,
}

/// Configuration of the HTTP entropy server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 binds an ephemeral port).
    pub listen: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Hard cap on the `bytes` parameter of one `/entropy` request.
    pub max_request_bytes: u64,
    /// Optional per-client rate limit; `None` serves every request.
    pub rate_limit: Option<RateLimit>,
    /// Draw/write granularity of streamed entropy responses.
    pub chunk_bytes: usize,
    /// Requests served per connection before it is closed.
    pub keep_alive_requests: usize,
    /// Socket read timeout (bounds how long an idle keep-alive connection may pin a
    /// worker).
    pub read_timeout: Duration,
    /// The engine configuration to serve from (its `budget_bytes` should be `None`:
    /// a serving engine runs until shutdown).
    pub engine: EngineConfig,
    /// Optional JSONL journal sink (`--journal <path>`): the engine appends alarm
    /// postmortems to it as they are captured.
    pub journal: Option<Arc<Journal>>,
    /// Enables the `/random` DRBG expansion tier with this reseed policy
    /// (`--drbg`); `None` leaves the tier disabled and `/random` answers 404.
    pub drbg: Option<DrbgPolicy>,
}

impl ServeConfig {
    /// Defaults for the given engine: `127.0.0.1:7878`, 4 workers, 4 MiB request
    /// cap, no rate limit, 64 KiB chunks, 64 requests per connection, 5 s read
    /// timeout.
    pub fn new(engine: EngineConfig) -> Self {
        Self {
            listen: "127.0.0.1:7878".to_string(),
            threads: 4,
            max_request_bytes: 4 << 20,
            rate_limit: None,
            chunk_bytes: 64 << 10,
            keep_alive_requests: 64,
            read_timeout: Duration::from_secs(5),
            engine,
            journal: None,
            drbg: None,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(ServeError::Config("threads must be at least 1".into()));
        }
        if self.chunk_bytes == 0 {
            return Err(ServeError::Config("chunk_bytes must be at least 1".into()));
        }
        if self.keep_alive_requests == 0 {
            return Err(ServeError::Config(
                "keep_alive_requests must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// What the server is serving from: a live tap, or a refusal captured at spawn.
enum Supply {
    /// The engine spawned and its accounted entropy satisfies the policy.
    Serving(EntropyTap),
    /// The engine refused to spawn with [`EngineError::EntropyDeficit`]; `/entropy`
    /// answers 503 with this accounting.
    Refusing {
        ledger: EntropyLedger,
        accounted: f64,
        required: f64,
    },
}

struct SharedState {
    supply: Supply,
    /// The `/random` expansion tier (`None`: disabled by config or refusing).
    expanded: Option<Arc<ExpandedTap>>,
    limiter: Option<RateLimiter>,
    /// Separate token bucket for the `/random` tier: expanded bytes are cheap,
    /// so a `/random` consumer must not drain the full-entropy budget of
    /// `/entropy` clients behind the same IP (and vice versa).
    drbg_limiter: Option<RateLimiter>,
    metrics: ServerMetrics,
    shutdown: Arc<AtomicBool>,
    max_request_bytes: u64,
    chunk_bytes: usize,
    keep_alive_requests: usize,
    read_timeout: Duration,
    shards: usize,
    /// The engine's observability surface (`None` in refusing mode — no engine ran).
    obs: Option<Arc<Observatory>>,
    /// HTTP-layer flight recorder, on the engine's clock when one is running.
    http_recorder: Arc<FlightRecorder>,
    /// Request-latency histogram + recorder binding for `HttpRequest` events.
    http_probe: Probe,
}

/// Cooperative shutdown trigger for a running [`Server`] (the programmatic
/// equivalent of SIGTERM; cloneable and safe to fire from any thread).
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown: the accept loop stops, queued and in-flight requests are
    /// drained, then [`Server::serve`] returns.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Process-wide flag set by the signal handler (SIGTERM/SIGINT).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod signals {
    //! Minimal hand-rolled signal hookup: the container has no `libc`/`signal-hook`
    //! crate, and `std` exposes no signal API, so the two `signal(2)` registrations
    //! are declared directly.  The handler only performs an atomic store, which is
    //! async-signal-safe.
    #![allow(unsafe_code)]

    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn on_signal(_signum: c_int) {
        super::SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `signal(2)` with a handler that is async-signal-safe (a single
        // atomic store, no allocation, no locks); replacing the default disposition
        // of SIGTERM/SIGINT is the entire point.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// A bound entropy server, ready to [`Server::serve`].
pub struct Server {
    listener: TcpListener,
    state: Arc<SharedState>,
    threads: usize,
}

impl Server {
    /// Spawns the engine and binds the listener.
    ///
    /// An [`EngineError::EntropyDeficit`] at spawn does **not** fail the bind: the
    /// server starts in *refusing* mode, answering `/entropy` with HTTP 503 and the
    /// accounted ledger, and `/healthz` with `"refusing"` — an operator can then
    /// inspect the accounting over the wire instead of a dead port.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations, non-deficit engine spawn
    /// failures, and bind failures.
    pub fn bind(config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let shards = config.engine.shards;
        let supply = match Engine::spawn_with_journal(config.engine.clone(), config.journal.clone())
        {
            Ok(engine) => Supply::Serving(engine.into_tap()),
            Err(EngineError::EntropyDeficit {
                ledger,
                accounted,
                required,
                ..
            }) => Supply::Refusing {
                ledger: *ledger,
                accounted,
                required,
            },
            Err(other) => return Err(other.into()),
        };
        let expanded = match (&supply, config.drbg) {
            (Supply::Serving(tap), Some(policy)) => {
                Some(Arc::new(ExpandedTap::new(tap.clone(), policy)?))
            }
            _ => None,
        };
        let build_limiter = || match config.rate_limit {
            Some(limit) => Ok(Some(
                RateLimiter::new(limit.bytes_per_sec, limit.burst_bytes)
                    .map_err(ServeError::Config)?,
            )),
            None => Ok::<_, ServeError>(None),
        };
        let limiter = build_limiter()?;
        let drbg_limiter = if expanded.is_some() {
            build_limiter()?
        } else {
            None
        };
        // The HTTP flight recorder shares the engine's clock when one is running so
        // request events interleave with shard events on /debug/trace; in refusing
        // mode there is no engine and the HTTP layer gets its own epoch.
        let obs = match &supply {
            Supply::Serving(tap) => Some(Arc::clone(tap.observatory())),
            Supply::Refusing { .. } => None,
        };
        let clock = obs.as_ref().map_or_else(ObsClock::new, |obs| obs.clock());
        let http_recorder = Arc::new(FlightRecorder::new(
            clock,
            config.engine.obs.ring_events.max(1),
            config.engine.obs.recorder,
        ));
        let http_probe = Probe::new(Arc::new(LogLinearHistogram::new()), EventKind::HttpRequest)
            .with_recorder(Arc::clone(&http_recorder), None);
        let listener = TcpListener::bind(&config.listen)?;
        Ok(Self {
            listener,
            state: Arc::new(SharedState {
                supply,
                expanded,
                limiter,
                drbg_limiter,
                metrics: ServerMetrics::new(),
                shutdown: Arc::new(AtomicBool::new(false)),
                max_request_bytes: config.max_request_bytes,
                chunk_bytes: config.chunk_bytes,
                keep_alive_requests: config.keep_alive_requests,
                read_timeout: config.read_timeout,
                shards,
                obs,
                http_recorder,
                http_probe,
            }),
            threads: config.threads,
        })
    }

    /// The end-to-end request-latency histogram, fed by every served request.
    ///
    /// Cloning the `Arc` before [`Server::serve`] consumes the server lets a
    /// harness query p50/p99 (via [`ptrng_obs::HistogramSnapshot::quantile`]) after the
    /// serving thread has drained.
    pub fn request_latency(&self) -> Arc<LogLinearHistogram> {
        Arc::clone(self.state.http_probe.histogram())
    }

    /// The bound socket address (resolves port 0 binds).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Whether the server is serving entropy (vs. refusing on a deficit).
    pub fn is_serving(&self) -> bool {
        matches!(self.state.supply, Supply::Serving(_))
    }

    /// A cloneable trigger that ends [`Server::serve`] gracefully.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.state.shutdown))
    }

    /// Registers SIGTERM/SIGINT handlers that trigger the same graceful shutdown as
    /// [`ShutdownHandle::shutdown`] (no-op on non-Unix targets).
    pub fn install_signal_handlers(&self) {
        #[cfg(unix)]
        signals::install();
    }

    fn shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }

    /// Runs the accept loop until shutdown, then drains: queued connections are
    /// served, workers joined, and the engine shut down.
    ///
    /// # Errors
    ///
    /// Returns an error when the listener fails fatally or an engine worker
    /// panicked during drain.
    pub fn serve(self) -> Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(self.threads * 2);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.threads)
            .map(|index| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("ptrng-serve-{index}"))
                    .spawn(move || loop {
                        let conn = rx.lock().expect("queue lock poisoned").recv();
                        match conn {
                            Ok(stream) => handle_connection(&state, stream),
                            Err(_) => break,
                        }
                    })
                    .expect("worker thread spawns")
            })
            .collect();

        while !self.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // A full queue applies accept backpressure here (bounded send).
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }

        // Drain: close the queue (workers finish what is queued and in flight, then
        // exit), join them, then wind the engine down.
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(expanded) = &self.state.expanded {
            // Zeroizes the DRBG working state; the tap shutdown underneath is
            // idempotent with the one below (clones share the engine).
            expanded.shutdown()?;
        }
        if let Supply::Serving(tap) = &self.state.supply {
            tap.shutdown()?;
        }
        Ok(())
    }
}

/// `/healthz` response body.
#[derive(Debug, Serialize)]
struct HealthzBody {
    /// `ok`, `degraded` (a terminal alarm with live shards remaining, or a pool
    /// child currently out of serving), `alarmed` (no live shards), or
    /// `refusing` (entropy deficit at spawn).  Non-terminal history (a pool
    /// child that quarantined and was since reinstated) does not stick: status
    /// reflects the current state, the alarm trail keeps the history.
    status: String,
    shards: usize,
    live_shards: usize,
    alarms: usize,
    alarm_reasons: Vec<ShardAlarm>,
    /// The currently accounted min-entropy per output bit (tracks pool
    /// quarantine; equals the static ledger claim for simple sources).
    min_entropy_per_bit: f64,
    required_min_entropy: Option<f64>,
    /// Per-child lifecycle of pool sources, one entry per (shard, child); empty
    /// for simple sources.
    pool_children: Vec<ptrng_engine::metrics::PoolChildSnapshot>,
    /// Recent alarm postmortems (bounded store, oldest first): the alarming
    /// shard's flight-recorder events plus the ledger in force at alarm time.
    postmortems: Vec<Postmortem>,
}

thread_local! {
    /// Status of the response most recently written by this worker thread, read
    /// back after `route` to stamp the request's `HttpRequest` flight-recorder
    /// event (every response funnels through [`note_status`] on the same thread).
    static LAST_STATUS: std::cell::Cell<u16> = const { std::cell::Cell::new(0) };
}

/// Counts the response in the metrics and remembers its status for the
/// flight-recorder event of the enclosing request.
fn note_status(state: &SharedState, status: u16) {
    state.metrics.record_response(status);
    LAST_STATUS.with(|cell| cell.set(status));
}

fn handle_connection(state: &SharedState, stream: TcpStream) {
    let peer_ip = stream
        .peer_addr()
        .map(|addr| addr.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED));
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::with_capacity(64 << 10, stream);

    for served in 1..=state.keep_alive_requests {
        let request = match Request::read_from(&mut reader) {
            Ok(Some(request)) => request,
            // Clean EOF between requests: the client is done.
            Ok(None) => break,
            // Timeouts and resets mid-request head: nothing sane to answer.
            Err(HttpError::Io(_) | HttpError::UnexpectedEof) => break,
            Err(error @ (HttpError::Malformed(_) | HttpError::TooLarge(_))) => {
                let body = error_body("bad request", &error.to_string());
                let _ = respond_json(state, &mut writer, 400, &body, false, false);
                break;
            }
        };
        state.metrics.record_request();
        let keep_alive = !request.wants_close()
            && served < state.keep_alive_requests
            && !state.shutdown.load(Ordering::SeqCst)
            && !SIGNALLED.load(Ordering::SeqCst);
        LAST_STATUS.with(|cell| cell.set(0));
        let start = Instant::now();
        let outcome = route(state, &mut writer, &request, peer_ip, keep_alive);
        let status = LAST_STATUS.with(std::cell::Cell::get);
        state
            .http_probe
            .record_tagged(elapsed_ns(start), u64::from(status));
        if outcome.is_err() || !keep_alive {
            break;
        }
    }
}

fn route(
    state: &SharedState,
    writer: &mut impl Write,
    request: &Request,
    peer_ip: IpAddr,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head_only = request.method == "HEAD";
    if request.method != "GET" && !head_only {
        let body = error_body("method not allowed", "only GET and HEAD are supported");
        return respond_json(state, writer, 405, &body, keep_alive, false);
    }
    match request.path.as_str() {
        "/entropy" => entropy(state, writer, request, peer_ip, keep_alive, head_only),
        "/random" => random(state, writer, request, peer_ip, keep_alive, head_only),
        "/healthz" => healthz(state, writer, keep_alive, head_only),
        "/metrics" => metrics(state, writer, keep_alive, head_only),
        "/selftest" => selftest(state, writer, request, peer_ip, keep_alive, head_only),
        "/debug/trace" => debug_trace(state, writer, peer_ip, keep_alive, head_only),
        _ => {
            let body = error_body(
                "not found",
                "endpoints: /entropy?bytes=N, /random?bytes=N, /healthz, /metrics, /selftest, \
                 /debug/trace",
            );
            respond_json(state, writer, 404, &body, keep_alive, head_only)
        }
    }
}

/// Nominal rate-limit cost of one `/debug/trace` dump, in bytes.  The trace draws
/// no entropy, but rendering the full event timeline is not free either, so it is
/// charged like a small draw to keep an unauthenticated polling loop from spinning.
const TRACE_COST_BYTES: u64 = 4096;

/// `GET /debug/trace` — the flight-recorder timeline and alarm postmortems as
/// JSONL: one `{"record":"event",…}` line per flight-recorder event (shards, tap
/// and HTTP layer merged in time order) followed by one
/// `{"record":"postmortem",…}` line per retained alarm postmortem.
fn debug_trace(
    state: &SharedState,
    writer: &mut impl Write,
    peer_ip: IpAddr,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    if let Some(limiter) = &state.limiter {
        if let Err(retry_secs) = limiter.try_acquire(peer_ip, TRACE_COST_BYTES, Instant::now()) {
            let body = error_body(
                "rate limited",
                &format!("client entropy budget exhausted; retry in {retry_secs:.1}s"),
            );
            let head = ResponseHead::new(429)
                .header("Content-Type", "application/json")
                .header("Retry-After", format!("{}", retry_secs.ceil() as u64));
            note_status(state, 429);
            return write_response(writer, &head, body.as_bytes(), keep_alive, head_only);
        }
    }
    let mut events: Vec<Event> = state
        .obs
        .as_ref()
        .map(|obs| obs.events())
        .unwrap_or_default();
    events.extend(state.http_recorder.snapshot());
    events.sort_by_key(|event| event.t_ns);
    let mut body = String::with_capacity(events.len() * 96);
    for event in &events {
        if let Some(line) = jsonl_record("event", event) {
            body.push_str(&line);
            body.push('\n');
        }
    }
    let postmortems = state
        .obs
        .as_ref()
        .map(|obs| obs.postmortems().snapshot())
        .unwrap_or_default();
    for postmortem in &postmortems {
        if let Some(line) = jsonl_record("postmortem", postmortem) {
            body.push_str(&line);
            body.push('\n');
        }
    }
    let head = ResponseHead::new(200).header("Content-Type", "application/x-ndjson");
    note_status(state, 200);
    write_response(writer, &head, body.as_bytes(), keep_alive, head_only)
}

/// Serializes `data` as one JSON object with a leading `"record":"<kind>"` field.
fn jsonl_record(kind: &str, data: &impl Serialize) -> Option<String> {
    let Value::Object(mut fields) = data.to_value() else {
        return None;
    };
    fields.insert(0, ("record".to_string(), Value::Str(kind.to_string())));
    serde_json::to_string(&Value::Object(fields)).ok()
}

/// Hard cap on one `/selftest` window (the battery is CPU-bound; a hostile client
/// must not be able to pin a worker for minutes).
const SELFTEST_MAX_BITS: usize = 1 << 20;

/// `GET /selftest[?bits=N&claim=H&margin=M]` — draws one window of conditioned
/// output from the engine, runs the SP 800-90B §6.3 estimator battery over it and
/// compares the assessment against the ledger claim (or an asserted `claim`).
///
/// Answers 200 with the audit report when the claim holds, 503 with the same body
/// on an overclaim (and in refusing mode, mirroring `/entropy`).  Note the drawn
/// window **consumes** real entropy output — the self-test competes with clients by
/// design, since auditing a stream other than the served one would prove nothing —
/// and is therefore charged against the caller's rate-limit budget like any other
/// entropy draw (the battery is also CPU-bound, so an unmetered loop would starve
/// both the entropy supply and the worker pool).
fn selftest(
    state: &SharedState,
    writer: &mut impl Write,
    request: &Request,
    peer_ip: IpAddr,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    let tap = match &state.supply {
        Supply::Serving(tap) => tap,
        Supply::Refusing {
            ledger,
            accounted,
            required,
        } => {
            let body = format!(
                "{{\"error\":\"entropy deficit\",\"accounted\":{accounted},\
                 \"required\":{required},\"ledger\":{}}}",
                ledger.to_json()
            );
            return respond_json(state, writer, 503, &body, keep_alive, head_only);
        }
    };
    let parse_f64 = |name: &str| -> std::result::Result<Option<f64>, String> {
        match request.query_param(name).map(str::parse::<f64>) {
            None => Ok(None),
            Some(Ok(value)) => Ok(Some(value)),
            Some(Err(_)) => Err(format!("`{name}` must be a number")),
        }
    };
    let bits = match request.query_param("bits").map(str::parse::<usize>) {
        None => DEFAULT_AUDIT_WINDOW_BITS,
        Some(Ok(bits)) if (MIN_BATTERY_BITS..=SELFTEST_MAX_BITS).contains(&bits) => bits,
        Some(_) => {
            let body = error_body(
                "bad request",
                &format!("`bits` must be in {MIN_BATTERY_BITS}..={SELFTEST_MAX_BITS}"),
            );
            return respond_json(state, writer, 400, &body, keep_alive, head_only);
        }
    };
    let (claim, margin) = match (parse_f64("claim"), parse_f64("margin")) {
        (Ok(claim), Ok(margin)) => (claim, margin),
        (Err(detail), _) | (_, Err(detail)) => {
            let body = error_body("bad request", &detail);
            return respond_json(state, writer, 400, &body, keep_alive, head_only);
        }
    };

    let ledger = tap.ledger();
    let mut config = AuditConfig::default().window_bits(bits).claim(claim);
    if let Some(margin) = margin {
        config = config.margin(margin);
    }
    let mut audit = match EntropyAudit::new("conditioned", ledger.min_entropy_per_bit(), config) {
        Ok(audit) => audit,
        Err(error) => {
            let body = error_body("bad request", &error.to_string());
            return respond_json(state, writer, 400, &body, keep_alive, head_only);
        }
    };
    if let Some(limiter) = &state.limiter {
        if let Err(retry_secs) =
            limiter.try_acquire(peer_ip, bits.div_ceil(8) as u64, Instant::now())
        {
            let body = error_body(
                "rate limited",
                &format!("client entropy budget exhausted; retry in {retry_secs:.1}s"),
            );
            let head = ResponseHead::new(429)
                .header("Content-Type", "application/json")
                .header("Retry-After", format!("{}", retry_secs.ceil() as u64));
            note_status(state, 429);
            return write_response(writer, &head, body.as_bytes(), keep_alive, head_only);
        }
    }
    let mut window = vec![0u8; bits.div_ceil(8)];
    if tap.draw(&mut window) < window.len() {
        let body = error_body(
            "selftest unavailable",
            "the entropy stream ended before one audit window filled",
        );
        return respond_json(state, writer, 503, &body, keep_alive, head_only);
    }
    let fed = audit.observe_bytes(&window).map(|_| ());
    let outcome = match fed {
        Ok(()) => audit.finalize().map(|_| ()),
        Err(error) => Err(error),
    };
    if let Err(error) = outcome {
        let body = error_body("selftest failed", &error.to_string());
        return respond_json(state, writer, 500, &body, keep_alive, head_only);
    }
    let overclaim = audit.overclaimed();
    state.metrics.record_selftest(overclaim);
    let report = audit.report();
    // Per-estimator wall-clock cost of this window's battery, lifted to the top
    // level so operators sizing `bits` do not have to dig through the report.
    let timings = report
        .latest
        .as_ref()
        .map(|window| window.timings.clone())
        .unwrap_or_default();
    let timings_json = serde_json::to_string(&timings).expect("timings serialize");
    let report = serde_json::to_string(&report).expect("audit report serializes");
    let body = format!(
        "{{\"overclaim\":{overclaim},\"estimator_timings\":{timings_json},\
         \"audit\":{report},\"ledger\":{}}}",
        ledger.to_json()
    );
    let status = if overclaim { 503 } else { 200 };
    respond_json(state, writer, status, &body, keep_alive, head_only)
}

/// Parses and bounds the `bytes` query parameter shared by the two entropy
/// tiers; `Err(())` means the refusal response has already been written.
fn parse_bytes_param(
    state: &SharedState,
    writer: &mut impl Write,
    request: &Request,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<std::result::Result<u64, ()>> {
    let bytes = match request.query_param("bytes").map(str::parse::<u64>) {
        Some(Ok(bytes)) => bytes,
        Some(Err(_)) => {
            let body = error_body("bad request", "`bytes` must be a non-negative integer");
            respond_json(state, writer, 400, &body, keep_alive, head_only)?;
            return Ok(Err(()));
        }
        None => {
            let body = error_body("bad request", "missing `bytes` query parameter");
            respond_json(state, writer, 400, &body, keep_alive, head_only)?;
            return Ok(Err(()));
        }
    };
    if bytes > state.max_request_bytes {
        let body = error_body(
            "request too large",
            &format!(
                "`bytes` is capped at {} per request (asked for {bytes})",
                state.max_request_bytes
            ),
        );
        respond_json(state, writer, 413, &body, keep_alive, head_only)?;
        return Ok(Err(()));
    }
    Ok(Ok(bytes))
}

fn entropy(
    state: &SharedState,
    writer: &mut impl Write,
    request: &Request,
    peer_ip: IpAddr,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    let Ok(bytes) = parse_bytes_param(state, writer, request, keep_alive, head_only)? else {
        return Ok(());
    };

    let tap = match &state.supply {
        Supply::Serving(tap) => tap,
        Supply::Refusing {
            ledger,
            accounted,
            required,
        } => {
            // The refusal is the ledger: the canonical JSON form *is* the body.
            let body = format!(
                "{{\"error\":\"entropy deficit\",\"accounted\":{accounted},\
                 \"required\":{required},\"ledger\":{}}}",
                ledger.to_json()
            );
            let head = ResponseHead::new(503)
                .header("Content-Type", "application/json")
                .header("Retry-After", format!("{DEFICIT_RETRY_AFTER_SECS}"))
                .header("X-PTRNG-Ledger", ledger.to_json());
            note_status(state, 503);
            return write_response(writer, &head, body.as_bytes(), keep_alive, head_only);
        }
    };

    // `X-PTRNG-MinEntropy` carries the *currently accounted* claim — for a pool
    // with a quarantined child this is the honestly reduced survivors-only
    // credit, not the spawn-time figure.  `X-PTRNG-Ledger` stays the static
    // accounting trail (the provenance document, not the live state).
    let ledger = tap.ledger();
    let head = ResponseHead::new(200)
        .header("Content-Type", "application/octet-stream")
        .header("X-PTRNG-Tier", "full-entropy")
        .header(
            "X-PTRNG-MinEntropy",
            format!("{:.6}", tap.min_entropy_per_bit()),
        )
        .header("X-PTRNG-Ledger", ledger.to_json());
    // HEAD serves only the contract headers and draws nothing, so it is answered
    // before the limiter: a probe must not spend the client's entropy budget.
    if head_only {
        note_status(state, 200);
        return write_response(writer, &head, b"", keep_alive, true);
    }

    if let Some(limiter) = &state.limiter {
        if let Err(retry_secs) = limiter.try_acquire(peer_ip, bytes, Instant::now()) {
            let body = error_body(
                "rate limited",
                &format!("client entropy budget exhausted; retry in {retry_secs:.1}s"),
            );
            let head = ResponseHead::new(429)
                .header("Content-Type", "application/json")
                .header("Retry-After", format!("{}", retry_secs.ceil() as u64));
            note_status(state, 429);
            return write_response(writer, &head, body.as_bytes(), keep_alive, false);
        }
    }

    note_status(state, 200);
    let mut chunked = ChunkedWriter::start(writer, &head, keep_alive)?;
    let mut buffer = vec![0u8; state.chunk_bytes.min(bytes.max(1) as usize)];
    let mut remaining = bytes as usize;
    while remaining > 0 {
        let want = remaining.min(buffer.len());
        let drawn = tap.draw(&mut buffer[..want]);
        if drawn == 0 {
            // Every shard terminated (alarms): abort without the terminating chunk
            // so the client observes a truncated transfer, never short bytes.
            return Err(std::io::Error::other("entropy stream ended mid-response"));
        }
        chunked.write_chunk(&buffer[..drawn])?;
        state.metrics.record_bytes_served(drawn as u64);
        remaining -= drawn;
    }
    chunked.finish()
}

/// `GET /random?bytes=N` — the DRBG expansion tier: Hash_DRBG output seeded
/// (and policy-reseeded) from ledger-accounted conditioned entropy.
///
/// The tier trades the full-entropy guarantee for throughput: between funded
/// reseeds it keeps serving even while the accounted credit dips (a quarantined
/// pool child), because the bits it emits were funded by a seed that *was*
/// accounted when drawn.  An unfundable **reseed**, however, answers the same
/// canonical 503-with-ledger refusal as `/entropy` — never silently degraded
/// output.  Disabled tiers (no `--drbg`) answer 404.
fn random(
    state: &SharedState,
    writer: &mut impl Write,
    request: &Request,
    peer_ip: IpAddr,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    let Ok(bytes) = parse_bytes_param(state, writer, request, keep_alive, head_only)? else {
        return Ok(());
    };
    if let Supply::Refusing {
        ledger,
        accounted,
        required,
    } = &state.supply
    {
        // No engine ran, so no seed can ever be funded: mirror /entropy.
        let body = format!(
            "{{\"error\":\"entropy deficit\",\"accounted\":{accounted},\
             \"required\":{required},\"ledger\":{}}}",
            ledger.to_json()
        );
        let head = ResponseHead::new(503)
            .header("Content-Type", "application/json")
            .header("Retry-After", format!("{DEFICIT_RETRY_AFTER_SECS}"))
            .header("X-PTRNG-Ledger", ledger.to_json());
        note_status(state, 503);
        return write_response(writer, &head, body.as_bytes(), keep_alive, head_only);
    }
    let Some(expanded) = &state.expanded else {
        let body = error_body(
            "drbg tier disabled",
            "start ptrng-serve with --drbg to enable /random",
        );
        return respond_json(state, writer, 404, &body, keep_alive, head_only);
    };

    let head = ResponseHead::new(200)
        .header("Content-Type", "application/octet-stream")
        .header("X-PTRNG-Tier", "drbg-sha256")
        .header("X-PTRNG-Ledger", expanded.tap().ledger().to_json());
    if head_only {
        note_status(state, 200);
        return write_response(writer, &head, b"", keep_alive, true);
    }

    if let Some(limiter) = &state.drbg_limiter {
        if let Err(retry_secs) = limiter.try_acquire(peer_ip, bytes, Instant::now()) {
            let body = error_body(
                "rate limited",
                &format!("client drbg budget exhausted; retry in {retry_secs:.1}s"),
            );
            let head = ResponseHead::new(429)
                .header("Content-Type", "application/json")
                .header("Retry-After", format!("{}", retry_secs.ceil() as u64));
            note_status(state, 429);
            return write_response(writer, &head, body.as_bytes(), keep_alive, false);
        }
    }

    // The first chunk is drawn before the response head goes out, so a reseed
    // refusal surfaces as a clean 503 instead of a truncated 200.
    let mut buffer = vec![0u8; state.chunk_bytes.min(bytes.max(1) as usize)];
    let mut remaining = bytes as usize;
    let first = remaining.min(buffer.len());
    if let Err(error) = expanded.draw(&mut buffer[..first]) {
        return drbg_refusal(state, writer, &error, keep_alive, head_only);
    }
    note_status(state, 200);
    let mut chunked = ChunkedWriter::start(writer, &head, keep_alive)?;
    chunked.write_chunk(&buffer[..first])?;
    state.metrics.record_bytes_served(first as u64);
    remaining -= first;
    while remaining > 0 {
        let want = remaining.min(buffer.len());
        if expanded.draw(&mut buffer[..want]).is_err() {
            // Mid-stream refusal (a reseed came due and could not be funded):
            // abort without the terminating chunk so the client observes a
            // truncated transfer, never unaccounted bytes.
            return Err(std::io::Error::other("drbg stream refused mid-response"));
        }
        chunked.write_chunk(&buffer[..want])?;
        state.metrics.record_bytes_served(want as u64);
        remaining -= want;
    }
    chunked.finish()
}

/// Writes the `/random` refusal for a draw that failed before the response
/// head was committed: entropy deficits carry the canonical ledger body.
fn drbg_refusal(
    state: &SharedState,
    writer: &mut impl Write,
    error: &ptrng_engine::EngineError,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    if let EngineError::EntropyDeficit {
        accounted,
        required,
        ledger,
        ..
    } = error
    {
        let body = format!(
            "{{\"error\":\"entropy deficit\",\"accounted\":{accounted},\
             \"required\":{required},\"ledger\":{}}}",
            ledger.to_json()
        );
        let head = ResponseHead::new(503)
            .header("Content-Type", "application/json")
            .header("Retry-After", format!("{DEFICIT_RETRY_AFTER_SECS}"))
            .header("X-PTRNG-Ledger", ledger.to_json());
        note_status(state, 503);
        return write_response(writer, &head, body.as_bytes(), keep_alive, head_only);
    }
    let body = error_body("drbg tier unavailable", &error.to_string());
    respond_json(state, writer, 503, &body, keep_alive, head_only)
}

fn healthz(
    state: &SharedState,
    writer: &mut impl Write,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    let (body, status) = match &state.supply {
        Supply::Serving(tap) => {
            let alarm_reasons = tap.alarms();
            let live_shards = tap.live_shards();
            let snapshot = tap.metrics_snapshot();
            let terminal_alarms = alarm_reasons
                .iter()
                .filter(|alarm| alarm.kind.is_terminal())
                .count();
            let children_degraded = snapshot
                .pool_children
                .iter()
                .any(|child| child.status.state != "serving");
            let status_text = if live_shards == 0 {
                "alarmed"
            } else if terminal_alarms > 0 || children_degraded {
                "degraded"
            } else {
                "ok"
            };
            let body = HealthzBody {
                status: status_text.to_string(),
                shards: state.shards,
                live_shards,
                alarms: alarm_reasons.len(),
                alarm_reasons,
                min_entropy_per_bit: tap.min_entropy_per_bit(),
                required_min_entropy: None,
                pool_children: snapshot.pool_children,
                postmortems: tap.observatory().postmortems().snapshot(),
            };
            (body, if live_shards == 0 { 503 } else { 200 })
        }
        Supply::Refusing {
            ledger,
            accounted: _,
            required,
        } => {
            let body = HealthzBody {
                status: "refusing".to_string(),
                shards: state.shards,
                live_shards: 0,
                alarms: 0,
                alarm_reasons: Vec::new(),
                min_entropy_per_bit: ledger.min_entropy_per_bit(),
                required_min_entropy: Some(*required),
                pool_children: Vec::new(),
                postmortems: Vec::new(),
            };
            (body, 503)
        }
    };
    let text = serde_json::to_string(&body).expect("healthz body serializes");
    respond_json(state, writer, status, &text, keep_alive, head_only)
}

fn metrics(
    state: &SharedState,
    writer: &mut impl Write,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    let (snapshot, h, live, serving) = match &state.supply {
        Supply::Serving(tap) => (
            tap.metrics_snapshot(),
            tap.min_entropy_per_bit(),
            tap.live_shards(),
            true,
        ),
        Supply::Refusing { ledger, .. } => (
            empty_snapshot(state.shards),
            ledger.min_entropy_per_bit(),
            0,
            false,
        ),
    };
    let mut enc = TextEncoder::new();
    render_prometheus_into(&mut enc, &snapshot, &state.metrics, h, live, serving);
    if let Some(expanded) = &state.expanded {
        let drbg = expanded.snapshot();
        enc.scalar(
            "ptrng_drbg_generates_total",
            "Completed Hash_DRBG generate calls on the /random tier.",
            MetricKind::Counter,
            drbg.generates,
        );
        enc.scalar(
            "ptrng_drbg_reseeds_total",
            "Ledger-funded DRBG (re)seeds, the instantiation included.",
            MetricKind::Counter,
            drbg.reseeds,
        );
        enc.scalar(
            "ptrng_drbg_bytes_total",
            "DRBG-expanded output bytes produced by the /random tier.",
            MetricKind::Counter,
            drbg.bytes_total,
        );
        enc.scalar(
            "ptrng_drbg_bytes_since_reseed",
            "DRBG output bytes emitted on the current seed (resets on reseed).",
            MetricKind::Gauge,
            drbg.bytes_since_reseed,
        );
        enc.scalar(
            "ptrng_drbg_seed_bits_debited_total",
            "Accounted min-entropy bits debited from the ledger for DRBG seeds.",
            MetricKind::Counter,
            drbg.seed_bits_debited,
        );
    }
    if let Some(obs) = &state.obs {
        obs.render_histograms(&mut enc);
    }
    enc.histogram(
        "ptrng_http_request_seconds",
        "End-to-end HTTP request service time (parse to last byte written).",
        &[],
        &state.http_probe.histogram().snapshot(),
        &DEFAULT_TIME_BOUNDS_NS,
    );
    let text = enc.finish();
    let head = ResponseHead::new(200).header("Content-Type", "text/plain; version=0.0.4");
    note_status(state, 200);
    write_response(writer, &head, text.as_bytes(), keep_alive, head_only)
}

fn empty_snapshot(shards: usize) -> ptrng_engine::metrics::MetricsSnapshot {
    ptrng_engine::metrics::MetricsSnapshot {
        total_raw_bits: 0,
        total_output_bytes: 0,
        total_batches: 0,
        total_accounted_entropy_bits: 0.0,
        alarms: 0,
        audits: Vec::new(),
        pool_children: Vec::new(),
        per_shard: (0..shards)
            .map(|shard| ptrng_engine::metrics::ShardSnapshot {
                shard,
                raw_bits: 0,
                output_bytes: 0,
                batches: 0,
                entropy_per_output_bit: 0.0,
                accounted_entropy_bits: 0.0,
            })
            .collect(),
    }
}

fn error_body(error: &str, detail: &str) -> String {
    serde_json::to_string(&ErrorBody {
        error: error.to_string(),
        detail: detail.to_string(),
    })
    .expect("error body serializes")
}

#[derive(Debug, Serialize)]
struct ErrorBody {
    error: String,
    detail: String,
}

fn respond_json(
    state: &SharedState,
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    let head = ResponseHead::new(status).header("Content-Type", "application/json");
    note_status(state, status);
    write_response(writer, &head, body.as_bytes(), keep_alive, head_only)
}
