//! Concurrency load generation against a running entropy server — the library
//! behind the `ptrng-loadgen` bin and the `serve_concurrency` bench block.
//!
//! Two modes, the two halves of a serving-plane story:
//!
//! * **Closed loop** ([`Mode::Closed`]) — `connections` clients all connect, rendezvous
//!   on a barrier (so the target provably holds that many sockets *simultaneously*),
//!   then each issues `requests_per_conn` keep-alive requests back-to-back.  This
//!   measures the concurrent-connection ceiling and per-request service latency.
//! * **Open loop** ([`Mode::Open`]) — arrivals are scheduled at a fixed rate on the
//!   clock and each gets a fresh connection; latency is measured from the *scheduled*
//!   arrival, not the actual send, so a slow server cannot hide queueing delay by
//!   slowing the generator down (no coordinated omission).
//!
//! The client is a deliberately minimal HTTP/1.1 reader (status line, headers,
//! `Content-Length` or chunked framing) — enough to drive the server it ships with,
//! not a general client.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use ptrng_obs::LogLinearHistogram;

/// What load to offer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Every connection rendezvouses, then issues its requests back-to-back.
    Closed,
    /// Arrivals scheduled at `rate_per_sec` for `duration`, one fresh
    /// connection each, serviced by a pool of `connections` workers.
    Open {
        /// Scheduled arrivals per second.
        rate_per_sec: f64,
        /// How long to keep scheduling arrivals.
        duration: Duration,
    },
}

/// Configuration of one load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target address, e.g. `127.0.0.1:7878`.
    pub target: String,
    /// Request path with query, e.g. `/random?bytes=4096`.
    pub path: String,
    /// Concurrent connections (closed loop) or worker pool size (open loop).
    pub connections: usize,
    /// Keep-alive requests per connection (closed loop; open loop sends one).
    pub requests_per_conn: usize,
    /// Closed or open loop.
    pub mode: Mode,
}

impl LoadgenConfig {
    /// A closed-loop run: `connections` simultaneous clients, `requests_per_conn`
    /// keep-alive requests each.
    pub fn closed(target: impl Into<String>, path: impl Into<String>, connections: usize) -> Self {
        Self {
            target: target.into(),
            path: path.into(),
            connections,
            requests_per_conn: 2,
            mode: Mode::Closed,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections asked for (closed loop) / workers (open loop).
    pub connections: usize,
    /// Connections that connected and reached the rendezvous (closed loop).
    pub connected: usize,
    /// Requests that completed with a parsed response.
    pub requests: u64,
    /// Transport or parse failures (failed connects included).
    pub errors: u64,
    /// Response body bytes consumed across all requests.
    pub bytes_read: u64,
    /// Responses by status code.
    pub status_counts: BTreeMap<u16, u64>,
    /// Request-latency quantiles, milliseconds (`None`: no requests recorded).
    pub p50_ms: Option<f64>,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: Option<f64>,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: Option<f64>,
    /// Wall-clock of the measured phase (rendezvous release to last join).
    pub elapsed_secs: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
}

impl LoadReport {
    /// The pass verdict a CI gate wants: every connection connected, at least
    /// one request completed, no transport errors, and no 5xx responses.
    pub fn ok(&self) -> bool {
        self.errors == 0
            && self.requests > 0
            && !self.status_counts.keys().any(|status| *status >= 500)
    }

    /// The report as one JSON object (stable keys, suitable for `jq`).
    pub fn to_json(&self) -> String {
        let statuses: Vec<String> = self
            .status_counts
            .iter()
            .map(|(status, count)| format!("\"{status}\":{count}"))
            .collect();
        let quantile = |q: Option<f64>| match q {
            Some(ms) => format!("{ms:.3}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"connections\":{},\"connected\":{},\"requests\":{},\"errors\":{},\
             \"bytes_read\":{},\"status_counts\":{{{}}},\"p50_ms\":{},\"p90_ms\":{},\
             \"p99_ms\":{},\"elapsed_secs\":{:.3},\"requests_per_sec\":{:.1},\"ok\":{}}}",
            self.connections,
            self.connected,
            self.requests,
            self.errors,
            self.bytes_read,
            statuses.join(","),
            quantile(self.p50_ms),
            quantile(self.p90_ms),
            quantile(self.p99_ms),
            self.elapsed_secs,
            self.requests_per_sec,
            self.ok()
        )
    }
}

/// Shared tallies, updated by every client thread.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    errors: AtomicU64,
    bytes: AtomicU64,
    connected: AtomicUsize,
    statuses: Mutex<BTreeMap<u16, u64>>,
}

impl Counters {
    fn count_response(&self, status: u16, body_bytes: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(body_bytes, Ordering::Relaxed);
        *self
            .statuses
            .lock()
            .expect("status lock poisoned")
            .entry(status)
            .or_insert(0) += 1;
    }
}

/// Runs one load test to completion and reports.
pub fn run(config: &LoadgenConfig) -> LoadReport {
    match config.mode {
        Mode::Closed => closed_loop(config),
        Mode::Open {
            rate_per_sec,
            duration,
        } => open_loop(config, rate_per_sec, duration),
    }
}

fn client_threads<F>(count: usize, work: F) -> Vec<std::thread::JoinHandle<()>>
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    (0..count)
        .map(|index| {
            let work = Arc::clone(&work);
            std::thread::Builder::new()
                .name(format!("loadgen-{index}"))
                // Hundreds of client threads: keep their stacks small.
                .stack_size(256 << 10)
                .spawn(move || work(index))
                .expect("client thread spawns")
        })
        .collect()
}

fn connect_with_retry(target: &str) -> std::io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..3 {
        match TcpStream::connect(target) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                return Ok(stream);
            }
            Err(error) => {
                last = Some(error);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

fn closed_loop(config: &LoadgenConfig) -> LoadReport {
    let histogram = Arc::new(LogLinearHistogram::new());
    let counters = Arc::new(Counters::default());
    // +1: the parent joins the rendezvous to start the clock at release time.
    let barrier = Arc::new(Barrier::new(config.connections + 1));
    let threads = {
        let target = config.target.clone();
        let path = config.path.clone();
        let requests = config.requests_per_conn;
        let histogram = Arc::clone(&histogram);
        let counters = Arc::clone(&counters);
        let barrier = Arc::clone(&barrier);
        client_threads(config.connections, move |_| {
            // Connect *before* the rendezvous: when the barrier releases, every
            // surviving socket is provably open at the same time.
            let stream = connect_with_retry(&target);
            if stream.is_ok() {
                counters.connected.fetch_add(1, Ordering::Relaxed);
            }
            barrier.wait();
            let Ok(stream) = stream else {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let Ok(read_half) = stream.try_clone() else {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let mut writer = stream;
            let mut reader = BufReader::new(read_half);
            for _ in 0..requests {
                let start = Instant::now();
                if let Err(()) = one_request(&mut writer, &mut reader, &path, &counters) {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                histogram.record(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
        })
    };
    barrier.wait();
    let released = Instant::now();
    for thread in threads {
        let _ = thread.join();
    }
    report(config, &counters, &histogram, released.elapsed())
}

fn open_loop(config: &LoadgenConfig, rate_per_sec: f64, duration: Duration) -> LoadReport {
    let histogram = Arc::new(LogLinearHistogram::new());
    let counters = Arc::new(Counters::default());
    let arrivals = (rate_per_sec * duration.as_secs_f64()).floor().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / rate_per_sec.max(f64::MIN_POSITIVE));
    let next = Arc::new(AtomicUsize::new(0));
    let epoch = Instant::now();
    let threads = {
        let target = config.target.clone();
        let path = config.path.clone();
        let histogram = Arc::clone(&histogram);
        let counters = Arc::clone(&counters);
        let next = Arc::clone(&next);
        client_threads(config.connections.max(1), move |_| loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= arrivals {
                return;
            }
            // Latency is measured from the *scheduled* arrival: a server that
            // falls behind accrues the queueing delay it caused.
            let scheduled = epoch + interval.mul_f64(index as f64);
            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let outcome = connect_with_retry(&target)
                .map_err(|_| ())
                .and_then(|stream| {
                    counters.connected.fetch_add(1, Ordering::Relaxed);
                    let read_half = stream.try_clone().map_err(|_| ())?;
                    let mut writer = stream;
                    let mut reader = BufReader::new(read_half);
                    one_request(&mut writer, &mut reader, &path, &counters)
                });
            match outcome {
                Ok(()) => histogram
                    .record(scheduled.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64),
                Err(()) => {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };
    for thread in threads {
        let _ = thread.join();
    }
    report(config, &counters, &histogram, epoch.elapsed())
}

fn report(
    config: &LoadgenConfig,
    counters: &Counters,
    histogram: &LogLinearHistogram,
    elapsed: Duration,
) -> LoadReport {
    let snapshot = histogram.snapshot();
    let quantile = |q: f64| snapshot.quantile(q).map(|ns| ns as f64 / 1e6);
    let requests = counters.requests.load(Ordering::Relaxed);
    let elapsed_secs = elapsed.as_secs_f64();
    LoadReport {
        connections: config.connections,
        connected: counters.connected.load(Ordering::Relaxed),
        requests,
        errors: counters.errors.load(Ordering::Relaxed),
        bytes_read: counters.bytes.load(Ordering::Relaxed),
        status_counts: counters
            .statuses
            .lock()
            .expect("status lock poisoned")
            .clone(),
        p50_ms: quantile(0.5),
        p90_ms: quantile(0.9),
        p99_ms: quantile(0.99),
        elapsed_secs,
        requests_per_sec: if elapsed_secs > 0.0 {
            requests as f64 / elapsed_secs
        } else {
            0.0
        },
    }
}

/// Sends one `GET` and consumes the full response; counts it on success.
fn one_request(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
    counters: &Counters,
) -> std::result::Result<(), ()> {
    // One write_all, not write!: the fmt machinery issues a syscall per
    // fragment, and a server that answers-and-closes without reading (the
    // accept-refusal path) RSTs the remainder mid-request.
    let request = format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n");
    // The write outcome is ignored: even when it fails, a refusal (503/429 at
    // accept) may already sit in the receive buffer, and whether the exchange
    // counts is decided by the response read either way.
    let _ = writer.write_all(request.as_bytes());
    let (status, body_bytes) = read_response(reader).map_err(|_| ())?;
    counters.count_response(status, body_bytes);
    Ok(())
}

/// Reads one HTTP/1.1 response (head + `Content-Length` or chunked body),
/// returning the status and the body byte count.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, u64)> {
    let bad =
        |detail: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, detail.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length: Option<u64> = None;
    let mut chunked = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside the response head",
            ));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.parse().map_err(|_| bad("bad Content-Length"))?);
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    let mut body = 0u64;
    if chunked {
        loop {
            line.clear();
            reader.read_line(&mut line)?;
            let size = usize::from_str_radix(line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                line.clear();
                reader.read_line(&mut line)?; // trailing CRLF of the terminator
                break;
            }
            skip_exact(reader, size + 2)?; // chunk payload + its CRLF
            body += size as u64;
        }
    } else if let Some(length) = content_length {
        skip_exact(reader, length as usize)?;
        body = length;
    }
    Ok((status, body))
}

fn skip_exact(reader: &mut impl Read, mut n: usize) -> std::io::Result<()> {
    let mut scratch = [0u8; 8192];
    while n > 0 {
        let take = n.min(scratch.len());
        reader.read_exact(&mut scratch[..take])?;
        n -= take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_canned(payload: &'static [u8]) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                let mut sink = [0u8; 1024];
                let _ = stream.read(&mut sink); // absorb the request head
                let _ = stream.write_all(payload);
            }
        });
        addr
    }

    fn read_from(addr: std::net::SocketAddr, path: &str) -> (u16, u64) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One write_all: write! issues a syscall per fragment, and the canned
        // server answers-and-closes after its first read, RSTing the tail.
        writer
            .write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
            .unwrap();
        read_response(&mut reader).unwrap()
    }

    #[test]
    fn content_length_responses_are_consumed() {
        let addr = serve_canned(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(read_from(addr, "/x"), (200, 5));
    }

    #[test]
    fn chunked_responses_are_consumed() {
        let addr = serve_canned(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nabcd\r\n2\r\nef\r\n0\r\n\r\n",
        );
        assert_eq!(read_from(addr, "/x"), (200, 6));
    }

    #[test]
    fn report_verdict_and_json_shape() {
        let mut report = LoadReport {
            connections: 8,
            connected: 8,
            requests: 16,
            errors: 0,
            bytes_read: 4096,
            status_counts: BTreeMap::from([(200, 15), (429, 1)]),
            p50_ms: Some(1.25),
            p90_ms: Some(2.5),
            p99_ms: Some(9.0),
            elapsed_secs: 0.5,
            requests_per_sec: 32.0,
        };
        assert!(report.ok(), "429s are load-shedding, not failure");
        let json = report.to_json();
        assert!(json.contains("\"connections\":8"), "{json}");
        assert!(json.contains("\"200\":15"), "{json}");
        assert!(json.contains("\"p99_ms\":9.000"), "{json}");
        assert!(json.contains("\"ok\":true"), "{json}");

        report.status_counts.insert(503, 1);
        assert!(!report.ok(), "any 5xx fails the verdict");
        report.status_counts.remove(&503);
        report.errors = 1;
        assert!(!report.ok(), "transport errors fail the verdict");
    }
}
