//! Shared command-line handling for `ptrngd` and `ptrng-serve`.
//!
//! Both front-ends configure the same engine, so the engine flags (`--shards`,
//! `--source`, `--conditioner`, `--min-h`, …) are parsed by one [`EngineArgs`] and
//! each mode layers its own flags on top: the streaming daemon adds `--budget`,
//! `--out` and `--stats`, the HTTP server adds `--listen`, `--threads`, `--rate`, ….
//! `ptrngd serve …` and `ptrng-serve …` are the same entry point ([`run_serve`]).

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ptrng_engine::audit::{
    AuditCadence, AuditConfig, EntropyAudit, DEFAULT_AUDIT_MARGIN, DEFAULT_AUDIT_WINDOW_BITS,
    DEFAULT_EVERY_LANE_CADENCE,
};
use ptrng_engine::expanded::{DrbgPolicy, ExpandedTap};
use ptrng_engine::fault::FaultPlan;
use ptrng_engine::health::HealthConfig;
use ptrng_engine::pool::{ConditionerSpec, Engine, EngineConfig};
use ptrng_engine::source::SourceSpec;
use ptrng_engine::EngineError;
use ptrng_obs::{Journal, ObsClock, TextEncoder};

use crate::server::{RateLimit, ServeConfig, Server};

/// Usage text of the streaming mode (`ptrngd`).
pub const GENERATE_USAGE: &str = "\
ptrngd — sharded entropy generation daemon (simulated P-TRNG)

USAGE:
    ptrngd [OPTIONS]            stream entropy to stdout or --out
    ptrngd serve [OPTIONS]      serve entropy over HTTP (see `ptrngd serve --help`)
    ptrngd validate [OPTIONS]   audit the entropy ledger with the SP 800-90B
                                estimator battery (see `ptrngd validate --help`)

OPTIONS:
    --shards N          worker shards, one source each            [default: 4]
    --source SPEC       ero[:DIV[:PROFILE]] | xor:K[:DIV[:PROFILE]] |
                        div:D1,D2,...[:PROFILE] | model[:P_ONE] |
                        pool:CHILD+CHILD+... (mix ≥2 child specs) [default: ero:16]
                        PROFILE = strong | date14
    --fault PLAN        inject a deterministic fault into one pool child:
                        child=N,at=SIZE,kind=KIND[,for=SIZE][,ms=N][,p=F][,seed=N]
                        KIND = stuck | bias-drift | variance-collapse | stall |
                        intermittent | overclaim (requires --source pool:...)
    --budget SIZE       stop after SIZE output bytes (e.g. 4096, 512KiB, 1MiB, 2GiB);
                        omit to stream until interrupted
    --seed N            base seed; shard i derives its own        [default: 0]
    --batch-bits N      raw bits per batch per shard              [default: 8192]
    --conditioner C     conditioning chain: none, or comma-separated stages of
                        xor:K | vn | sha256[:RATIO]               [default: none]
                        (--post is accepted as a deprecated alias)
    --min-h H           refuse emission when the accounted min-entropy per
                        conditioned output bit falls below H (0 < H <= 1)
    --no-startup        skip the FIPS 140-2 startup battery
    --min-entropy H     override the model-backed entropy claim used for the
                        SP 800-90B cutoffs (0 < H <= 1)
    --audit-every-lane  run the streaming SP 800-90B estimator audit on every
                        shard's raw and conditioned lanes (and every pool child)
                        instead of shard 0 only; the counting estimators run on
                        every window, the expensive ones every 64th (see
                        docs/operations.md for capacity planning)
    --drbg              expand the output through an SP 800-90A Hash_DRBG
                        (SHA-256) seeded from ledger-accounted conditioned
                        bytes; --budget then counts expanded output
    --reseed-bytes SIZE DRBG output allowance per seed (requires --drbg)
                                                              [default: 128MiB]
    --prediction-resistance
                        reseed the DRBG before every generate (requires --drbg)
    --out PATH          write bytes to PATH instead of stdout
    --stats             print per-shard metrics, the output entropy ledger
                        (canonical JSON) and the latency-histogram families
                        (Prometheus text) to stderr
    --journal PATH      append observability records (alarm postmortems) to PATH
                        as JSONL, one self-contained object per line
    --help              show this help
";

/// Usage text of the serving mode (`ptrng-serve` / `ptrngd serve`).
pub const SERVE_USAGE: &str = "\
ptrng-serve — entropy-as-a-service over HTTP/1.1 (same engine as ptrngd)

USAGE:
    ptrng-serve [OPTIONS]

ENDPOINTS:
    GET /entropy?bytes=N   stream N conditioned bytes (chunked), with the accounted
                           entropy ledger in X-PTRNG-MinEntropy / X-PTRNG-Ledger;
                           503 + ledger JSON when the accounted entropy misses
                           --min-h, 429 under the per-client rate limit
    GET /random?bytes=N    stream N DRBG-expanded bytes (requires --drbg): an
                           SP 800-90A Hash_DRBG seeded and reseeded from
                           ledger-accounted conditioned output, X-PTRNG-Tier:
                           drbg-sha256; 503 + ledger JSON when a due reseed
                           cannot be funded, 404 when the tier is disabled;
                           rate-limited in a bucket separate from /entropy
    GET /healthz           shard/alarm state (RCT, APT, thermal, startup battery)
                           plus recent alarm postmortems
    GET /metrics           Prometheus text exposition, including the latency
                           histograms (batch, conditioning stage, audit battery,
                           tap wait, HTTP request) and the ptrng_drbg_* families
                           when --drbg is active
    GET /selftest          draw one window of conditioned output, run the
                           SP 800-90B estimator battery over it and compare the
                           assessment against the ledger claim (reports the
                           per-estimator timings)
    GET /debug/trace       flight-recorder timeline and alarm postmortems as
                           JSONL (rate-limited like a small draw)

OPTIONS (in addition to every engine flag of ptrngd except --budget/--out/--stats;
that includes --source pool:CHILD+CHILD+... and the --fault drill flag):
    --listen ADDR       bind address                              [default: 127.0.0.1:7878]
    --threads N         HTTP worker threads                       [default: 4]
    --max-request SIZE  per-request cap on ?bytes=N               [default: 4MiB]
    --rate BYTES_S      per-client sustained rate limit in bytes/second;
                        omit for unlimited
    --burst SIZE        per-client burst capacity; requires --rate [default: 4x --rate]
    --chunk SIZE        chunked-transfer draw granularity         [default: 64KiB]
    --max-conns N       hard cap on simultaneously open connections; excess
                        accepts are refused with 503              [default: 1024]
    --per-ip-conns N    per-client cap on concurrent connections; excess accepts
                        are refused with 429; 0 disables the gate [default: 0]
    --header-timeout S  seconds a connection may take to deliver a complete
                        request head before it is dropped (the slow-loris guard)
                                                                  [default: 5]
    --idle-timeout S    seconds an idle keep-alive connection is retained before
                        it is reaped                              [default: 5]
    --write-timeout S   seconds a response write may stall (the peer not reading)
                        before the connection is dropped          [default: 10]
    --drbg              enable the /random DRBG expansion tier
    --reseed-bytes SIZE DRBG output allowance per seed (requires --drbg)
                                                                  [default: 128MiB]
    --prediction-resistance
                        reseed the DRBG before every generate (requires --drbg)
    --journal PATH      append observability records (alarm postmortems) to PATH
                        as JSONL, one self-contained object per line
    --help              show this help

SIGNALS:
    SIGTERM/SIGINT trigger a graceful shutdown: in-flight responses complete,
    the engine is drained, then the process exits 0.
";

/// Usage text of the ledger-audit mode (`ptrngd validate`).
pub const VALIDATE_USAGE: &str = "\
ptrngd validate — audit the entropy ledger with the SP 800-90B §6.3 battery

Draws conditioned output from the configured engine, runs the non-IID estimator
battery over it, and compares the battery's assessed min-entropy against the
claim.  The claim defaults to the engine's own ledger (the dependent-jitter-aware
model bound); pass --claim (or --min-h) to audit an asserted value instead —
e.g. the naive independence-assuming bound the paper warns about.  Unlike the
other modes, --min-h is audited, not enforced: the engine always spawns, so the
report shows *how far off* an inflated claim is.

USAGE:
    ptrngd validate [OPTIONS]

OPTIONS (in addition to every engine flag of ptrngd except --budget/--out/--stats):
    --audit-bits N      bits per audited window             [default: 131072]
    --windows W         windows to audit                    [default: 1]
    --margin M          tolerated shortfall of the battery estimate below the
                        claim (absorbs the estimators' known finite-sample
                        conservatism; see docs/validation.md)  [default: 0.35]
    --claim H           audit against this claim instead of the ledger's
    --help              show this help

OUTPUT:
    A JSON report on stdout mirroring the ledger format: the audited claim, the
    battery estimate with every estimator's result, and the engine's ledger.

EXIT CODES:
    0  battery estimate ≥ claim − margin for every window
    1  usage or configuration error
    2  a health alarm terminated generation before the audit completed
    3  overclaim: the battery refuted the claim on at least one window
";

/// Parses a human-friendly byte size: `4096`, `64KiB`, `1MiB`, `2GiB`.
///
/// # Errors
///
/// Returns a usage message for malformed or overflowing sizes.
pub fn parse_size(text: &str) -> Result<u64, String> {
    let lower = text.trim().to_ascii_lowercase();
    let lower = lower.as_str();
    let (digits, multiplier) = if let Some(d) = lower.strip_suffix("gib") {
        (d, 1u64 << 30)
    } else if let Some(d) = lower.strip_suffix("mib") {
        (d, 1u64 << 20)
    } else if let Some(d) = lower.strip_suffix("kib") {
        (d, 1u64 << 10)
    } else if let Some(d) = lower.strip_suffix('b') {
        (d, 1)
    } else {
        (lower, 1)
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
        .ok_or_else(|| format!("invalid size `{text}` (expected e.g. 4096, 512KiB, 1MiB)"))
}

/// The engine flags shared by every front-end.
#[derive(Debug, Clone)]
pub struct EngineArgs {
    /// Worker shard count.
    pub shards: usize,
    /// Source specification text (parsed by [`SourceSpec::parse`]).
    pub source: String,
    /// Base seed.
    pub seed: u64,
    /// Raw bits per batch per shard.
    pub batch_bits: usize,
    /// Conditioning chain.
    pub conditioner: ConditionerSpec,
    /// Emission policy threshold.
    pub min_h: Option<f64>,
    /// Whether the FIPS startup battery runs.
    pub startup_battery: bool,
    /// Override of the entropy claim used for cutoff calibration.
    pub min_entropy: Option<f64>,
    /// Fault-injection plan text (parsed by [`FaultPlan::parse`]; pool sources only).
    pub fault: Option<String>,
    /// Audit every shard's raw and conditioned lanes (and every pool child)
    /// instead of shard 0 only.
    pub audit_every_lane: bool,
}

impl Default for EngineArgs {
    fn default() -> Self {
        Self {
            shards: 4,
            source: "ero:16".to_string(),
            seed: 0,
            batch_bits: 8192,
            conditioner: ConditionerSpec::none(),
            min_h: None,
            startup_battery: true,
            min_entropy: None,
            fault: None,
            audit_every_lane: false,
        }
    }
}

fn flag_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

impl EngineArgs {
    /// Tries to consume one engine flag; returns whether it was recognized.
    ///
    /// # Errors
    ///
    /// Returns a usage message for malformed values.
    pub fn accept(
        &mut self,
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match flag {
            "--shards" => {
                self.shards = flag_value(it, "--shards")?
                    .parse()
                    .map_err(|_| "invalid --shards".to_string())?;
            }
            "--source" => self.source = flag_value(it, "--source")?,
            "--fault" => self.fault = Some(flag_value(it, "--fault")?),
            "--seed" => {
                self.seed = flag_value(it, "--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?;
            }
            "--batch-bits" => {
                self.batch_bits = flag_value(it, "--batch-bits")?
                    .parse()
                    .map_err(|_| "invalid --batch-bits".to_string())?;
            }
            "--conditioner" | "--post" => {
                self.conditioner = ConditionerSpec::parse(&flag_value(it, "--conditioner")?)
                    .map_err(|e| e.to_string())?;
            }
            "--min-h" => {
                self.min_h = Some(
                    flag_value(it, "--min-h")?
                        .parse()
                        .map_err(|_| "invalid --min-h".to_string())?,
                );
            }
            "--no-startup" => self.startup_battery = false,
            "--audit-every-lane" => self.audit_every_lane = true,
            "--min-entropy" => {
                self.min_entropy = Some(
                    flag_value(it, "--min-entropy")?
                        .parse()
                        .map_err(|_| "invalid --min-entropy".to_string())?,
                );
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Builds the [`EngineConfig`] these flags describe (without a byte budget —
    /// the caller sets one when it streams a bounded amount).
    ///
    /// # Errors
    ///
    /// Returns a usage message when the source spec does not parse.
    pub fn engine_config(&self) -> Result<EngineConfig, String> {
        let spec = SourceSpec::parse(&self.source).map_err(|e| e.to_string())?;
        let fault = self
            .fault
            .as_deref()
            .map(FaultPlan::parse)
            .transpose()
            .map_err(|e| e.to_string())?;
        let mut health = HealthConfig::default();
        if !self.startup_battery {
            health = health.without_startup_battery();
        }
        if let Some(claim) = self.min_entropy {
            health = health.with_min_entropy(claim);
        }
        let mut config = EngineConfig::new(spec)
            .shards(self.shards)
            .seed(self.seed)
            .batch_bits(self.batch_bits)
            .conditioner(self.conditioner.clone())
            .min_output_entropy(self.min_h)
            .health(health)
            .fault(fault);
        if self.audit_every_lane {
            // Every lane pays for its own battery, so the expensive members run
            // on a sparse cadence: the default window slides by its own length
            // (tumbling coverage) with the counting members refreshed every
            // window and the rest every DEFAULT_EVERY_LANE_CADENCE windows.
            let audit = AuditConfig::default()
                .slide_bits(Some(DEFAULT_AUDIT_WINDOW_BITS))
                .cadence(AuditCadence::EveryKSlides(DEFAULT_EVERY_LANE_CADENCE));
            config = config.audit(Some(audit)).audit_every_lane(true);
        }
        Ok(config)
    }
}

/// The DRBG expansion-tier flags shared by `ptrngd` and `ptrng-serve`.
#[derive(Debug, Clone, Default)]
pub struct DrbgArgs {
    /// Whether the expansion tier is enabled (`--drbg`).
    pub enabled: bool,
    /// Override of the per-seed output allowance (`--reseed-bytes`).
    pub reseed_bytes: Option<u64>,
    /// Reseed before every generate call (`--prediction-resistance`).
    pub prediction_resistance: bool,
}

impl DrbgArgs {
    /// Tries to consume one DRBG flag; returns whether it was recognized.
    ///
    /// # Errors
    ///
    /// Returns a usage message for malformed values.
    pub fn accept(
        &mut self,
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match flag {
            "--drbg" => self.enabled = true,
            "--reseed-bytes" => {
                self.reseed_bytes = Some(parse_size(&flag_value(it, "--reseed-bytes")?)?);
            }
            "--prediction-resistance" => self.prediction_resistance = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Rejects tuning flags given without `--drbg` — silently ignoring them
    /// would run without the policy the operator believes is in force.
    fn validate(&self) -> Result<(), String> {
        if !self.enabled && (self.reseed_bytes.is_some() || self.prediction_resistance) {
            return Err(
                "--reseed-bytes/--prediction-resistance require --drbg (no DRBG tier is \
                 active without it)"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// The policy these flags describe, when the tier is enabled.
    pub fn policy(&self) -> Option<DrbgPolicy> {
        self.enabled.then(|| {
            let mut policy = DrbgPolicy::default();
            if let Some(bytes) = self.reseed_bytes {
                policy.reseed_after_bytes = bytes;
            }
            policy.prediction_resistance = self.prediction_resistance;
            policy
        })
    }
}

#[derive(Debug)]
struct GenerateArgs {
    engine: EngineArgs,
    drbg: DrbgArgs,
    budget: Option<u64>,
    out: Option<String>,
    stats: bool,
    journal: Option<String>,
}

fn parse_generate(argv: &[String]) -> Result<Option<GenerateArgs>, String> {
    let mut args = GenerateArgs {
        engine: EngineArgs::default(),
        drbg: DrbgArgs::default(),
        budget: None,
        out: None,
        stats: false,
        journal: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--budget" => args.budget = Some(parse_size(&flag_value(&mut it, "--budget")?)?),
            "--out" => args.out = Some(flag_value(&mut it, "--out")?),
            "--stats" => args.stats = true,
            "--journal" => args.journal = Some(flag_value(&mut it, "--journal")?),
            other => {
                if !args.engine.accept(other, &mut it)? && !args.drbg.accept(other, &mut it)? {
                    return Err(format!("unknown argument `{other}` (try --help)"));
                }
            }
        }
    }
    args.drbg.validate()?;
    Ok(Some(args))
}

#[derive(Debug)]
struct ServeCliArgs {
    engine: EngineArgs,
    drbg: DrbgArgs,
    listen: String,
    threads: usize,
    max_request: u64,
    rate: Option<u64>,
    burst: Option<u64>,
    chunk: usize,
    max_conns: usize,
    per_ip_conns: usize,
    header_timeout: Option<Duration>,
    idle_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    journal: Option<String>,
}

/// Parses a `--*-timeout` value: positive seconds, fractions allowed.
fn parse_timeout_secs(flag: &str, value: &str) -> Result<Duration, String> {
    let secs: f64 = value
        .parse()
        .map_err(|_| format!("invalid {flag} (want seconds, e.g. 2 or 0.5)"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("{flag} must be a positive number of seconds"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn parse_serve(argv: &[String]) -> Result<Option<ServeCliArgs>, String> {
    let mut args = ServeCliArgs {
        engine: EngineArgs::default(),
        drbg: DrbgArgs::default(),
        listen: "127.0.0.1:7878".to_string(),
        threads: 4,
        max_request: 4 << 20,
        rate: None,
        burst: None,
        chunk: 64 << 10,
        max_conns: 1024,
        per_ip_conns: 0,
        header_timeout: None,
        idle_timeout: None,
        write_timeout: None,
        journal: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--listen" => args.listen = flag_value(&mut it, "--listen")?,
            "--threads" => {
                args.threads = flag_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads".to_string())?;
            }
            "--max-request" => {
                args.max_request = parse_size(&flag_value(&mut it, "--max-request")?)?;
            }
            "--rate" => args.rate = Some(parse_size(&flag_value(&mut it, "--rate")?)?),
            "--burst" => args.burst = Some(parse_size(&flag_value(&mut it, "--burst")?)?),
            "--chunk" => {
                args.chunk = parse_size(&flag_value(&mut it, "--chunk")?)? as usize;
            }
            "--max-conns" => {
                args.max_conns = flag_value(&mut it, "--max-conns")?
                    .parse()
                    .map_err(|_| "invalid --max-conns".to_string())?;
            }
            "--per-ip-conns" => {
                args.per_ip_conns = flag_value(&mut it, "--per-ip-conns")?
                    .parse()
                    .map_err(|_| "invalid --per-ip-conns".to_string())?;
            }
            "--header-timeout" => {
                let value = flag_value(&mut it, "--header-timeout")?;
                args.header_timeout = Some(parse_timeout_secs("--header-timeout", &value)?);
            }
            "--idle-timeout" => {
                let value = flag_value(&mut it, "--idle-timeout")?;
                args.idle_timeout = Some(parse_timeout_secs("--idle-timeout", &value)?);
            }
            "--write-timeout" => {
                let value = flag_value(&mut it, "--write-timeout")?;
                args.write_timeout = Some(parse_timeout_secs("--write-timeout", &value)?);
            }
            "--journal" => args.journal = Some(flag_value(&mut it, "--journal")?),
            other => {
                if !args.engine.accept(other, &mut it)? && !args.drbg.accept(other, &mut it)? {
                    return Err(format!("unknown argument `{other}` (try --help)"));
                }
            }
        }
    }
    if args.burst.is_some() && args.rate.is_none() {
        // Silently ignoring the burst would run without any limit while the
        // operator believes one is in force.
        return Err("--burst requires --rate (no rate limiter is active without it)".to_string());
    }
    args.drbg.validate()?;
    Ok(Some(args))
}

impl ServeCliArgs {
    fn serve_config(&self) -> Result<ServeConfig, String> {
        let mut config = ServeConfig::new(self.engine.engine_config()?);
        config.listen = self.listen.clone();
        config.threads = self.threads;
        config.max_request_bytes = self.max_request;
        config.chunk_bytes = self.chunk;
        config.max_connections = self.max_conns;
        config.per_ip_connections = self.per_ip_conns;
        config.header_timeout = self.header_timeout;
        config.idle_timeout = self.idle_timeout;
        if let Some(write_timeout) = self.write_timeout {
            config.write_timeout = write_timeout;
        }
        config.rate_limit = self.rate.map(|bytes_per_sec| RateLimit {
            bytes_per_sec,
            burst_bytes: self.burst.unwrap_or(bytes_per_sec.saturating_mul(4)),
        });
        config.journal = open_journal(self.journal.as_deref())?;
        config.drbg = self.drbg.policy();
        Ok(config)
    }
}

/// Opens the `--journal` sink, when one was requested.
fn open_journal(path: Option<&str>) -> Result<Option<Arc<Journal>>, String> {
    match path {
        Some(path) => Journal::create(path, ObsClock::new())
            .map(|journal| Some(Arc::new(journal)))
            .map_err(|e| format!("cannot create journal `{path}`: {e}")),
        None => Ok(None),
    }
}

/// Streams DRBG-expanded bytes (`ptrngd --drbg`): the engine runs unbudgeted
/// and `--budget` counts *expanded* output — the seed economy, not the byte
/// budget, decides how much conditioned entropy is consumed.
fn run_generate_drbg(args: GenerateArgs, policy: DrbgPolicy) -> Result<u64, (u8, String)> {
    let config = args.engine.engine_config().map_err(|m| (1, m))?;
    let journal = open_journal(args.journal.as_deref()).map_err(|m| (1, m))?;
    let engine = Engine::spawn_with_journal(config, journal).map_err(|e| match e {
        EngineError::EntropyDeficit { ref ledger, .. } => {
            eprintln!("ptrngd: ledger {}", ledger.to_json());
            (2, e.to_string())
        }
        other => (1, other.to_string()),
    })?;
    let expanded = ExpandedTap::new(engine.into_tap(), policy).map_err(|e| (1, e.to_string()))?;

    let mut sink: Box<dyn Write> = match &args.out {
        Some(path) => Box::new(std::io::BufWriter::with_capacity(
            256 * 1024,
            std::fs::File::create(path).map_err(|e| (1, format!("cannot create `{path}`: {e}")))?,
        )),
        None => Box::new(std::io::BufWriter::with_capacity(
            256 * 1024,
            std::io::stdout().lock(),
        )),
    };
    let started = Instant::now();
    let mut buffer = vec![0u8; 64 << 10];
    let mut written = 0u64;
    loop {
        let want = match args.budget {
            Some(budget) => (budget - written).min(buffer.len() as u64) as usize,
            None => buffer.len(),
        };
        if want == 0 {
            break;
        }
        // An unfundable reseed is the same refusal as a spawn-time deficit
        // (exit 2 with the ledger on stderr), never silently degraded output.
        expanded.draw(&mut buffer[..want]).map_err(|e| match e {
            EngineError::EntropyDeficit { ref ledger, .. } => {
                eprintln!("ptrngd: ledger {}", ledger.to_json());
                (2, e.to_string())
            }
            other => (1, other.to_string()),
        })?;
        sink.write_all(&buffer[..want])
            .map_err(|e| (1, format!("write failed: {e}")))?;
        written += want as u64;
    }
    sink.flush()
        .map_err(|e| (1, format!("flush failed: {e}")))?;
    let elapsed = started.elapsed().as_secs_f64();

    if args.stats {
        let drbg = expanded.snapshot();
        eprintln!(
            "ptrngd: {written} drbg-expanded bytes in {elapsed:.2}s ({:.2} MiB/s), \
             {} generates, {} reseeds, {} accounted seed bits debited",
            written as f64 / elapsed.max(1e-9) / (1024.0 * 1024.0),
            drbg.generates,
            drbg.reseeds,
            drbg.seed_bits_debited,
        );
        eprintln!("ptrngd: ledger {}", expanded.tap().ledger().to_json());
        let mut enc = TextEncoder::new();
        expanded.tap().observatory().render_histograms(&mut enc);
        eprint!("{}", enc.finish());
    }
    expanded.shutdown().map_err(|e| (1, e.to_string()))?;
    Ok(written)
}

fn run_generate_inner(args: GenerateArgs) -> Result<u64, (u8, String)> {
    if let Some(policy) = args.drbg.policy() {
        return run_generate_drbg(args, policy);
    }
    let config = args
        .engine
        .engine_config()
        .map_err(|m| (1, m))?
        .budget_bytes(args.budget);

    // BufWriter matters here: batches are ~1 KiB and stdout is otherwise
    // line-buffered, which would flush on every 0x0A byte of random output.
    let mut sink: Box<dyn Write> = match &args.out {
        Some(path) => Box::new(std::io::BufWriter::with_capacity(
            256 * 1024,
            std::fs::File::create(path).map_err(|e| (1, format!("cannot create `{path}`: {e}")))?,
        )),
        None => Box::new(std::io::BufWriter::with_capacity(
            256 * 1024,
            std::io::stdout().lock(),
        )),
    };

    let journal = open_journal(args.journal.as_deref()).map_err(|m| (1, m))?;
    let started = Instant::now();
    // An entropy deficit is the emission-refusal path (exit 2, like an alarm): the
    // accounted ledger says the conditioned output would overclaim.  The canonical
    // ledger JSON goes to stderr so tooling can consume the refusal.
    let mut engine = Engine::spawn_with_journal(config, journal).map_err(|e| match e {
        EngineError::EntropyDeficit { ref ledger, .. } => {
            eprintln!("ptrngd: ledger {}", ledger.to_json());
            (2, e.to_string())
        }
        other => (1, other.to_string()),
    })?;
    let mut written = 0u64;
    let mut alarm: Option<String> = None;
    for batch in engine.stream_mut() {
        match batch {
            Ok(batch) => {
                sink.write_all(&batch.bytes)
                    .map_err(|e| (1, format!("write failed: {e}")))?;
                written += batch.bytes.len() as u64;
            }
            Err(e) => {
                alarm.get_or_insert(e.to_string());
            }
        }
    }
    sink.flush()
        .map_err(|e| (1, format!("flush failed: {e}")))?;
    let elapsed = started.elapsed().as_secs_f64();

    if args.stats {
        let snap = engine.metrics().snapshot();
        eprintln!(
            "ptrngd: {written} bytes in {elapsed:.2}s ({:.2} MiB/s), {} raw bits, {} batches, \
             {:.0} accounted entropy bits, {} alarms",
            written as f64 / elapsed.max(1e-9) / (1024.0 * 1024.0),
            snap.total_raw_bits,
            snap.total_batches,
            snap.total_accounted_entropy_bits,
            snap.alarms,
        );
        for shard in &snap.per_shard {
            eprintln!(
                "ptrngd:   shard {}: {} bytes, {} raw bits, {} batches, \
                 {:.6} accounted h/bit",
                shard.shard,
                shard.output_bytes,
                shard.raw_bits,
                shard.batches,
                shard.entropy_per_output_bit
            );
        }
        eprintln!("ptrngd: ledger {}", engine.output_ledger().to_json());
        // The latency-histogram families, in the same Prometheus text the server
        // exposes on /metrics (one encoder, one format).
        let mut enc = TextEncoder::new();
        engine.observatory().render_histograms(&mut enc);
        eprint!("{}", enc.finish());
    }
    engine.join().map_err(|e| (1, e.to_string()))?;
    match alarm {
        Some(reason) => Err((2, reason)),
        None => Ok(written),
    }
}

/// Entry point of the streaming mode (`ptrngd` without a subcommand).
pub fn run_generate(argv: &[String]) -> ExitCode {
    match parse_generate(argv) {
        Ok(None) => {
            print!("{GENERATE_USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(args)) => match run_generate_inner(args) {
            Ok(_) => ExitCode::SUCCESS,
            Err((code, message)) => {
                eprintln!("ptrngd: {message}");
                ExitCode::from(code)
            }
        },
        Err(message) => {
            eprintln!("ptrngd: {message}");
            eprintln!("{GENERATE_USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct ValidateArgs {
    engine: EngineArgs,
    audit_bits: usize,
    windows: u64,
    margin: f64,
    claim: Option<f64>,
}

fn parse_validate(argv: &[String]) -> Result<Option<ValidateArgs>, String> {
    let mut args = ValidateArgs {
        engine: EngineArgs::default(),
        audit_bits: ptrng_engine::audit::DEFAULT_AUDIT_WINDOW_BITS,
        windows: 1,
        margin: DEFAULT_AUDIT_MARGIN,
        claim: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--audit-bits" => {
                args.audit_bits = flag_value(&mut it, "--audit-bits")?
                    .parse()
                    .map_err(|_| "invalid --audit-bits".to_string())?;
            }
            "--windows" => {
                args.windows = flag_value(&mut it, "--windows")?
                    .parse()
                    .map_err(|_| "invalid --windows".to_string())?;
            }
            "--margin" => {
                args.margin = flag_value(&mut it, "--margin")?
                    .parse()
                    .map_err(|_| "invalid --margin".to_string())?;
            }
            "--claim" => {
                args.claim = Some(
                    flag_value(&mut it, "--claim")?
                        .parse()
                        .map_err(|_| "invalid --claim".to_string())?,
                );
            }
            other => {
                if !args.engine.accept(other, &mut it)? {
                    return Err(format!("unknown argument `{other}` (try --help)"));
                }
            }
        }
    }
    if args.windows == 0 {
        return Err("--windows must be at least 1".to_string());
    }
    Ok(Some(args))
}

fn run_validate_inner(args: ValidateArgs) -> Result<bool, (u8, String)> {
    // The audited claim: an explicit --claim, else an asserted --min-h, else the
    // engine's own ledger.  --min-h is deliberately *not* enforced at spawn here —
    // validate measures how far off a claim is instead of refusing up front.
    let asserted = args.claim.or(args.engine.min_h);
    let budget = (args.windows * args.audit_bits as u64).div_ceil(8);
    let config = args
        .engine
        .engine_config()
        .map_err(|m| (1, m))?
        .min_output_entropy(None)
        .budget_bytes(Some(budget));
    let mut engine = Engine::spawn(config).map_err(|e| (1, e.to_string()))?;
    let ledger = engine.output_ledger().clone();
    let audit_config = AuditConfig::default()
        .window_bits(args.audit_bits)
        .margin(args.margin)
        .claim(asserted);
    let mut audit = EntropyAudit::new("conditioned", ledger.min_entropy_per_bit(), audit_config)
        .map_err(|e| (1, e.to_string()))?;

    let mut alarm: Option<String> = None;
    for batch in engine.stream_mut() {
        match batch {
            Ok(batch) => {
                audit
                    .observe_bytes(&batch.bytes)
                    .map_err(|e| (1, e.to_string()))?;
            }
            Err(e) => {
                alarm.get_or_insert(e.to_string());
            }
        }
    }
    audit.finalize().map_err(|e| (1, e.to_string()))?;
    engine.join().map_err(|e| (1, e.to_string()))?;
    if let Some(reason) = alarm {
        return Err((2, reason));
    }
    if audit.windows() == 0 {
        return Err((
            2,
            "the stream ended before one audit window filled".to_string(),
        ));
    }

    // The machine-readable report mirrors the ledger's canonical JSON rendering:
    // the ledger object is embedded verbatim next to the audit verdict.
    let report = audit.report();
    let report_json = serde_json::to_string(&report).map_err(|e| (1, e.to_string()))?;
    println!(
        "{{\"overclaim\":{},\"audit\":{report_json},\"ledger\":{}}}",
        audit.overclaimed(),
        ledger.to_json()
    );
    let latest = audit.latest().expect("at least one window audited");
    eprintln!(
        "ptrngd validate: battery {:.4}/bit (weakest: {}) vs claim {:.4} − margin {:.2} \
         over {} window(s) of {} bits → {}",
        latest.estimate,
        latest.weakest,
        audit.claim(),
        args.margin,
        audit.windows(),
        args.audit_bits,
        if audit.overclaimed() {
            "OVERCLAIM"
        } else {
            "pass"
        }
    );
    Ok(audit.overclaimed())
}

/// Entry point of the ledger-audit mode (`ptrngd validate`).
///
/// Exit codes: 0 pass, 1 usage/configuration error, 2 health alarm, 3 overclaim.
pub fn run_validate(argv: &[String]) -> ExitCode {
    match parse_validate(argv) {
        Ok(None) => {
            print!("{VALIDATE_USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(args)) => match run_validate_inner(args) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => ExitCode::from(3),
            Err((code, message)) => {
                eprintln!("ptrngd validate: {message}");
                ExitCode::from(code)
            }
        },
        Err(message) => {
            eprintln!("ptrngd validate: {message}");
            eprintln!("{VALIDATE_USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Entry point of the serving mode (`ptrng-serve`, or `ptrngd serve`).
pub fn run_serve(argv: &[String]) -> ExitCode {
    let args = match parse_serve(argv) {
        Ok(None) => {
            print!("{SERVE_USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Some(args)) => args,
        Err(message) => {
            eprintln!("ptrng-serve: {message}");
            eprintln!("{SERVE_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let drbg_enabled = args.drbg.enabled;
    let config = match args.serve_config() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("ptrng-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("ptrng-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    server.install_signal_handlers();
    match server.local_addr() {
        Ok(addr) => {
            if server.is_serving() {
                let tiers = if drbg_enabled {
                    "entropy, random, healthz, metrics"
                } else {
                    "entropy, healthz, metrics"
                };
                eprintln!("ptrng-serve: listening on http://{addr} ({tiers})");
            } else {
                eprintln!(
                    "ptrng-serve: listening on http://{addr} in REFUSING mode — the \
                     accounted entropy misses --min-h; /entropy answers 503 with the ledger"
                );
            }
        }
        Err(error) => eprintln!("ptrng-serve: listening (addr unavailable: {error})"),
    }
    match server.serve() {
        Ok(()) => {
            eprintln!("ptrng-serve: drained and shut down");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("ptrng-serve: {error}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sizes_parse_with_binary_suffixes() {
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert_eq!(parse_size("64KiB").unwrap(), 64 << 10);
        assert_eq!(parse_size("1mib").unwrap(), 1 << 20);
        assert_eq!(parse_size("2GiB").unwrap(), 2 << 30);
        assert_eq!(parse_size("512b").unwrap(), 512);
        assert!(parse_size("not-a-size").is_err());
        assert!(parse_size("99999999999GiB").is_err(), "overflow must error");
    }

    #[test]
    fn generate_and_serve_share_the_engine_flags() {
        let generate = parse_generate(&argv(&[
            "--shards",
            "2",
            "--source",
            "model:0.5",
            "--conditioner",
            "sha256:2",
            "--min-h",
            "0.997",
            "--budget",
            "1KiB",
        ]))
        .unwrap()
        .unwrap();
        let serve = parse_serve(&argv(&[
            "--shards",
            "2",
            "--source",
            "model:0.5",
            "--conditioner",
            "sha256:2",
            "--min-h",
            "0.997",
            "--listen",
            "127.0.0.1:0",
        ]))
        .unwrap()
        .unwrap();
        // One parser, two front-ends: the resulting engine configs agree.
        let a = generate.engine.engine_config().unwrap();
        let b = serve.engine.engine_config().unwrap();
        assert_eq!(a, b);
        assert_eq!(generate.budget, Some(1024));
        assert_eq!(serve.listen, "127.0.0.1:0");
    }

    #[test]
    fn serve_flags_build_the_server_config() {
        let args = parse_serve(&argv(&[
            "--listen",
            "0.0.0.0:9000",
            "--threads",
            "8",
            "--max-request",
            "1MiB",
            "--rate",
            "256KiB",
            "--chunk",
            "16KiB",
            "--max-conns",
            "512",
            "--per-ip-conns",
            "8",
            "--header-timeout",
            "2.5",
            "--idle-timeout",
            "30",
            "--write-timeout",
            "7",
        ]))
        .unwrap()
        .unwrap();
        let config = args.serve_config().unwrap();
        assert_eq!(config.listen, "0.0.0.0:9000");
        assert_eq!(config.threads, 8);
        assert_eq!(config.max_request_bytes, 1 << 20);
        assert_eq!(config.chunk_bytes, 16 << 10);
        assert_eq!(config.max_connections, 512);
        assert_eq!(config.per_ip_connections, 8);
        assert_eq!(config.header_timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(config.idle_timeout, Some(Duration::from_secs(30)));
        assert_eq!(config.write_timeout, Duration::from_secs(7));
        let rate = config.rate_limit.unwrap();
        assert_eq!(rate.bytes_per_sec, 256 << 10);
        assert_eq!(rate.burst_bytes, (256 << 10) * 4, "burst defaults to 4x");
    }

    #[test]
    fn lifecycle_timeouts_default_off_and_reject_nonsense() {
        let args = parse_serve(&argv(&[])).unwrap().unwrap();
        let config = args.serve_config().unwrap();
        assert_eq!(config.max_connections, 1024);
        assert_eq!(config.per_ip_connections, 0, "per-IP gate off by default");
        assert_eq!(config.header_timeout, None, "falls back to read_timeout");
        assert_eq!(config.idle_timeout, None, "falls back to read_timeout");
        assert_eq!(config.write_timeout, Duration::from_secs(10));
        assert!(parse_serve(&argv(&["--header-timeout", "0"])).is_err());
        assert!(parse_serve(&argv(&["--write-timeout", "-1"])).is_err());
        assert!(parse_serve(&argv(&["--idle-timeout", "soon"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_with_usage_hints() {
        assert!(parse_generate(&argv(&["--bogus"])).is_err());
        assert!(parse_serve(&argv(&["--budget", "1MiB"]))
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse_generate(&argv(&["--help"])).unwrap().is_none());
        assert!(parse_serve(&argv(&["--help"])).unwrap().is_none());
    }

    #[test]
    fn validate_flags_parse_and_share_the_engine_parser() {
        let args = parse_validate(&argv(&[
            "--source",
            "model:0.95",
            "--audit-bits",
            "32768",
            "--windows",
            "2",
            "--margin",
            "0.4",
            "--claim",
            "0.9",
            "--shards",
            "1",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(args.audit_bits, 32768);
        assert_eq!(args.windows, 2);
        assert!((args.margin - 0.4).abs() < 1e-15);
        assert_eq!(args.claim, Some(0.9));
        assert_eq!(args.engine.shards, 1);
        assert_eq!(args.engine.source, "model:0.95");

        // Defaults mirror the audit module's calibration.
        let defaults = parse_validate(&argv(&[])).unwrap().unwrap();
        assert_eq!(
            defaults.audit_bits,
            ptrng_engine::audit::DEFAULT_AUDIT_WINDOW_BITS
        );
        assert!((defaults.margin - DEFAULT_AUDIT_MARGIN).abs() < 1e-15);
        assert_eq!(defaults.claim, None);

        assert!(parse_validate(&argv(&["--windows", "0"])).is_err());
        assert!(parse_validate(&argv(&["--budget", "1MiB"])).is_err());
        assert!(parse_validate(&argv(&["--help"])).unwrap().is_none());
    }

    #[test]
    fn fault_flag_parses_a_plan_and_requires_a_pool_source() {
        let args = parse_generate(&argv(&[
            "--source",
            "pool:model:0.6+model:0.6+model:0.6",
            "--fault",
            "child=1,at=16KiB,kind=stall,ms=400",
        ]))
        .unwrap()
        .unwrap();
        let config = args.engine.engine_config().unwrap();
        let plan = config.fault.expect("plan survives into the config");
        assert_eq!(plan.child, 1);
        assert_eq!(plan.at_bytes, 16 << 10);

        // A malformed plan is a usage error at config-build time…
        let bad = parse_generate(&argv(&["--fault", "kind=stuck"]))
            .unwrap()
            .unwrap();
        assert!(bad.engine.engine_config().is_err());
        // …and a well-formed plan without a pool source is caught by config
        // validation before any worker thread starts.
        let no_pool = parse_generate(&argv(&["--fault", "child=0,kind=stuck"]))
            .unwrap()
            .unwrap();
        let config = no_pool.engine.engine_config().unwrap();
        let error = match Engine::spawn(config) {
            Err(error) => error,
            Ok(_) => panic!("a fault plan without a pool source must be rejected"),
        };
        assert!(error.to_string().contains("pool"));
    }

    #[test]
    fn audit_every_lane_flag_enables_a_sparse_cadence_audit() {
        let args = parse_generate(&argv(&["--audit-every-lane", "--source", "model:0.5"]))
            .unwrap()
            .unwrap();
        assert!(args.engine.audit_every_lane);
        let config = args.engine.engine_config().unwrap();
        assert!(config.audit_every_lane);
        let audit = config.audit.expect("the flag enables the engine audit");
        assert_eq!(audit.window_bits, DEFAULT_AUDIT_WINDOW_BITS);
        assert_eq!(audit.slide_bits, Some(DEFAULT_AUDIT_WINDOW_BITS));
        assert_eq!(
            audit.cadence,
            AuditCadence::EveryKSlides(DEFAULT_EVERY_LANE_CADENCE)
        );

        // The server front-end shares the flag through the same engine parser.
        let serve = parse_serve(&argv(&["--audit-every-lane"]))
            .unwrap()
            .unwrap();
        assert!(serve.engine.engine_config().unwrap().audit_every_lane);

        // Without the flag no audit is configured (the default engine is lean).
        let plain = parse_generate(&argv(&[])).unwrap().unwrap();
        assert!(plain.engine.engine_config().unwrap().audit.is_none());
    }

    #[test]
    fn drbg_flags_parse_into_a_policy_on_both_front_ends() {
        let serve = parse_serve(&argv(&[
            "--drbg",
            "--reseed-bytes",
            "1MiB",
            "--prediction-resistance",
        ]))
        .unwrap()
        .unwrap();
        let policy = serve.serve_config().unwrap().drbg.expect("tier enabled");
        assert_eq!(policy.reseed_after_bytes, 1 << 20);
        assert!(policy.prediction_resistance);
        assert_eq!(
            policy.seed_bits_accounted,
            DrbgPolicy::default().seed_bits_accounted
        );

        let generate = parse_generate(&argv(&["--drbg"])).unwrap().unwrap();
        let policy = generate.drbg.policy().expect("tier enabled");
        assert_eq!(policy, DrbgPolicy::default());

        // Without --drbg no tier is configured…
        let plain = parse_serve(&argv(&[])).unwrap().unwrap();
        assert!(plain.serve_config().unwrap().drbg.is_none());
        // …and tuning flags without it are usage errors, on both front-ends.
        assert!(parse_serve(&argv(&["--reseed-bytes", "1MiB"]))
            .unwrap_err()
            .contains("require --drbg"));
        assert!(parse_generate(&argv(&["--prediction-resistance"]))
            .unwrap_err()
            .contains("require --drbg"));
    }

    #[test]
    fn burst_without_rate_is_a_usage_error() {
        assert!(parse_serve(&argv(&["--burst", "4KiB"]))
            .unwrap_err()
            .contains("--burst requires --rate"));
        assert!(parse_serve(&argv(&["--rate", "1KiB", "--burst", "4KiB"])).is_ok());
    }
}
