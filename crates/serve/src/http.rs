//! Minimal HTTP/1.1 wire handling: request parsing and response writing.
//!
//! This is deliberately a *subset* — exactly what an entropy service needs and
//! nothing more:
//!
//! * requests: method + target + version, a bounded header block, query-string
//!   splitting (no percent-decoding: the API surface is plain ASCII),
//! * responses: status line + headers with either a `Content-Length` body or
//!   `Transfer-Encoding: chunked` streaming via [`ChunkedWriter`],
//! * hard limits on line length and header count so a hostile client cannot balloon
//!   memory.
//!
//! No TLS, no compression, no HTTP/2 — front a real deployment with a terminating
//! proxy (see `docs/operations.md`).

use std::io::{BufRead, Write};

use thiserror::Error;

/// Maximum accepted length of the request line or any header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Maximum accepted number of request headers.
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
pub enum HttpError {
    /// The connection closed before a complete request was read.
    #[error("connection closed mid-request")]
    UnexpectedEof,
    /// A line exceeded [`MAX_LINE_BYTES`] or the header block exceeded
    /// [`MAX_HEADERS`].
    #[error("request exceeds size limits: {0}")]
    TooLarge(&'static str),
    /// The bytes did not form a valid HTTP/1.x request head.
    #[error("malformed request: {0}")]
    Malformed(&'static str),
    /// Reading from the socket failed (timeout, reset, …).
    #[error("socket read failed: {0}")]
    Io(String),
}

/// A parsed request head (this server never reads bodies: `GET`/`HEAD` only).
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `HEAD`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Query parameters in order of appearance, split on `&` and `=`.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Reads one request head from `reader`.
    ///
    /// Returns `Ok(None)` on a clean EOF before any byte of a new request — the
    /// keep-alive "client went away" case.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed requests, oversized heads, or socket failures.
    pub fn read_from(reader: &mut impl BufRead) -> Result<Option<Self>, HttpError> {
        let request_line = match read_line(reader)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => {
                // Tolerate a single stray CRLF between pipelined requests.
                match read_line(reader)? {
                    None => return Ok(None),
                    Some(line) if line.is_empty() => {
                        return Err(HttpError::Malformed("empty request line"))
                    }
                    Some(line) => line,
                }
            }
            Some(line) => line,
        };
        let mut request = parse_request_line(&request_line)?;
        loop {
            let line = read_line(reader)?.ok_or(HttpError::UnexpectedEof)?;
            if line.is_empty() {
                break;
            }
            if request.headers.len() == MAX_HEADERS {
                return Err(HttpError::TooLarge("too many headers"));
            }
            request.headers.push(parse_header_line(&line)?);
        }
        Ok(Some(request))
    }

    /// Attempts to parse one complete request head from the front of `buf`
    /// **without blocking** — the entry point for the nonblocking event loop,
    /// where bytes arrive in whatever fragments the network delivers.
    ///
    /// Returns `Ok(Some((request, consumed)))` once a full head (terminated by an
    /// empty line) is present, where `consumed` is the number of bytes of `buf`
    /// the head occupied; `Ok(None)` means the head is still incomplete and the
    /// caller should read more.  Size limits are enforced *incrementally*: a
    /// partial line already past [`MAX_LINE_BYTES`], or a header block already
    /// past [`MAX_HEADERS`], fails immediately instead of waiting for the
    /// terminator a hostile client will never send.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] / [`HttpError::TooLarge`] exactly as
    /// [`Request::read_from`] would for the same bytes; never `Io` or
    /// `UnexpectedEof` (EOF is the caller's to detect on the socket).
    pub fn parse_head(buf: &[u8]) -> Result<Option<(Self, usize)>, HttpError> {
        let mut cursor = 0usize;
        let mut request: Option<Request> = None;
        let mut blank_skipped = false;
        loop {
            let rest = &buf[cursor..];
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                // Incomplete trailing line: refuse early once it can no longer
                // fit the limit instead of buffering an endless slow drip.
                if rest.len() > MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge("line too long"));
                }
                return Ok(None);
            };
            let mut line = &rest[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..nl - 1];
            }
            if line.len() > MAX_LINE_BYTES {
                return Err(HttpError::TooLarge("line too long"));
            }
            cursor += nl + 1;
            let line =
                std::str::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header"))?;
            if let Some(started) = request.as_mut() {
                if line.is_empty() {
                    break;
                }
                if started.headers.len() == MAX_HEADERS {
                    return Err(HttpError::TooLarge("too many headers"));
                }
                started.headers.push(parse_header_line(line)?);
            } else if line.is_empty() {
                // Tolerate a single stray CRLF between pipelined requests.
                if blank_skipped {
                    return Err(HttpError::Malformed("empty request line"));
                }
                blank_skipped = true;
            } else {
                request = Some(parse_request_line(line)?);
            }
        }
        Ok(request.map(|head| (head, cursor)))
    }

    /// First value of the (case-insensitively named) header, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of the query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this response.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Parses a `METHOD target HTTP/1.x` request line into a header-less [`Request`].
fn parse_request_line(line: &str) -> Result<Request, HttpError> {
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?;
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers: Vec::new(),
    })
}

/// Parses one `Name: value` header line (name lower-cased, both sides trimmed).
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or(HttpError::Malformed("header without colon"))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the terminator.
///
/// Returns `Ok(None)` on EOF before the first byte.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = reader
            .fill_buf()
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::UnexpectedEof);
        }
        let (chunk, found) = match buf.iter().position(|&b| b == b'\n') {
            Some(at) => (&buf[..at], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > MAX_LINE_BYTES {
            return Err(HttpError::TooLarge("line too long"));
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(found);
        reader.consume(consumed);
        if found {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text =
                String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header"))?;
            return Ok(Some(text));
        }
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response head under construction: status plus extra headers.
#[derive(Debug, Clone)]
pub struct ResponseHead {
    /// HTTP status code.
    pub status: u16,
    /// Additional headers (`Content-Type`, `X-PTRNG-*`, `Retry-After`, …).
    pub headers: Vec<(String, String)>,
}

impl ResponseHead {
    /// A head with the given status and no extra headers.
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
        }
    }

    /// Appends a header (builder style).
    #[must_use]
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    fn write_status_and_headers(
        &self,
        writer: &mut impl Write,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(
            writer,
            "Connection: {}\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )
    }
}

/// Writes a complete response with a `Content-Length` body.
///
/// With `head_only` (a `HEAD` request) the length header is still sent but the body
/// bytes are suppressed.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    writer: &mut impl Write,
    head: &ResponseHead,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    head.write_status_and_headers(writer, keep_alive)?;
    write!(writer, "Content-Length: {}\r\n\r\n", body.len())?;
    if !head_only {
        writer.write_all(body)?;
    }
    writer.flush()
}

/// Streams a `Transfer-Encoding: chunked` body: construct with the head, feed
/// [`ChunkedWriter::write_chunk`], terminate with [`ChunkedWriter::finish`].
///
/// Dropping the writer **without** calling `finish` leaves the message unterminated —
/// exactly what an entropy server wants when the engine dies mid-response: the client
/// observes a truncated transfer instead of silently short bytes.
pub struct ChunkedWriter<'a, W: Write> {
    writer: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Writes the status line and headers (plus `Transfer-Encoding: chunked`) and
    /// returns the body writer.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn start(
        writer: &'a mut W,
        head: &ResponseHead,
        keep_alive: bool,
    ) -> std::io::Result<Self> {
        head.write_status_and_headers(writer, keep_alive)?;
        write!(writer, "Transfer-Encoding: chunked\r\n\r\n")?;
        Ok(Self { writer })
    }

    /// Writes one chunk (empty input is a no-op: a zero-length chunk would terminate
    /// the message).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n", bytes.len())?;
        self.writer.write_all(bytes)?;
        write!(self.writer, "\r\n")
    }

    /// Terminates the chunked message and flushes.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(self) -> std::io::Result<()> {
        write!(self.writer, "0\r\n\r\n")?;
        self.writer.flush()
    }
}

/// Appends one chunked-transfer frame carrying `bytes` to `out` (empty input is
/// a no-op: a zero-length chunk would terminate the message).
///
/// The event loop's worker pool renders response bytes into buffers instead of
/// writing sockets directly, so the chunk framing needs a buffer-level encoder
/// alongside the writer-level [`ChunkedWriter`].
pub fn encode_chunk(out: &mut Vec<u8>, bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", bytes.len()).as_bytes());
    out.extend_from_slice(bytes);
    out.extend_from_slice(b"\r\n");
}

/// Appends the terminating zero-length chunk — a chunked message assembled with
/// [`encode_chunk`] is not complete until this trailer is queued.
pub fn encode_chunk_end(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        Request::read_from(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_a_request_with_query_and_headers() {
        let req = parse(
            "GET /entropy?bytes=4096&format=raw HTTP/1.1\r\n\
             Host: localhost:7878\r\n\
             User-Agent: curl/8\r\n\
             \r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/entropy");
        assert_eq!(req.query_param("bytes"), Some("4096"));
        assert_eq!(req.query_param("format"), Some("raw"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("localhost:7878"));
        assert_eq!(req.header("HOST"), Some("localhost:7878"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_connection_close_and_bare_lf() {
        let req = parse("GET / HTTP/1.0\nConnection: close\n\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::UnexpectedEof)
        ));
    }

    #[test]
    fn size_limits_are_enforced() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES));
        assert!(matches!(parse(&long), Err(HttpError::TooLarge(_))));
        let many: String = (0..=MAX_HEADERS).map(|i| format!("H{i}: v\r\n")).collect();
        let many = format!("GET / HTTP/1.1\r\n{many}\r\n");
        assert!(matches!(parse(&many), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn incremental_parse_matches_the_blocking_parser() {
        let head = "GET /entropy?bytes=64 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
        // Every prefix short of the full head is incomplete, never an error.
        for cut in 0..head.len() {
            assert!(
                Request::parse_head(&head.as_bytes()[..cut])
                    .expect("prefixes parse cleanly")
                    .is_none(),
                "cut at {cut}"
            );
        }
        let (request, consumed) = Request::parse_head(head.as_bytes()).unwrap().unwrap();
        assert_eq!(consumed, head.len());
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/entropy");
        assert_eq!(request.query_param("bytes"), Some("64"));
        assert!(request.wants_close());

        // Trailing pipelined bytes are left unconsumed.
        let two = format!("{head}GET /healthz HTTP/1.1\r\n\r\n");
        let (_, consumed) = Request::parse_head(two.as_bytes()).unwrap().unwrap();
        assert_eq!(consumed, head.len());

        // A single stray CRLF before the request line is tolerated, two are not.
        let (request, consumed) = Request::parse_head(b"\r\nGET / HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/");
        assert_eq!(consumed, b"\r\nGET / HTTP/1.1\r\n\r\n".len());
        assert!(matches!(
            Request::parse_head(b"\r\n\r\nGET / HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed("empty request line"))
        ));
    }

    #[test]
    fn incremental_parse_enforces_limits_before_completion() {
        // A partial line already past the limit fails without its terminator:
        // the slow-loris defence must not wait for bytes that never come.
        let drip = format!("GET /{}", "a".repeat(MAX_LINE_BYTES + 1));
        assert!(matches!(
            Request::parse_head(drip.as_bytes()),
            Err(HttpError::TooLarge("line too long"))
        ));
        let many: String = (0..=MAX_HEADERS).map(|i| format!("H{i}: v\r\n")).collect();
        let unterminated = format!("GET / HTTP/1.1\r\n{many}");
        assert!(matches!(
            Request::parse_head(unterminated.as_bytes()),
            Err(HttpError::TooLarge("too many headers"))
        ));
        assert!(matches!(
            Request::parse_head(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed("unsupported HTTP version"))
        ));
        assert!(matches!(
            Request::parse_head(b"GET / HTTP/1.1\r\nNoColon\r\n\r\n"),
            Err(HttpError::Malformed("header without colon"))
        ));
    }

    #[test]
    fn chunk_frames_encode_into_buffers() {
        let mut out = Vec::new();
        encode_chunk(&mut out, b"abcd");
        encode_chunk(&mut out, b"");
        encode_chunk(&mut out, &[0u8; 16]);
        encode_chunk_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("4\r\nabcd\r\n"), "{text}");
        assert!(text.contains("10\r\n"), "hex sizes: {text}");
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn content_length_responses_render() {
        let mut out = Vec::new();
        let head = ResponseHead::new(200).header("Content-Type", "application/json");
        write_response(&mut out, &head, b"{\"ok\":true}", true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &ResponseHead::new(404), b"gone", false, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(
            text.ends_with("\r\n\r\n"),
            "HEAD suppresses the body: {text}"
        );
    }

    #[test]
    fn chunked_responses_frame_and_terminate() {
        let mut out = Vec::new();
        let head = ResponseHead::new(200).header("X-PTRNG-MinEntropy", "0.9973");
        let mut body = ChunkedWriter::start(&mut out, &head, true).unwrap();
        body.write_chunk(b"abcd").unwrap();
        body.write_chunk(b"").unwrap();
        body.write_chunk(&[0u8; 16]).unwrap();
        body.finish().unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("4\r\nabcd\r\n"), "{text}");
        assert!(text.contains("10\r\n"), "hex chunk sizes: {text}");
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
