//! Entropy-as-a-service: an HTTP/1.1 front-end for the sharded generation engine.
//!
//! This crate turns [`ptrng_engine`]'s pool into a network service with the entropy
//! ledger as its **public contract**: every `/entropy` response carries the accounted
//! min-entropy per bit (`X-PTRNG-MinEntropy`) and the full provenance ledger
//! (`X-PTRNG-Ledger`, canonical JSON), and a configuration whose accounting misses
//! the `--min-h` policy is served as an HTTP 503 *with the ledger as the body* — the
//! network analogue of `ptrngd`'s exit-code-2 refusal, as the source paper's
//! dependent-jitter entropy bound demands.
//!
//! Everything is hand-rolled on `std::net` (the build environment has no registry
//! access): [`http`] is a bounded HTTP/1.1 request parser and response/chunked-body
//! writer, [`limiter`] a per-client token bucket denominated in entropy bytes plus a
//! per-IP concurrent-connection gate, [`metrics`] the Prometheus text exposition,
//! [`server`] a nonblocking `poll(2)` event loop (per-connection state machines,
//! slow-loris/idle deadlines) feeding a worker pool for blocking draws, with
//! graceful SIGTERM shutdown, [`loadgen`] the concurrency load-test harness behind
//! the `ptrng-loadgen` bin, and [`cli`] the flag parsing shared by the binaries:
//!
//! * `ptrngd` — the streaming daemon (stdout/file sink), plus `ptrngd serve`,
//! * `ptrng-serve` — the HTTP server (same flags as `ptrngd serve`),
//! * `ptrng-loadgen` — open/closed-loop concurrent load against a running server.
//!
//! See `docs/architecture.md` for where the server sits in the dataflow and
//! `docs/operations.md` for the runbook (flags, status codes, capacity planning).
//!
//! # Quickstart
//!
//! Serve from a fast model source on an ephemeral port and fetch 64 bytes:
//!
//! ```
//! use std::io::{Read, Write};
//! use ptrng_engine::health::HealthConfig;
//! use ptrng_engine::pool::EngineConfig;
//! use ptrng_engine::source::SourceSpec;
//! use ptrng_serve::server::{ServeConfig, Server};
//!
//! # fn main() -> ptrng_serve::Result<()> {
//! let engine = EngineConfig::new(SourceSpec::parse("model")?)
//!     .health(HealthConfig::default().without_startup_battery());
//! let mut config = ServeConfig::new(engine);
//! config.listen = "127.0.0.1:0".to_string();
//!
//! let server = Server::bind(config)?;
//! let addr = server.local_addr()?;
//! let handle = server.shutdown_handle();
//! let serving = std::thread::spawn(move || server.serve());
//!
//! let mut conn = std::net::TcpStream::connect(addr)?;
//! write!(conn, "GET /entropy?bytes=64 HTTP/1.1\r\nConnection: close\r\n\r\n")?;
//! let mut response = Vec::new();
//! conn.read_to_end(&mut response)?;
//! let text = String::from_utf8_lossy(&response);
//! assert!(text.starts_with("HTTP/1.1 200 OK"));
//! assert!(text.contains("X-PTRNG-MinEntropy"));
//!
//! handle.shutdown();
//! serving.join().expect("server thread joins")?;
//! # Ok(())
//! # }
//! ```

// Two justified, SAFETY-commented exceptions: the SIGTERM hookup in `server`
// and the poll(2) declaration in `event` (the build has no `libc` crate).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod conn;
mod event;
pub mod http;
pub mod limiter;
pub mod loadgen;
pub mod metrics;
pub mod server;

use thiserror::Error;

/// Errors produced by the serving layer.
#[derive(Debug, Error)]
#[non_exhaustive]
pub enum ServeError {
    /// The generation engine failed (spawn, health, or drain).
    #[error("engine error: {0}")]
    Engine(#[from] ptrng_engine::EngineError),
    /// A configuration value was out of domain.
    #[error("invalid configuration: {0}")]
    Config(String),
    /// A socket operation failed.
    #[error("i/o error: {0}")]
    Io(#[from] std::io::Error),
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Commonly used items.
pub mod prelude {
    pub use crate::limiter::RateLimiter;
    pub use crate::metrics::ServerMetrics;
    pub use crate::server::{RateLimit, ServeConfig, Server, ShutdownHandle};
    pub use crate::{Result, ServeError};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readable_messages() {
        let e = ServeError::Config("threads must be at least 1".to_string());
        assert!(e.to_string().contains("invalid configuration"));
        let e: ServeError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("i/o error"));
        let e: ServeError = ptrng_engine::EngineError::WorkerPanicked { shard: 1 }.into();
        assert!(e.to_string().contains("engine error"));
    }
}
