//! Server-side counters and the Prometheus text exposition of `/metrics`.
//!
//! The engine already keeps lock-free per-shard counters
//! ([`ptrng_engine::metrics::MetricsSnapshot`]); this module adds the HTTP-layer
//! counters (requests, responses by status, bytes served, rate-limit refusals) and
//! renders both through the shared [`ptrng_obs::TextEncoder`] — the same
//! escaping-correct encoder `ptrngd --stats` uses, so the exposition format rules
//! live in exactly one place.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ptrng_engine::metrics::MetricsSnapshot;
use ptrng_obs::{MetricKind, TextEncoder};

/// HTTP-layer counters, updated lock-free on the request path (the per-status map
/// takes a short mutex: statuses are few and responses are large).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    requests: AtomicU64,
    bytes_served: AtomicU64,
    rate_limited: AtomicU64,
    selftests: AtomicU64,
    selftest_overclaims: AtomicU64,
    responses_by_status: Mutex<BTreeMap<u16, u64>>,
}

impl ServerMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one received (parsed) request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response with the given status.
    pub fn record_response(&self, status: u16) {
        if status == 429 {
            self.rate_limited.fetch_add(1, Ordering::Relaxed);
        }
        *self
            .responses_by_status
            .lock()
            .expect("metrics lock poisoned")
            .entry(status)
            .or_insert(0) += 1;
    }

    /// Counts entropy body bytes handed to clients.
    pub fn record_bytes_served(&self, bytes: u64) {
        self.bytes_served.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one completed `/selftest` battery run (and whether it flagged an
    /// overclaim).
    pub fn record_selftest(&self, overclaim: bool) {
        self.selftests.fetch_add(1, Ordering::Relaxed);
        if overclaim {
            self.selftest_overclaims.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total entropy body bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.load(Ordering::Relaxed)
    }

    /// Total parsed requests so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

/// Renders the engine snapshot plus the server counters into an open encoder.
///
/// `min_entropy_per_bit` is the accounted ledger claim of the conditioned output
/// (`None` while the server is refusing on an entropy deficit — the gauge is then the
/// *refused* accounting, still exported so operators can see how far off it is).
/// The `/metrics` handler appends the latency-histogram families to the same
/// encoder afterwards.
pub fn render_prometheus_into(
    enc: &mut TextEncoder,
    engine: &MetricsSnapshot,
    server: &ServerMetrics,
    min_entropy_per_bit: f64,
    live_shards: usize,
    serving: bool,
) {
    // Engine-level totals.
    enc.scalar(
        "ptrng_raw_bits_total",
        "Raw bits drawn from the noise sources across all shards.",
        MetricKind::Counter,
        engine.total_raw_bits,
    );
    enc.scalar(
        "ptrng_output_bytes_total",
        "Conditioned output bytes published by the engine.",
        MetricKind::Counter,
        engine.total_output_bytes,
    );
    enc.scalar(
        "ptrng_batches_total",
        "Batches published across all shards.",
        MetricKind::Counter,
        engine.total_batches,
    );
    enc.scalar(
        "ptrng_accounted_entropy_bits_total",
        "Accounted min-entropy carried by the published output, in bits.",
        MetricKind::Gauge,
        format_args!("{:.3}", engine.total_accounted_entropy_bits),
    );
    enc.scalar(
        "ptrng_alarms_total",
        "Shard health alarms (RCT, APT, startup battery, thermal collapse).",
        MetricKind::Counter,
        engine.alarms,
    );
    enc.scalar(
        "ptrng_min_entropy_per_output_bit",
        "Accounted min-entropy per conditioned output bit from the entropy ledger.",
        MetricKind::Gauge,
        format_args!("{min_entropy_per_bit:.6}"),
    );
    enc.scalar(
        "ptrng_live_shards",
        "Shards still producing output.",
        MetricKind::Gauge,
        live_shards,
    );
    enc.scalar(
        "ptrng_serving",
        "1 when the engine emits under its entropy policy, 0 when refusing.",
        MetricKind::Gauge,
        u8::from(serving),
    );

    // Per-shard breakdown.
    enc.family(
        "ptrng_shard_output_bytes_total",
        "Output bytes per shard.",
        MetricKind::Counter,
    );
    for shard in &engine.per_shard {
        enc.sample(
            "ptrng_shard_output_bytes_total",
            &[("shard", &shard.shard.to_string())],
            shard.output_bytes,
        );
    }
    enc.family(
        "ptrng_shard_raw_bits_total",
        "Raw source bits per shard.",
        MetricKind::Counter,
    );
    for shard in &engine.per_shard {
        enc.sample(
            "ptrng_shard_raw_bits_total",
            &[("shard", &shard.shard.to_string())],
            shard.raw_bits,
        );
    }

    // Entropy-audit lanes (populated when the engine runs with an audit, or via
    // /selftest's on-demand batteries recorded below).
    if !engine.audits.is_empty() {
        enc.family(
            "ptrng_audit_windows_total",
            "Estimator-battery windows completed per audit lane.",
            MetricKind::Counter,
        );
        for lane in &engine.audits {
            enc.sample(
                "ptrng_audit_windows_total",
                &[("lane", &lane.lane)],
                lane.windows,
            );
        }
        enc.family(
            "ptrng_audit_overclaims_total",
            "Windows whose battery estimate undercut the claim by more than the margin.",
            MetricKind::Counter,
        );
        for lane in &engine.audits {
            enc.sample(
                "ptrng_audit_overclaims_total",
                &[("lane", &lane.lane)],
                lane.overclaims,
            );
        }
        enc.family(
            "ptrng_audit_last_estimate",
            "Battery min-entropy estimate of the most recent audited window, per lane.",
            MetricKind::Gauge,
        );
        for lane in &engine.audits {
            enc.sample(
                "ptrng_audit_last_estimate",
                &[("lane", &lane.lane)],
                format_args!("{:.6}", lane.last_estimate),
            );
        }
    }

    // Pool child lifecycle (populated for pool sources only).
    if !engine.pool_children.is_empty() {
        let child_labels = |entry: &ptrng_engine::metrics::PoolChildSnapshot| {
            (entry.shard.to_string(), entry.status.child.to_string())
        };
        enc.family(
            "ptrng_pool_child_state",
            "Lifecycle lane of each pool child: 0 serving, 1 quarantined, 2 probation.",
            MetricKind::Gauge,
        );
        for entry in &engine.pool_children {
            let (shard, child) = child_labels(entry);
            let code = match entry.status.state.as_str() {
                "quarantined" => 1,
                "probation" => 2,
                _ => 0,
            };
            enc.sample(
                "ptrng_pool_child_state",
                &[("shard", &shard), ("child", &child)],
                code,
            );
        }
        enc.family(
            "ptrng_pool_child_entropy_per_bit",
            "Credited min-entropy per raw bit of each pool child (0 while not serving).",
            MetricKind::Gauge,
        );
        for entry in &engine.pool_children {
            let (shard, child) = child_labels(entry);
            enc.sample(
                "ptrng_pool_child_entropy_per_bit",
                &[("shard", &shard), ("child", &child)],
                format_args!("{:.6}", entry.status.credited_entropy_per_bit),
            );
        }
        enc.family(
            "ptrng_pool_child_quarantines_total",
            "Times each pool child entered quarantine.",
            MetricKind::Counter,
        );
        for entry in &engine.pool_children {
            let (shard, child) = child_labels(entry);
            enc.sample(
                "ptrng_pool_child_quarantines_total",
                &[("shard", &shard), ("child", &child)],
                entry.status.quarantines,
            );
        }
        enc.family(
            "ptrng_pool_child_reinstatements_total",
            "Times each pool child was reinstated after a clean probation.",
            MetricKind::Counter,
        );
        for entry in &engine.pool_children {
            let (shard, child) = child_labels(entry);
            enc.sample(
                "ptrng_pool_child_reinstatements_total",
                &[("shard", &shard), ("child", &child)],
                entry.status.reinstatements,
            );
        }
    }

    // HTTP layer.
    enc.scalar(
        "ptrng_http_requests_total",
        "Parsed HTTP requests.",
        MetricKind::Counter,
        server.requests(),
    );
    enc.scalar(
        "ptrng_http_selftests_total",
        "Completed /selftest estimator-battery runs.",
        MetricKind::Counter,
        server.selftests.load(Ordering::Relaxed),
    );
    enc.scalar(
        "ptrng_http_selftest_overclaims_total",
        "/selftest runs that flagged the ledger claim as overclaimed.",
        MetricKind::Counter,
        server.selftest_overclaims.load(Ordering::Relaxed),
    );
    enc.scalar(
        "ptrng_http_entropy_bytes_served_total",
        "Entropy body bytes handed to clients.",
        MetricKind::Counter,
        server.bytes_served(),
    );
    enc.scalar(
        "ptrng_http_rate_limited_total",
        "Requests refused by the per-client token bucket (HTTP 429).",
        MetricKind::Counter,
        server.rate_limited.load(Ordering::Relaxed),
    );
    enc.family(
        "ptrng_http_responses_total",
        "Responses by HTTP status code.",
        MetricKind::Counter,
    );
    for (status, count) in server
        .responses_by_status
        .lock()
        .expect("metrics lock poisoned")
        .iter()
    {
        enc.sample(
            "ptrng_http_responses_total",
            &[("status", &status.to_string())],
            count,
        );
    }
}

/// Renders the engine snapshot plus the server counters as Prometheus text (the
/// counter families only; `/metrics` composes the histogram families onto the
/// same encoder via [`render_prometheus_into`]).
pub fn render_prometheus(
    engine: &MetricsSnapshot,
    server: &ServerMetrics,
    min_entropy_per_bit: f64,
    live_shards: usize,
    serving: bool,
) -> String {
    let mut enc = TextEncoder::new();
    render_prometheus_into(
        &mut enc,
        engine,
        server,
        min_entropy_per_bit,
        live_shards,
        serving,
    );
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrng_engine::metrics::ShardSnapshot;

    #[test]
    fn rendering_contains_every_family_and_label() {
        let per_shard: Vec<ShardSnapshot> = (0..2)
            .map(|shard| ShardSnapshot {
                shard,
                raw_bits: 8192,
                output_bytes: 1024,
                batches: 1,
                entropy_per_output_bit: 0.9973,
                accounted_entropy_bits: 1024.0 * 8.0 * 0.9973,
            })
            .collect();
        let engine = MetricsSnapshot {
            total_raw_bits: 16384,
            total_output_bytes: 2048,
            total_batches: 2,
            total_accounted_entropy_bits: per_shard.iter().map(|s| s.accounted_entropy_bits).sum(),
            alarms: 0,
            audits: vec![ptrng_engine::audit::AuditSnapshot {
                lane: "raw".to_string(),
                claim: 0.9973,
                margin: 0.25,
                windows: 3,
                overclaims: 1,
                last_estimate: 0.8123,
                last_weakest: "compression".to_string(),
            }],
            pool_children: vec![
                ptrng_engine::metrics::PoolChildSnapshot {
                    shard: 0,
                    status: ptrng_engine::source::ChildStatus {
                        child: 0,
                        label: "model(p1=0.600)".to_string(),
                        state: "serving".to_string(),
                        entropy_per_bit: 0.7370,
                        credited_entropy_per_bit: 0.7370,
                        quarantines: 0,
                        reinstatements: 0,
                    },
                },
                ptrng_engine::metrics::PoolChildSnapshot {
                    shard: 0,
                    status: ptrng_engine::source::ChildStatus {
                        child: 1,
                        label: "ero(D=4)".to_string(),
                        state: "quarantined".to_string(),
                        entropy_per_bit: 0.4,
                        credited_entropy_per_bit: 0.0,
                        quarantines: 2,
                        reinstatements: 1,
                    },
                },
            ],
            per_shard,
        };
        let server = ServerMetrics::new();
        server.record_request();
        server.record_response(200);
        server.record_response(429);
        server.record_bytes_served(4096);
        server.record_selftest(false);
        server.record_selftest(true);

        let text = render_prometheus(&engine, &server, 0.9973, 2, true);
        for family in [
            "ptrng_raw_bits_total 16384",
            "ptrng_output_bytes_total 2048",
            "ptrng_min_entropy_per_output_bit 0.997300",
            "ptrng_live_shards 2",
            "ptrng_serving 1",
            "ptrng_shard_output_bytes_total{shard=\"1\"} 1024",
            "ptrng_http_requests_total 1",
            "ptrng_http_entropy_bytes_served_total 4096",
            "ptrng_http_rate_limited_total 1",
            "ptrng_http_responses_total{status=\"200\"} 1",
            "ptrng_http_responses_total{status=\"429\"} 1",
            "ptrng_audit_windows_total{lane=\"raw\"} 3",
            "ptrng_audit_overclaims_total{lane=\"raw\"} 1",
            "ptrng_audit_last_estimate{lane=\"raw\"} 0.812300",
            "ptrng_http_selftests_total 2",
            "ptrng_http_selftest_overclaims_total 1",
            "ptrng_pool_child_state{shard=\"0\",child=\"0\"} 0",
            "ptrng_pool_child_state{shard=\"0\",child=\"1\"} 1",
            "ptrng_pool_child_entropy_per_bit{shard=\"0\",child=\"0\"} 0.737000",
            "ptrng_pool_child_entropy_per_bit{shard=\"0\",child=\"1\"} 0.000000",
            "ptrng_pool_child_quarantines_total{shard=\"0\",child=\"1\"} 2",
            "ptrng_pool_child_reinstatements_total{shard=\"0\",child=\"1\"} 1",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        // Exposition-format hygiene: HELP/TYPE precede each family.
        assert!(text.contains("# TYPE ptrng_raw_bits_total counter"));
        assert!(text.contains("# HELP ptrng_serving "));
    }
}
