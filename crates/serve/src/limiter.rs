//! Per-client token-bucket rate limiting, denominated in entropy **bytes**.
//!
//! Entropy is a metered resource — the engine produces a bounded number of accounted
//! bytes per second — so the limiter charges what a request *costs* (its byte count),
//! not merely that it happened.  Each client IP owns one bucket of `burst_bytes`
//! capacity refilled at `bytes_per_sec`; a request either fits its cost in the bucket
//! now or is refused with the number of seconds after which it would fit
//! (the `Retry-After` value of the HTTP 429).

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on tracked clients; beyond it, full (idle) buckets are evicted first.
const MAX_TRACKED_CLIENTS: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// A thread-safe token-bucket rate limiter keyed by client IP.
#[derive(Debug)]
pub struct RateLimiter {
    bytes_per_sec: f64,
    burst_bytes: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// Creates a limiter granting `bytes_per_sec` sustained and `burst_bytes` burst
    /// capacity per client (both must be positive; a request larger than the burst
    /// can never be admitted and is refused with the time it would take to earn the
    /// missing tokens).
    pub fn new(bytes_per_sec: u64, burst_bytes: u64) -> Result<Self, String> {
        if bytes_per_sec == 0 || burst_bytes == 0 {
            return Err("rate limits must be positive (omit the limiter for unlimited)".into());
        }
        Ok(Self {
            bytes_per_sec: bytes_per_sec as f64,
            burst_bytes: burst_bytes as f64,
            buckets: Mutex::new(HashMap::new()),
        })
    }

    /// Tries to charge `cost` bytes to `client` at time `now`.
    ///
    /// # Errors
    ///
    /// Returns the seconds until the charge would succeed (the `Retry-After` hint).
    pub fn try_acquire(&self, client: IpAddr, cost: u64, now: Instant) -> Result<(), f64> {
        let cost = cost as f64;
        let mut buckets = self.buckets.lock().expect("limiter lock poisoned");
        if buckets.len() >= MAX_TRACKED_CLIENTS && !buckets.contains_key(&client) {
            // Evict clients whose bucket would be full *after* refill: tokens are
            // only updated lazily inside charges, so an idle client's stored count
            // is stale and must be projected to `now` before comparing.
            let (rate, burst) = (self.bytes_per_sec, self.burst_bytes);
            buckets.retain(|_, b| {
                let idle = now.saturating_duration_since(b.refilled).as_secs_f64();
                b.tokens + idle * rate < burst
            });
        }
        let bucket = buckets.entry(client).or_insert(Bucket {
            tokens: self.burst_bytes,
            refilled: now,
        });
        // Refill lazily; `saturating_duration_since` tolerates out-of-order `now`s
        // from racing threads.
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.bytes_per_sec).min(self.burst_bytes);
        bucket.refilled = now;
        if cost <= bucket.tokens {
            bucket.tokens -= cost;
            Ok(())
        } else {
            Err((cost - bucket.tokens) / self.bytes_per_sec)
        }
    }

    /// Number of client buckets currently tracked (bounded by eviction of
    /// refilled-to-full idle buckets once the map reaches its cap).
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().expect("limiter lock poisoned").len()
    }
}

/// Per-IP **concurrent-connection** fairness, layered under the byte-denominated
/// [`RateLimiter`]: the token bucket prices what a client *draws*, the gate caps
/// how many sockets it may *hold open* at once — the resource a slow-loris or
/// idle-connection flood actually consumes on an event-loop server.
#[derive(Debug)]
pub struct ConnectionGate {
    max_per_ip: usize,
    counts: Mutex<HashMap<IpAddr, usize>>,
}

impl ConnectionGate {
    /// A gate admitting at most `max_per_ip` concurrent connections per client
    /// IP; `0` disables the cap (every client admitted).
    pub fn new(max_per_ip: usize) -> Self {
        Self {
            max_per_ip,
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// Registers one connection for `client`; `false` means the client is at its
    /// cap and the connection must be refused (nothing was registered).
    pub fn try_register(&self, client: IpAddr) -> bool {
        if self.max_per_ip == 0 {
            return true;
        }
        let mut counts = self.counts.lock().expect("gate lock poisoned");
        let held = counts.entry(client).or_insert(0);
        if *held >= self.max_per_ip {
            return false;
        }
        *held += 1;
        true
    }

    /// Releases one previously registered connection for `client`.
    pub fn release(&self, client: IpAddr) {
        if self.max_per_ip == 0 {
            return;
        }
        let mut counts = self.counts.lock().expect("gate lock poisoned");
        if let Some(held) = counts.get_mut(&client) {
            *held = held.saturating_sub(1);
            if *held == 0 {
                counts.remove(&client);
            }
        }
    }

    /// Connections currently registered for `client`.
    pub fn active(&self, client: IpAddr) -> usize {
        self.counts
            .lock()
            .expect("gate lock poisoned")
            .get(&client)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_is_granted_then_sustained_rate_applies() {
        let limiter = RateLimiter::new(1000, 4000).unwrap();
        let t0 = Instant::now();
        // The full burst fits immediately…
        assert!(limiter.try_acquire(ip(1), 4000, t0).is_ok());
        // …then an immediate follow-up is refused with a usable retry hint.
        let retry = limiter.try_acquire(ip(1), 1000, t0).unwrap_err();
        assert!((retry - 1.0).abs() < 1e-9, "{retry}");
        // After the hinted wait, the charge succeeds.
        let t1 = t0 + Duration::from_secs_f64(retry);
        assert!(limiter.try_acquire(ip(1), 1000, t1).is_ok());
    }

    #[test]
    fn clients_are_isolated() {
        let limiter = RateLimiter::new(100, 100).unwrap();
        let t0 = Instant::now();
        assert!(limiter.try_acquire(ip(1), 100, t0).is_ok());
        assert!(limiter.try_acquire(ip(1), 1, t0).is_err());
        assert!(limiter.try_acquire(ip(2), 100, t0).is_ok());
    }

    #[test]
    fn refill_caps_at_the_burst() {
        let limiter = RateLimiter::new(1000, 2000).unwrap();
        let t0 = Instant::now();
        assert!(limiter.try_acquire(ip(3), 2000, t0).is_ok());
        // An hour later the bucket holds one burst, not an hour of rate.
        let t1 = t0 + Duration::from_secs(3600);
        assert!(limiter.try_acquire(ip(3), 2000, t1).is_ok());
        assert!(limiter.try_acquire(ip(3), 1, t1).is_err());
    }

    #[test]
    fn oversized_requests_report_the_earn_time() {
        let limiter = RateLimiter::new(100, 500).unwrap();
        let t0 = Instant::now();
        // 700 > burst 500: 200 missing tokens at 100 B/s → 2 s (the bucket being
        // full, the request still can never fit — callers cap requests separately).
        let retry = limiter.try_acquire(ip(4), 700, t0).unwrap_err();
        assert!((retry - 2.0).abs() < 1e-9, "{retry}");
    }

    #[test]
    fn idle_clients_are_evicted_once_the_map_fills() {
        let limiter = RateLimiter::new(1000, 1000).unwrap();
        let t0 = Instant::now();
        // Fill the map: every client spends a token, so every stored count is
        // stale-below-burst.
        for i in 0..super::MAX_TRACKED_CLIENTS as u32 {
            let client = IpAddr::V4(Ipv4Addr::from(0x0a00_0000 + i));
            assert!(limiter.try_acquire(client, 1, t0).is_ok());
        }
        assert_eq!(limiter.tracked_clients(), super::MAX_TRACKED_CLIENTS);
        // Ten seconds later every idle bucket has refilled to the burst; a new
        // client (outside the 10.0.0.0/8 range above) must trigger eviction
        // instead of growing the map past the cap.
        let t1 = t0 + Duration::from_secs(10);
        let newcomer = IpAddr::V4(Ipv4Addr::new(192, 168, 0, 1));
        assert!(limiter.try_acquire(newcomer, 1, t1).is_ok());
        assert_eq!(
            limiter.tracked_clients(),
            1,
            "projected-full idle buckets are evicted"
        );
    }

    #[test]
    fn active_clients_survive_eviction() {
        let limiter = RateLimiter::new(10, 1000).unwrap();
        let t0 = Instant::now();
        // One busy client with a fully drained bucket (needs 100 s to refill)…
        assert!(limiter.try_acquire(ip(1), 1000, t0).is_ok());
        // …and a map full of one-shot clients (each needs 0.1 s to refill).
        for i in 1..super::MAX_TRACKED_CLIENTS as u32 {
            let client = IpAddr::V4(Ipv4Addr::from(0x0b00_0000 + i));
            assert!(limiter.try_acquire(client, 1, t0).is_ok());
        }
        // Ten seconds later the one-shot buckets are projected full and evicted,
        // but the busy client's debt is remembered.
        let t1 = t0 + Duration::from_secs(10);
        assert!(limiter.try_acquire(ip(2), 1, t1).is_ok());
        assert_eq!(limiter.tracked_clients(), 2, "busy client + new client");
        assert!(
            limiter.try_acquire(ip(1), 1000, t1).is_err(),
            "the surviving bucket still carries its spent budget"
        );
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(RateLimiter::new(0, 100).is_err());
        assert!(RateLimiter::new(100, 0).is_err());
    }

    #[test]
    fn connection_gate_caps_per_ip_and_releases() {
        let gate = ConnectionGate::new(2);
        assert!(gate.try_register(ip(1)));
        assert!(gate.try_register(ip(1)));
        assert!(!gate.try_register(ip(1)), "third connection refused");
        assert!(gate.try_register(ip(2)), "other clients unaffected");
        assert_eq!(gate.active(ip(1)), 2);
        gate.release(ip(1));
        assert_eq!(gate.active(ip(1)), 1);
        assert!(gate.try_register(ip(1)), "released slot is reusable");
        gate.release(ip(1));
        gate.release(ip(1));
        assert_eq!(gate.active(ip(1)), 0, "entries drain back out of the map");
        gate.release(ip(1)); // over-release is a no-op, never an underflow
        assert_eq!(gate.active(ip(1)), 0);
    }

    #[test]
    fn zero_cap_disables_the_gate() {
        let gate = ConnectionGate::new(0);
        for _ in 0..10_000 {
            assert!(gate.try_register(ip(9)));
        }
        assert_eq!(gate.active(ip(9)), 0, "uncapped gates track nothing");
    }
}
