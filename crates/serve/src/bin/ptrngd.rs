//! `ptrngd` — stream entropy from a sharded simulated P-TRNG to stdout or a file,
//! or serve it over HTTP with the `serve` subcommand.
//!
//! ```text
//! ptrngd --shards 4 --source ero:16 --budget 1MiB > random.bin
//! ptrngd serve --listen 127.0.0.1:7878 --conditioner sha256 --min-h 0.997
//! ptrngd validate --source ero:16 --margin 0.25
//! ```
//!
//! Exit codes: 0 on success, 1 on usage/configuration errors, 2 when a health alarm
//! or the entropy-deficit emission policy terminated generation, 3 when `validate`
//! found the entropy claim overclaimed.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => ptrng_serve::cli::run_serve(&argv[1..]),
        Some("validate") => ptrng_serve::cli::run_validate(&argv[1..]),
        _ => ptrng_serve::cli::run_generate(&argv),
    }
}
