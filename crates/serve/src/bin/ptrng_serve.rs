//! `ptrng-serve` — entropy-as-a-service over HTTP/1.1 (alias of `ptrngd serve`).
//!
//! ```text
//! ptrng-serve --listen 127.0.0.1:7878 --conditioner sha256 --min-h 0.997
//! curl -sD- "http://127.0.0.1:7878/entropy?bytes=65536" -o entropy.bin
//! ```
//!
//! SIGTERM/SIGINT drain in-flight responses, shut the engine down and exit 0.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    ptrng_serve::cli::run_serve(&argv)
}
