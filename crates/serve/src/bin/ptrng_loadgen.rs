//! `ptrng-loadgen` — concurrency load generation against a running entropy server.
//!
//! ```text
//! # 512 simultaneous keep-alive clients, 2 requests each (closed loop):
//! ptrng-loadgen --target 127.0.0.1:7878 --path "/random?bytes=4096" --connections 512
//!
//! # 200 arrivals/s for 10 s, fresh connection each (open loop):
//! ptrng-loadgen --target 127.0.0.1:7878 --open --rate 200 --duration 10
//! ```
//!
//! Prints one JSON report to stdout and exits 0 only when the run passed: every
//! connection connected, no transport errors, and no 5xx responses — so a CI load
//! smoke is just this bin's exit code.

use std::process::ExitCode;
use std::time::Duration;

use ptrng_serve::loadgen::{run, LoadgenConfig, Mode};

const USAGE: &str = "\
ptrng-loadgen — concurrency load generation against a running entropy server

USAGE:
  ptrng-loadgen --target HOST:PORT [OPTIONS]

OPTIONS:
  --target HOST:PORT   server address (required)
  --path PATH          request path+query        [default: /random?bytes=4096]
  --connections N      concurrent connections (closed) / workers (open)
                                                 [default: 256]
  --requests N         keep-alive requests per connection, closed loop
                                                 [default: 2]
  --open               open-loop mode: scheduled arrivals, fresh connections
  --rate R             open-loop arrivals per second          [default: 100]
  --duration SECS      open-loop scheduling horizon           [default: 5]
  -h, --help           this help

EXIT STATUS:
  0  the run passed (all connected, no errors, no 5xx)
  1  the run failed (the JSON report says why)
  2  bad usage
";

fn parse(argv: &[String]) -> Result<LoadgenConfig, String> {
    let mut target: Option<String> = None;
    let mut path = "/random?bytes=4096".to_string();
    let mut connections = 256usize;
    let mut requests = 2usize;
    let mut open = false;
    let mut rate = 100.0f64;
    let mut duration = Duration::from_secs(5);
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--target" => target = Some(value("--target")?.clone()),
            "--path" => path = value("--path")?.clone(),
            "--connections" => {
                connections = value("--connections")?
                    .parse()
                    .map_err(|_| "--connections must be a positive integer".to_string())?;
            }
            "--requests" => {
                requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests must be a positive integer".to_string())?;
            }
            "--open" => open = true,
            "--rate" => {
                rate = value("--rate")?
                    .parse()
                    .map_err(|_| "--rate must be a number".to_string())?;
            }
            "--duration" => {
                let secs: f64 = value("--duration")?
                    .parse()
                    .map_err(|_| "--duration must be seconds".to_string())?;
                duration = Duration::from_secs_f64(secs);
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let target = target.ok_or_else(|| "--target is required".to_string())?;
    if connections == 0 || requests == 0 {
        return Err("--connections and --requests must be at least 1".to_string());
    }
    if open && (!rate.is_finite() || rate <= 0.0) {
        return Err("--rate must be positive".to_string());
    }
    Ok(LoadgenConfig {
        target,
        path,
        connections,
        requests_per_conn: requests,
        mode: if open {
            Mode::Open {
                rate_per_sec: rate,
                duration,
            }
        } else {
            Mode::Closed
        },
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse(&argv) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("ptrng-loadgen: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = run(&config);
    println!("{}", report.to_json());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
