//! Ablation: the two `σ²_N` estimators — the hardware-faithful counter circuit (Eq. 12,
//! quantized) vs the period-domain evaluation of Eq. 4 — at the same accumulation depth.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng_measure::circuit::DifferentialCircuit;
use ptrng_osc::phase::PhaseNoiseModel;

fn bench_sn_estimators(c: &mut Criterion) {
    // Exaggerated thermal jitter so the counter estimator operates above its
    // quantization floor (same regime as the circuit unit tests).
    let per_osc = PhaseNoiseModel::thermal_only(5.0e5, 1.0e8).expect("valid model");
    let circuit = DifferentialCircuit::new(per_osc, per_osc);
    let mut group = c.benchmark_group("ablation/sn_estimator");
    group.sample_size(10);
    group.bench_function("counter_circuit_n100_x200", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            circuit
                .measure_counters(&mut rng, 100, 200)
                .expect("counter acquisition succeeds")
        })
    });
    group.bench_function("period_domain_n100_20k_periods", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            circuit
                .measure_period_domain(&mut rng, &[100], 20_000)
                .expect("period-domain acquisition succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sn_estimators);
criterion_main!(benches);
