//! EQ11 benchmark: closed-form evaluation of `σ²_N` (Eq. 11) versus the numerical
//! quadrature of the spectral integral (Eq. 9).

use criterion::{criterion_group, criterion_main, Criterion};

use ptrng_osc::model::AccumulationModel;
use ptrng_osc::phase::PhaseNoiseModel;

fn bench_closed_form_vs_numeric(c: &mut Criterion) {
    let acc = AccumulationModel::new(PhaseNoiseModel::date14_experiment());
    let mut group = c.benchmark_group("eq11");
    group.bench_function("closed_form_30k_depths", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for n in 1..=30_000usize {
                total += acc.sigma2_n(n);
            }
            total
        })
    });
    group.sample_size(10);
    group.bench_function("numeric_integral_single_depth", |b| {
        b.iter(|| acc.sigma2_n_numeric(5_354).expect("quadrature succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench_closed_form_vs_numeric);
criterion_main!(benches);
