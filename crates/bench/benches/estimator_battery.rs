//! ESTIMATOR benchmark: throughput of the SP 800-90B §6.3 non-IID battery.
//!
//! The battery is the audit hot path: `ptrngd validate`, the `/selftest` endpoint
//! and the in-engine `EntropyAudit` all run it over whole windows of output bits,
//! so its cost decides how often a deployment can afford to re-audit its ledger.
//! Three sweeps: each estimator alone on one default-sized window (which member
//! dominates), the full battery across window sizes (how cost scales), and the
//! battery on a biased stream (degenerate inputs shift work into the tuple
//! estimators' repeated-substring scans).
//!
//! `cargo run --release -p ptrng-bench --bin engine_snapshot` records the headline
//! numbers into `BENCH_ENGINE.json` (`estimators` block, schema v4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ptrng_ais::estimators::tuple::t_tuple_and_lrs_estimates_reference;
use ptrng_ais::estimators::{
    collision_estimate, compression_estimate, counting_estimates, lag_estimate, markov_estimate,
    mcv_estimate, multi_mcw_estimate, t_tuple_and_lrs_estimates, EstimatorBattery,
};

fn bits(len: usize, p_one: f64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| u8::from(rng.gen_bool(p_one))).collect()
}

fn estimator_sweep(c: &mut Criterion) {
    let window = bits(1 << 17, 0.5, 1);
    let mut group = c.benchmark_group("estimator");
    type Estimator = fn(&[u8]) -> ptrng_ais::Result<ptrng_ais::estimators::EstimatorResult>;
    let members: [(&str, Estimator); 6] = [
        ("mcv", mcv_estimate),
        ("collision", collision_estimate),
        ("markov", markov_estimate),
        ("compression", compression_estimate),
        ("multi_mcw", multi_mcw_estimate),
        ("lag", lag_estimate),
    ];
    for (name, estimate) in members {
        group.bench_function(name, |b| {
            b.iter(|| estimate(&window).expect("estimator runs"));
        });
    }
    // The tuple pair shares one suffix-array construction, so it is measured as
    // one unit, exactly as the battery runs it.
    group.bench_function("t_tuple_and_lrs", |b| {
        b.iter(|| t_tuple_and_lrs_estimates(&window).expect("estimators run"));
    });
    // Regression guard for the suffix-array rewrite: the per-width hash-map scan
    // it replaced stays benchmarked so a future change can't silently hand the
    // win back (the SA path is the `t_tuple_and_lrs` entry above).
    group.bench_function("t_tuple_and_lrs_reference", |b| {
        b.iter(|| t_tuple_and_lrs_estimates_reference(&window).expect("estimators run"));
    });
    // The streaming audit's steady-state cost on a cadenced lane: the three
    // counting members in one fused pass.
    group.bench_function("counting_fused", |b| {
        b.iter(|| counting_estimates(&window).expect("estimators run"));
    });
    group.finish();
}

fn battery_window_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("battery");
    for exponent in [14usize, 16, 17] {
        let window = bits(1 << exponent, 0.5, 2);
        group.bench_with_input(
            BenchmarkId::new("ideal", format!("2^{exponent}")),
            &window,
            |b, window| b.iter(|| EstimatorBattery::run(window).expect("battery runs")),
        );
    }
    // Biased input: longer repeated substrings push the tuple estimators harder.
    let biased = bits(1 << 16, 0.8, 3);
    group.bench_with_input(
        BenchmarkId::new("biased_p08", "2^16"),
        &biased,
        |b, window| b.iter(|| EstimatorBattery::run(window).expect("battery runs")),
    );
    group.finish();
}

criterion_group!(benches, estimator_sweep, battery_window_sweep);
criterion_main!(benches);
