//! ENGINE benchmark: end-to-end throughput of the sharded generation runtime.
//!
//! Two sweeps: the calibrated stochastic-model source isolates the runtime overhead
//! (sharding, health monitoring, packing, channel) and shows multi-shard scaling; the
//! physically-simulated eRO-TRNG shows the cost of the edge-level simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ptrng_engine::health::HealthConfig;
use ptrng_engine::pool::{Engine, EngineConfig};
use ptrng_engine::source::{JitterProfile, SourceSpec};

fn stream_budget(spec: SourceSpec, shards: usize, budget: u64) -> usize {
    let config = EngineConfig::new(spec)
        .shards(shards)
        .seed(1)
        .budget_bytes(Some(budget))
        .health(HealthConfig::default().without_startup_battery());
    let mut engine = Engine::spawn(config).expect("engine spawns");
    let bytes = engine.read_to_end().expect("healthy stream");
    engine.join().expect("workers join");
    bytes.len()
}

fn bench_model_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/model_1MiB");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let n = stream_budget(SourceSpec::model(0.5).unwrap(), shards, 1 << 20);
                    assert_eq!(n, 1 << 20);
                    n
                })
            },
        );
    }
    group.finish();
}

fn bench_ero_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/ero_div8_64KiB");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let spec = SourceSpec::ero(8, JitterProfile::Strong).unwrap();
                    let n = stream_budget(spec, shards, 64 << 10);
                    assert_eq!(n, 64 << 10);
                    n
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_scaling, bench_ero_scaling);
criterion_main!(benches);
