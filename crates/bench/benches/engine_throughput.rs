//! ENGINE benchmark: end-to-end throughput of the sharded generation runtime.
//!
//! Three sweeps: the calibrated stochastic-model source isolates the runtime overhead
//! (sharding, health monitoring, packing, channel) and shows multi-shard scaling; the
//! physically-simulated eRO-TRNG shows the cost of the edge-level simulation itself,
//! at the CLI-default division 16 and the smaller division 8.
//!
//! Trajectory (1-CPU container, single shard, `ero:16:strong`): PR 1's per-sample
//! scalar pipeline streamed ~0.09 MB/s; the PR 2 block pipeline (telescoped thermal
//! sampler + incremental bit packing + zero-copy post-processing) streams ~1.1 MB/s.
//! `cargo run --release -p ptrng-bench --bin engine_snapshot` regenerates the numbers
//! into `BENCH_ENGINE.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ptrng_engine::health::HealthConfig;
use ptrng_engine::pool::{Engine, EngineConfig};
use ptrng_engine::source::{JitterProfile, SourceSpec};

fn stream_budget(spec: SourceSpec, shards: usize, budget: u64) -> usize {
    let config = EngineConfig::new(spec)
        .shards(shards)
        .seed(1)
        .budget_bytes(Some(budget))
        .health(HealthConfig::default().without_startup_battery());
    let mut engine = Engine::spawn(config).expect("engine spawns");
    let bytes = engine.read_to_end().expect("healthy stream");
    engine.join().expect("workers join");
    bytes.len()
}

fn bench_model_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/model_1MiB");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let n = stream_budget(SourceSpec::model(0.5).unwrap(), shards, 1 << 20);
                    assert_eq!(n, 1 << 20);
                    n
                })
            },
        );
    }
    group.finish();
}

fn bench_ero_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/ero_div8_64KiB");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let spec = SourceSpec::ero(8, JitterProfile::Strong).unwrap();
                    let n = stream_budget(spec, shards, 64 << 10);
                    assert_eq!(n, 64 << 10);
                    n
                })
            },
        );
    }
    group.finish();
}

fn bench_ero_default_division(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/ero_div16_256KiB");
    group.sample_size(10);
    group.bench_function("1shard", |b| {
        b.iter(|| {
            let spec = SourceSpec::ero(16, JitterProfile::Strong).unwrap();
            let n = stream_budget(spec, 1, 256 << 10);
            assert_eq!(n, 256 << 10);
            n
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_model_scaling,
    bench_ero_scaling,
    bench_ero_default_division
);
criterion_main!(benches);
