//! PERF benchmarks for the block-based generation pipeline introduced with the FFT
//! overlap-save flicker path: each group pits the fast block implementation against the
//! retained scalar/windowed reference so regressions in either direction are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use ptrng_engine::pool::ConditionerSpec;
use ptrng_engine::source::{JitterProfile, THERMAL_SWEEP_DEPTHS};
use ptrng_noise::flicker::FlickerNoise;
use ptrng_noise::NoiseSource;
use ptrng_stats::sn::{sigma2_n_sweep, sigma2_n_sweep_windowed, SnSampling};
use ptrng_trng::ero::{EroTrng, EroTrngConfig};

fn bench_flicker_fill_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("block/flicker_fill_block_32k");
    group.sample_size(10);
    let len = 1usize << 15;
    for (name, memory, fft) in [
        ("fft_4096", 4096usize, true),
        ("scalar_4096", 4096, false),
        ("fft_1024", 1024, true),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(memory, fft), |b, _| {
            let mut src = FlickerNoise::new(1.0, 1.0, 1.0e6, memory).expect("valid filter");
            let mut out = vec![0.0; len];
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                src.reset();
                if fft {
                    src.fill_block(&mut rng, &mut out);
                } else {
                    src.fill_scalar(&mut rng, &mut out);
                }
                out[len - 1]
            })
        });
    }
    group.finish();
}

/// The engine's `strong` jitter profile at the given division.
fn strong_config(division: u32) -> EroTrngConfig {
    JitterProfile::Strong
        .ero_config(division)
        .expect("valid profile")
}

fn bench_ero_fill_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("block/ero_fill_bits_8k");
    group.sample_size(10);
    for division in [8u32, 16] {
        let trng = EroTrng::new(strong_config(division)).expect("valid config");
        group.bench_with_input(
            BenchmarkId::new("telescoped", division),
            &trng,
            |b, trng| {
                let mut sampler = trng.sampler().expect("sampler builds");
                let mut rng = StdRng::seed_from_u64(7);
                let mut bits = vec![0u8; 8192];
                b.iter(|| {
                    sampler.fill_bits(&mut rng, &mut bits).expect("bits flow");
                    bits[0]
                })
            },
        );
    }
    // The record-based path (flicker-capable) at the paper's configuration.
    let trng = EroTrng::new(EroTrngConfig::date14_experiment(16)).expect("valid config");
    group.bench_with_input(BenchmarkId::new("record_date14", 16), &trng, |b, trng| {
        let mut sampler = trng.sampler().expect("sampler builds");
        let mut rng = StdRng::seed_from_u64(7);
        let mut bits = vec![0u8; 1024];
        b.iter(|| {
            sampler.fill_bits(&mut rng, &mut bits).expect("bits flow");
            bits[0]
        })
    });
    group.finish();
}

/// Streaming cost of the conditioning stages on a fixed 128-kibibit raw record:
/// the algebraic correctors, the SHA-256 vetted conditioner and a composed chain,
/// all through the engine-facing `ConditionerSpec → ConditioningChain` path with
/// reused output scratch (the shard worker's steady state).
fn bench_conditioning_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("block/conditioning_128k");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(13);
    let bits: Vec<u8> = (0..1 << 17).map(|_| (rng.next_u32() & 1) as u8).collect();
    for spec_text in ["xor:4", "vn", "sha256:2", "xor:2,sha256:2"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec_text),
            &spec_text,
            |b, spec_text| {
                let mut chain = ConditionerSpec::parse(spec_text)
                    .expect("valid spec")
                    .build()
                    .expect("chain builds");
                let mut out = Vec::new();
                b.iter(|| {
                    out.clear();
                    chain.process(&bits, &mut out).expect("bits flow");
                    out.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_sigma2_n_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("block/sigma2_n_sweep_32k");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    let mut jitter = vec![0.0; 1 << 15];
    ptrng_noise::white::fill_standard_normal(&mut rng, &mut jitter);
    let depths = THERMAL_SWEEP_DEPTHS;
    group.bench_function("fused_prefix", |b| {
        b.iter(|| sigma2_n_sweep(&jitter, &depths, SnSampling::Overlapping).expect("sweep fits"))
    });
    group.bench_function("windowed_reference", |b| {
        b.iter(|| {
            sigma2_n_sweep_windowed(&jitter, &depths, SnSampling::Overlapping).expect("sweep fits")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flicker_fill_block,
    bench_ero_fill_bits,
    bench_conditioning_stages,
    bench_sigma2_n_sweep
);
criterion_main!(benches);
