//! ENTROPY benchmark: cost of the model entropy bounds (naive vs flicker-aware) and of
//! the empirical estimators (Coron T8, Markov rate) they are compared against.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ptrng_ais::procedure_b::t8_entropy_with;
use ptrng_trng::entropy::{block_entropy, markov_entropy_rate};
use ptrng_trng::stochastic::EntropyModel;

fn bench_model_bounds(c: &mut Criterion) {
    let model = EntropyModel::date14_experiment();
    c.bench_function("entropy/model_bounds_1k_depths", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in (1_000..=1_000_000).step_by(1_000) {
                acc += model.entropy_bound_naive(n) - model.entropy_bound_thermal(n);
            }
            acc
        })
    });
}

fn bench_empirical_estimators(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let bits: Vec<u8> = (0..200_000).map(|_| rng.gen_range(0..=1u8)).collect();
    let mut group = c.benchmark_group("entropy/empirical");
    group.sample_size(20);
    group.bench_function("coron_t8_24k_blocks", |b| {
        b.iter(|| t8_entropy_with(&bits, 8, 1_000, 24_000, 7.976).expect("t8 succeeds"))
    });
    group.bench_function("markov_rate_200k_bits", |b| {
        b.iter(|| markov_entropy_rate(&bits).expect("estimator succeeds"))
    });
    group.bench_function("block_entropy_200k_bits", |b| {
        b.iter(|| block_entropy(&bits, 8).expect("estimator succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench_model_bounds, bench_empirical_estimators);
criterion_main!(benches);
