//! FIG7 benchmark: cost of acquiring and reducing the `σ²_N` sweep that regenerates the
//! paper's Fig. 7 (jitter generation + accumulation statistic over log-spaced depths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng_measure::circuit::DifferentialCircuit;
use ptrng_osc::jitter::JitterGenerator;
use ptrng_stats::sn::{log_spaced_depths, sigma2_n_sweep, SnSampling};

fn bench_sweep_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/sigma_n_sweep");
    group.sample_size(10);
    let circuit = DifferentialCircuit::date14_experiment();
    let generator = JitterGenerator::new(circuit.relative_model().expect("identical oscillators"));
    let mut rng = StdRng::seed_from_u64(1);
    let jitter = generator
        .generate_period_jitter(&mut rng, 1 << 16)
        .expect("generation succeeds");
    let depths = log_spaced_depths(1, 8_192, 25).expect("valid depths");
    group.bench_function("sweep_25_depths_64k_periods", |b| {
        b.iter(|| sigma2_n_sweep(&jitter, &depths, SnSampling::Overlapping).expect("sweep"))
    });
    group.finish();
}

fn bench_acquisition(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/acquisition");
    group.sample_size(10);
    let circuit = DifferentialCircuit::date14_experiment();
    for record_len in [1usize << 14, 1 << 16] {
        group.bench_with_input(
            BenchmarkId::new("period_domain", record_len),
            &record_len,
            |b, &len| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    let depths = log_spaced_depths(1, len / 8, 15).expect("valid depths");
                    circuit
                        .measure_period_domain(&mut rng, &depths, len)
                        .expect("acquisition succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_reduction, bench_acquisition);
criterion_main!(benches);
