//! THERMAL benchmark: cost of the `σ²_N = a·N + b·N²` fit and the thermal-jitter
//! extraction (Section IV), i.e. the arithmetic the paper proposes to embed on chip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ptrng_core::thermal::ThermalNoiseEstimate;
use ptrng_measure::dataset::{DatasetPoint, Sigma2NDataset};
use ptrng_osc::model::AccumulationModel;
use ptrng_osc::phase::PhaseNoiseModel;
use ptrng_stats::fit::sigma_n_fit;

fn synthetic_dataset(points: usize) -> Sigma2NDataset {
    let model = PhaseNoiseModel::date14_experiment();
    let acc = AccumulationModel::new(model);
    let pts = (1..=points)
        .map(|i| {
            let n = i * 500;
            DatasetPoint {
                n,
                sigma2_n: acc.sigma2_n(n),
                samples: 500,
            }
        })
        .collect();
    Sigma2NDataset::new(model.frequency(), "synthetic", pts).expect("valid dataset")
}

fn bench_thermal_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal");
    for points in [8usize, 32, 128] {
        let dataset = synthetic_dataset(points);
        group.bench_with_input(
            BenchmarkId::new("sigma_n_fit", points),
            &dataset,
            |b, ds| {
                let depths = ds.depths();
                let vars = ds.variances();
                b.iter(|| sigma_n_fit(&depths, &vars, None).expect("fit succeeds"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_extraction", points),
            &dataset,
            |b, ds| b.iter(|| ThermalNoiseEstimate::from_dataset(ds).expect("extraction succeeds")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thermal_extraction);
criterion_main!(benches);
