//! RN benchmark: cost of recovering the ratio `r_N` and the independence threshold from
//! a measured dataset (fit + derived quantities), the computation an embedded monitor
//! would re-run periodically.

use criterion::{criterion_group, criterion_main, Criterion};

use ptrng_core::independence::IndependenceAnalysis;
use ptrng_measure::dataset::{DatasetPoint, Sigma2NDataset};
use ptrng_osc::model::AccumulationModel;
use ptrng_osc::phase::PhaseNoiseModel;

fn synthetic_dataset(points: usize) -> Sigma2NDataset {
    let model = PhaseNoiseModel::date14_experiment();
    let acc = AccumulationModel::new(model);
    let pts = (1..=points)
        .map(|i| {
            let n = i * 1_000;
            DatasetPoint {
                n,
                sigma2_n: acc.sigma2_n(n),
                samples: 1_000,
            }
        })
        .collect();
    Sigma2NDataset::new(model.frequency(), "synthetic", pts).expect("valid dataset")
}

fn bench_independence_analysis(c: &mut Criterion) {
    let dataset = synthetic_dataset(30);
    let mut group = c.benchmark_group("rn");
    group.bench_function("independence_analysis_30_points", |b| {
        b.iter(|| IndependenceAnalysis::from_dataset(&dataset).expect("analysis succeeds"))
    });
    let acc = AccumulationModel::new(PhaseNoiseModel::date14_experiment());
    group.bench_function("rn_ratio_and_threshold", |b| {
        b.iter(|| {
            let mut acc_total = 0.0;
            for n in (100..=100_000).step_by(100) {
                acc_total += acc.rn_ratio(n);
            }
            (
                acc_total,
                acc.independence_threshold(0.95).expect("valid ratio"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_independence_analysis);
criterion_main!(benches);
