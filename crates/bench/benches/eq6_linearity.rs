//! EQ6 benchmark: cost of the Bienaymé linearity check on a thermal-only jitter record
//! (single-depth `σ²_N` evaluation and the independent-prediction comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng_osc::jitter::JitterGenerator;
use ptrng_osc::phase::PhaseNoiseModel;
use ptrng_stats::sn::sigma2_n;
use ptrng_stats::variance::bienayme_check;

fn bench_linearity_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq6/bienayme_check");
    group.sample_size(20);
    let model = PhaseNoiseModel::thermal_only(276.04, 103.0e6).expect("valid model");
    let generator = JitterGenerator::new(model);
    let mut rng = StdRng::seed_from_u64(3);
    let jitter = generator
        .generate_period_jitter(&mut rng, 1 << 16)
        .expect("generation succeeds");
    let sigma2 = model.thermal_period_jitter_variance();
    for n in [16usize, 256, 4_096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let measured = sigma2_n(&jitter, n).expect("sigma2_n");
                bienayme_check(n, measured, sigma2).expect("check")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linearity_check);
criterion_main!(benches);
