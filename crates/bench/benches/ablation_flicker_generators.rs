//! Ablation: the two flicker-FM synthesis back-ends (spectral shaping vs the streaming
//! Kasdin fractional-difference filter) generating the same jitter statistics at very
//! different costs — the design choice called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ptrng_osc::jitter::{FlickerSynthesis, JitterGenerator};
use ptrng_osc::phase::PhaseNoiseModel;

fn bench_flicker_backends(c: &mut Criterion) {
    let model = PhaseNoiseModel::date14_experiment();
    let mut group = c.benchmark_group("ablation/flicker_backend");
    group.sample_size(10);
    let len = 1usize << 15;
    for (name, synthesis) in [
        ("spectral", FlickerSynthesis::Spectral),
        ("kasdin_1024", FlickerSynthesis::Kasdin { memory: 1024 }),
        ("kasdin_4096", FlickerSynthesis::Kasdin { memory: 4096 }),
        ("disabled", FlickerSynthesis::Disabled),
    ] {
        let generator = JitterGenerator::with_synthesis(model, synthesis);
        group.bench_with_input(BenchmarkId::from_parameter(name), &generator, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                g.generate_period_jitter(&mut rng, len)
                    .expect("generation succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flicker_backends);
criterion_main!(benches);
