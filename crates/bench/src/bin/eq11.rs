//! EQ11 — checks the closed form `σ²_N = 2·b_th/f0³·N + 8·ln2·b_fl/f0⁴·N²` (Eq. 11)
//! against a direct numerical quadrature of the spectral integral (Eq. 9).
//!
//! ```text
//! cargo run --release -p ptrng-bench --bin eq11
//! ```

use ptrng_osc::model::AccumulationModel;
use ptrng_osc::phase::PhaseNoiseModel;

fn main() {
    let acc = AccumulationModel::new(PhaseNoiseModel::date14_experiment());
    println!("# EQ11: closed form vs numerical integration of Eq. 9 (paper model, f0 = 103 MHz)");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>12}",
        "N", "closed form", "numeric", "rel. error"
    );
    for n in [1usize, 10, 100, 281, 1_000, 5_354, 10_000, 30_000] {
        let closed = acc.sigma2_n(n);
        let numeric = acc
            .sigma2_n_numeric(n)
            .expect("the quadrature succeeds for positive depths");
        println!(
            "{n:>8}  {closed:>14.6e}  {numeric:>14.6e}  {:>12.3e}",
            (numeric - closed).abs() / closed
        );
    }

    println!();
    println!("thermal / flicker decomposition at selected depths:");
    println!("{:>8}  {:>14}  {:>14}", "N", "thermal term", "flicker term");
    for n in [100usize, 1_000, 5_354, 30_000] {
        println!(
            "{n:>8}  {:>14.6e}  {:>14.6e}",
            acc.thermal_component(n),
            acc.flicker_component(n)
        );
    }
}
