//! RN — regenerates the thermal-to-total ratio `r_N = K/(K+N)` and the independence
//! threshold of Section III-E, both from the closed-form model and from a simulated
//! acquisition.
//!
//! ```text
//! cargo run --release -p ptrng-bench --bin rn_threshold
//! ```

use ptrng_bench::{acquire_fig7_dataset, DEFAULT_MAX_DEPTH, DEFAULT_RECORD_LEN};
use ptrng_core::independence::IndependenceAnalysis;
use ptrng_osc::model::AccumulationModel;
use ptrng_osc::phase::PhaseNoiseModel;

fn main() {
    let acc = AccumulationModel::new(PhaseNoiseModel::date14_experiment());
    println!("# RN: thermal-to-total ratio r_N (model) — the paper reports r_N = 5354/(5354+N)");
    println!("{:>8}  {:>10}  {:>10}", "N", "model r_N", "5354/(5354+N)");
    for n in [1usize, 50, 281, 1_000, 5_354, 10_000, 30_000, 100_000] {
        println!(
            "{n:>8}  {:>10.4}  {:>10.4}",
            acc.rn_ratio(n),
            5354.0 / (5354.0 + n as f64)
        );
    }
    for p in [0.99, 0.95, 0.90, 0.50] {
        let threshold = acc
            .independence_threshold(p)
            .expect("valid ratio")
            .expect("the paper model has a flicker component");
        println!(
            "independence threshold (r_N > {:.0}%) : N < {threshold}",
            p * 100.0
        );
    }

    println!();
    println!("# same quantities recovered from a simulated acquisition");
    let dataset = acquire_fig7_dataset(7, DEFAULT_RECORD_LEN, DEFAULT_MAX_DEPTH);
    let analysis =
        IndependenceAnalysis::from_dataset(&dataset).expect("the simulated dataset is analysable");
    println!(
        "fitted K                 : {:.0}   (paper: 5354)",
        analysis
            .fitted_model()
            .rn_constant()
            .unwrap_or(f64::INFINITY)
    );
    println!(
        "fitted threshold (95 %)  : N < {}   (paper: N < 281)",
        analysis
            .independence_threshold_95()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "unbounded".to_string())
    );
}
