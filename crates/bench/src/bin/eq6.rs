//! EQ6 — verifies Bienaymé's identity on a thermal-only source: `σ²_N = 2·N·σ²`
//! (the linear law that mutual independence of jitter realizations imposes).
//!
//! ```text
//! cargo run --release -p ptrng-bench --bin eq6
//! ```

use ptrng_bench::acquire_thermal_only_dataset;
use ptrng_core::independence::IndependenceAnalysis;
use ptrng_osc::phase::PhaseNoiseModel;
use ptrng_stats::sn::sigma2_n_independent;

fn main() {
    let dataset = acquire_thermal_only_dataset(6, 1 << 19, 10_000);
    let paper = PhaseNoiseModel::date14_experiment();
    // Relative thermal-only variance per period: b_th/f0^3 (the coefficients of the two
    // oscillators add back to the paper's relative value).
    let sigma2 = paper.b_thermal() / paper.frequency().powi(3);

    println!("# EQ6: thermal-only source, sigma^2_N against the Bienaymé prediction 2*N*sigma^2");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>10}",
        "N", "measured", "2*N*sigma^2", "ratio"
    );
    for p in dataset.points() {
        let predicted = sigma2_n_independent(p.n, sigma2);
        println!(
            "{:>8}  {:>14.6e}  {:>14.6e}  {:>10.4}",
            p.n,
            p.sigma2_n,
            predicted,
            p.sigma2_n / predicted
        );
    }

    let analysis = IndependenceAnalysis::from_dataset(&dataset)
        .expect("the thermal-only dataset is analysable");
    println!();
    println!("verdict                      : {:?}", analysis.verdict());
    println!(
        "flicker share at max depth   : {:.4} (linear model explains R^2 = {:.5})",
        analysis.flicker_share_at_max_depth(),
        analysis.linear_only_r_squared()
    );
}
